"""Admission control: bounding concurrent streams (paper §4).

"The risk of glitches can be made arbitrarily low by limiting the
maximum number of terminals as much as is desired."  This module makes
that limiting an explicit, pluggable server component.  Policies are
registry-backed (mirroring :class:`repro.layout.registry.LayoutSpec`):
the built-ins are

* ``none`` — admit everyone (the paper's measurement configuration;
  the experimenter controls load by choosing the terminal count);
* ``fixed`` — a hard cap on concurrent streams;
* ``bandwidth`` — reserve each stream's bit rate against a headroom
  fraction of the server's aggregate disk transfer bandwidth;
* ``analytic`` — cap at the elevator-scan analytical capacity bound
  (see :mod:`repro.analytic`), the classical conservative design;

and third-party policies plug in via :func:`register_admission_policy`
without touching the assembly code in ``repro.core.system``::

    from repro.server.admission import AdmissionSpec, register_admission_policy

    register_admission_policy("ten", lambda spec, *context: 10)
    config = SpiffiConfig(admission=AdmissionSpec("ten"))

Denied terminals queue FIFO and are admitted as streams finish.  The
open-system workload layer (:mod:`repro.workload`) additionally bounds
this queue and lets queued customers *renege* — both built on the
:meth:`AdmissionController.would_queue` / :meth:`~AdmissionController.cancel`
hooks below.
"""

from __future__ import annotations

import dataclasses
import typing
from collections import deque

from repro.analytic.capacity import StreamParameters, estimate_capacity
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.stats import Tally, TimeWeighted

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.storage.drive import DriveParameters

#: Built-in policy names.  Retained for backward compatibility; the
#: authoritative list lives in the registry and grows as plugins
#: register (see :func:`admission_policy_names`).
ADMISSION_POLICIES = ("none", "fixed", "bandwidth", "analytic")

#: ``limit(spec, disks, drive, stream, disk_capacity_bytes) -> int | None``
#: — the concurrent-stream cap a policy imposes (None = unlimited).
AdmissionPolicy = typing.Callable[..., typing.Optional[int]]

_REGISTRY: dict[str, AdmissionPolicy] = {}


def register_admission_policy(name: str, limit: AdmissionPolicy) -> None:
    """Make *name* selectable via ``AdmissionSpec(name)``.

    *limit* receives the spec itself plus the server context (disk
    count, :class:`DriveParameters`, :class:`StreamParameters`, and the
    per-disk capacity in bytes) and returns the concurrent-stream cap,
    or None for no cap.
    """
    if not name or not isinstance(name, str):
        raise ValueError(
            f"admission policy name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = limit


def admission_policy_names() -> tuple[str, ...]:
    """Every currently registered policy name (registration order)."""
    return tuple(_REGISTRY)


@dataclasses.dataclass(frozen=True)
class AdmissionSpec:
    """Which admission policy the server runs, with its parameters."""

    policy: str = "none"
    #: ``fixed``: maximum concurrent streams.
    max_streams: int = 1_000_000
    #: ``bandwidth``: fraction of aggregate disk bandwidth reservable.
    headroom: float = 0.9

    def __post_init__(self) -> None:
        if self.policy not in _REGISTRY:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"choose from {admission_policy_names()}"
            )
        if self.max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {self.max_streams}")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1], got {self.headroom}")

    def stream_limit(
        self,
        disks: int,
        drive: "DriveParameters",
        stream: StreamParameters,
        disk_capacity_bytes: int,
    ) -> int | None:
        """Concurrent-stream cap implied by the policy (None = no cap)."""
        return _REGISTRY[self.policy](
            self, disks, drive, stream, disk_capacity_bytes
        )

    def label(self) -> str:
        if self.policy == "fixed":
            return f"fixed({self.max_streams})"
        if self.policy == "bandwidth":
            return f"bandwidth({self.headroom:g})"
        return self.policy


def _bandwidth_limit(spec, disks, drive, stream, disk_capacity_bytes):
    aggregate = disks * drive.transfer_rate_bytes * spec.headroom
    return max(1, int(aggregate / stream.bytes_per_second))


def _analytic_limit(spec, disks, drive, stream, disk_capacity_bytes):
    estimates = estimate_capacity(drive, stream, disks, disk_capacity_bytes)
    return max(1, estimates.scan)


register_admission_policy("none", lambda spec, *context: None)
register_admission_policy("fixed", lambda spec, *context: spec.max_streams)
register_admission_policy("bandwidth", _bandwidth_limit)
register_admission_policy("analytic", _analytic_limit)


class AdmissionController:
    """Grants stream slots, queueing requests beyond the cap FIFO."""

    def __init__(self, env: Environment, limit: int | None) -> None:
        self.env = env
        self.limit = limit
        self.active = 0
        self._waiting: deque[tuple[Event, float]] = deque()
        self.admitted = 0
        self.queued = 0
        self.shed_admissions = 0
        self.wait_times = Tally()
        #: Time-weighted wait-queue length (mean and max over the
        #: measurement window; see ``RunMetrics.admission_queue_len_*``).
        self.queue_lengths = TimeWeighted(env.now)
        # Nested shed requests (one per concurrent disk outage).
        self._shed = 0

    @property
    def would_queue(self) -> bool:
        """Whether a slot requested right now would have to wait."""
        return self._shed > 0 or (
            self.limit is not None and self.active >= self.limit
        )

    def request_slot(self) -> Event:
        """Fires when the stream may start (immediately if room)."""
        event = Event(self.env)
        if self._shed > 0:
            self.queued += 1
            self.shed_admissions += 1
            self._enqueue(event)
        elif self.limit is None or self.active < self.limit:
            self.active += 1
            self.admitted += 1
            self.wait_times.record(0.0)
            event.succeed()
        else:
            self.queued += 1
            self._enqueue(event)
        return event

    def release_slot(self) -> None:
        """A stream finished; hand its slot to the oldest waiter."""
        if self.active <= 0:
            raise ValueError("release_slot() with no active streams")
        if self._waiting and self._shed == 0:
            self._admit_waiter()
        else:
            self.active -= 1

    def cancel(self, event: Event) -> bool:
        """Withdraw a still-waiting slot request (a queued customer
        reneging).  Returns False when *event* is not waiting — already
        admitted, or never queued — in which case nothing changes."""
        for entry in self._waiting:
            if entry[0] is event:
                self._waiting.remove(entry)
                self.queue_lengths.update(self.env.now, len(self._waiting))
                return True
        return False

    def _enqueue(self, event: Event) -> None:
        self._waiting.append((event, self.env.now))
        self.queue_lengths.update(self.env.now, len(self._waiting))

    def _admit_waiter(self) -> None:
        waiter, requested_at = self._waiting.popleft()
        self.queue_lengths.update(self.env.now, len(self._waiting))
        self.admitted += 1
        self.wait_times.record(self.env.now - requested_at)
        waiter.succeed()

    # ------------------------------------------------------------------
    # Load shedding during disk outages (see repro.faults)
    # ------------------------------------------------------------------
    def begin_shed(self) -> None:
        """Stop admitting new streams until :meth:`end_shed`."""
        self._shed += 1

    def end_shed(self) -> None:
        if self._shed <= 0:
            raise ValueError("end_shed() without a matching begin_shed()")
        self._shed -= 1
        if self._shed == 0:
            self._drain_waiters()

    @property
    def shedding(self) -> bool:
        return self._shed > 0

    def _drain_waiters(self) -> None:
        while self._waiting and (self.limit is None or self.active < self.limit):
            self.active += 1
            self._admit_waiter()

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def max_wait_s(self) -> float:
        """Longest wait any admitted-from-queue stream experienced."""
        return self.wait_times.maximum if self.wait_times.count else 0.0

    def reset_stats(self) -> None:
        self.admitted = 0
        self.queued = 0
        self.shed_admissions = 0
        self.wait_times.reset()
        self.queue_lengths.reset(self.env.now)
