"""Admission control: bounding concurrent streams (paper §4).

"The risk of glitches can be made arbitrarily low by limiting the
maximum number of terminals as much as is desired."  This module makes
that limiting an explicit, pluggable server component:

* ``none`` — admit everyone (the paper's measurement configuration;
  the experimenter controls load by choosing the terminal count);
* ``fixed`` — a hard cap on concurrent streams;
* ``bandwidth`` — reserve each stream's bit rate against a headroom
  fraction of the server's aggregate disk transfer bandwidth;
* ``analytic`` — cap at the elevator-scan analytical capacity bound
  (see :mod:`repro.analytic`), the classical conservative design.

Denied terminals queue FIFO and are admitted as streams finish.
"""

from __future__ import annotations

import dataclasses
import typing
from collections import deque

from repro.analytic.capacity import StreamParameters, estimate_capacity
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.stats import Tally

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.storage.drive import DriveParameters

ADMISSION_POLICIES = ("none", "fixed", "bandwidth", "analytic")


@dataclasses.dataclass(frozen=True)
class AdmissionSpec:
    """Which admission policy the server runs, with its parameters."""

    policy: str = "none"
    #: ``fixed``: maximum concurrent streams.
    max_streams: int = 1_000_000
    #: ``bandwidth``: fraction of aggregate disk bandwidth reservable.
    headroom: float = 0.9

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        if self.max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {self.max_streams}")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1], got {self.headroom}")

    def stream_limit(
        self,
        disks: int,
        drive: "DriveParameters",
        stream: StreamParameters,
        disk_capacity_bytes: int,
    ) -> int | None:
        """Concurrent-stream cap implied by the policy (None = no cap)."""
        if self.policy == "none":
            return None
        if self.policy == "fixed":
            return self.max_streams
        if self.policy == "bandwidth":
            aggregate = disks * drive.transfer_rate_bytes * self.headroom
            return max(1, int(aggregate / stream.bytes_per_second))
        if self.policy == "analytic":
            estimates = estimate_capacity(drive, stream, disks, disk_capacity_bytes)
            return max(1, estimates.scan)
        raise AssertionError(f"unhandled policy {self.policy!r}")


class AdmissionController:
    """Grants stream slots, queueing requests beyond the cap FIFO."""

    def __init__(self, env: Environment, limit: int | None) -> None:
        self.env = env
        self.limit = limit
        self.active = 0
        self._waiting: deque[tuple[Event, float]] = deque()
        self.admitted = 0
        self.queued = 0
        self.shed_admissions = 0
        self.wait_times = Tally()
        # Nested shed requests (one per concurrent disk outage).
        self._shed = 0

    def request_slot(self) -> Event:
        """Fires when the stream may start (immediately if room)."""
        event = Event(self.env)
        if self._shed > 0:
            self.queued += 1
            self.shed_admissions += 1
            self._waiting.append((event, self.env.now))
        elif self.limit is None or self.active < self.limit:
            self.active += 1
            self.admitted += 1
            self.wait_times.record(0.0)
            event.succeed()
        else:
            self.queued += 1
            self._waiting.append((event, self.env.now))
        return event

    def release_slot(self) -> None:
        """A stream finished; hand its slot to the oldest waiter."""
        if self.active <= 0:
            raise ValueError("release_slot() with no active streams")
        if self._waiting and self._shed == 0:
            waiter, requested_at = self._waiting.popleft()
            self.admitted += 1
            self.wait_times.record(self.env.now - requested_at)
            waiter.succeed()
        else:
            self.active -= 1

    # ------------------------------------------------------------------
    # Load shedding during disk outages (see repro.faults)
    # ------------------------------------------------------------------
    def begin_shed(self) -> None:
        """Stop admitting new streams until :meth:`end_shed`."""
        self._shed += 1

    def end_shed(self) -> None:
        if self._shed <= 0:
            raise ValueError("end_shed() without a matching begin_shed()")
        self._shed -= 1
        if self._shed == 0:
            self._drain_waiters()

    @property
    def shedding(self) -> bool:
        return self._shed > 0

    def _drain_waiters(self) -> None:
        while self._waiting and (self.limit is None or self.active < self.limit):
            waiter, requested_at = self._waiting.popleft()
            self.active += 1
            self.admitted += 1
            self.wait_times.record(self.env.now - requested_at)
            waiter.succeed()

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def reset_stats(self) -> None:
        self.admitted = 0
        self.queued = 0
        self.shed_admissions = 0
        self.wait_times.reset()
