"""Piggybacking terminals that start the same movie (paper §8.2).

The server "could recognize popular movies and intentionally delay the
first subscriber ... while it waits for additional subscribers to
request the same movie.  In this way, a group of terminals could be
piggybacked and serviced as though they were one terminal."

Implementation: the first request for a video opens a *batch* that
launches after the configured window; every request for the same title
arriving inside the window joins the batch and launches at the same
instant.  Synchronized terminals then request identical blocks at
identical times, so all but the first merge onto shared buffer pool
pages and disk I/Os.
"""

from __future__ import annotations

from repro.sim.environment import Environment
from repro.sim.events import Event


class PiggybackCoordinator:
    def __init__(self, env: Environment, window_s: float = 0.0) -> None:
        if window_s < 0:
            raise ValueError(f"window must be >= 0, got {window_s}")
        self.env = env
        self.window_s = window_s
        self._open_batches: dict[int, Event] = {}
        self.batches_launched = 0
        self.terminals_joined = 0
        self.terminals_batched = 0

    def request_start(self, video_id: int) -> Event | None:
        """Join (or open) the launch batch for *video_id*.

        Returns an event that fires when the batch launches, or None
        when piggybacking is disabled (zero window) and the terminal may
        start immediately.
        """
        if self.window_s <= 0:
            return None
        batch = self._open_batches.get(video_id)
        if batch is None:
            batch = self.env.event()
            self._open_batches[video_id] = batch
            self.env.process(self._launch_later(video_id, batch))
            self.batches_launched += 1
        else:
            self.terminals_batched += 1
        self.terminals_joined += 1
        return batch

    def has_open_batch(self, video_id: int) -> bool:
        """Whether a join for *video_id* right now would be a follower
        (an open batch exists) rather than an opener."""
        return video_id in self._open_batches

    def withdraw(self, video_id: int) -> None:
        """Undo a follower's join: it balked/reneged inside the window.

        For callers whose sessions can leave between joining an
        *existing* batch and its launch (e.g. a queued customer's
        patience expiring).  Without this, departed sessions stay in
        ``terminals_joined``/``terminals_batched`` and skew
        :attr:`sharing_fraction`.  Only a follower may withdraw — the
        opener owns the launch and cannot leave.
        """
        if video_id not in self._open_batches:
            raise ValueError(
                f"withdraw() for video {video_id} with no open batch"
            )
        # Clamped, not asserted: a stats reset between join and
        # withdraw (batch spanning the measurement boundary) legitimately
        # zeroes the counters first.
        self.terminals_joined = max(0, self.terminals_joined - 1)
        self.terminals_batched = max(0, self.terminals_batched - 1)

    def _launch_later(self, video_id: int, batch: Event):
        yield self.env.timeout(self.window_s)
        del self._open_batches[video_id]
        batch.succeed()

    @property
    def sharing_fraction(self) -> float:
        """Fraction of starts that piggybacked onto an existing batch."""
        if self.terminals_joined == 0:
            return 0.0
        return self.terminals_batched / self.terminals_joined

    def reset_stats(self) -> None:
        # ``_open_batches`` deliberately survives the reset: a batch
        # spanning the warmup/measurement boundary is live coordination
        # state — clearing it would strand every terminal waiting on its
        # launch event.  Only the counters restart.
        self.batches_launched = 0
        self.terminals_joined = 0
        self.terminals_batched = 0
