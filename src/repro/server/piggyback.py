"""Piggybacking terminals that start the same movie (paper §8.2).

The server "could recognize popular movies and intentionally delay the
first subscriber ... while it waits for additional subscribers to
request the same movie.  In this way, a group of terminals could be
piggybacked and serviced as though they were one terminal."

Implementation: the first request for a video opens a *batch* that
launches after the configured window; every request for the same title
arriving inside the window joins the batch and launches at the same
instant.  Synchronized terminals then request identical blocks at
identical times, so all but the first merge onto shared buffer pool
pages and disk I/Os.
"""

from __future__ import annotations

from repro.sim.environment import Environment
from repro.sim.events import Event


class PiggybackCoordinator:
    def __init__(self, env: Environment, window_s: float = 0.0) -> None:
        if window_s < 0:
            raise ValueError(f"window must be >= 0, got {window_s}")
        self.env = env
        self.window_s = window_s
        self._open_batches: dict[int, Event] = {}
        self.batches_launched = 0
        self.terminals_joined = 0
        self.terminals_batched = 0

    def request_start(self, video_id: int) -> Event | None:
        """Join (or open) the launch batch for *video_id*.

        Returns an event that fires when the batch launches, or None
        when piggybacking is disabled (zero window) and the terminal may
        start immediately.
        """
        if self.window_s <= 0:
            return None
        batch = self._open_batches.get(video_id)
        if batch is None:
            batch = self.env.event()
            self._open_batches[video_id] = batch
            self.env.process(self._launch_later(video_id, batch))
            self.batches_launched += 1
        else:
            self.terminals_batched += 1
        self.terminals_joined += 1
        return batch

    def _launch_later(self, video_id: int, batch: Event):
        yield self.env.timeout(self.window_s)
        del self._open_batches[video_id]
        batch.succeed()

    @property
    def sharing_fraction(self) -> float:
        """Fraction of starts that piggybacked onto an existing batch."""
        if self.terminals_joined == 0:
            return 0.0
        return self.terminals_batched / self.terminals_joined

    def reset_stats(self) -> None:
        self.batches_launched = 0
        self.terminals_joined = 0
        self.terminals_batched = 0
