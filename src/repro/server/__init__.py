"""Video server: nodes and the piggybacking coordinator."""

from repro.server.node import NodeStats, VideoServerNode
from repro.server.piggyback import PiggybackCoordinator

__all__ = ["NodeStats", "PiggybackCoordinator", "VideoServerNode"]
