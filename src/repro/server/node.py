"""A video server node: CPU, disks, buffer pool, prefetchers (§5.2).

SPIFFI's decentralized design routes each read request directly from
the terminal to the node and disk holding the block; the node services
it from its buffer pool, merging onto in-flight I/Os where possible,
and responds straight back to the terminal.
"""

from __future__ import annotations

import typing

from repro.bufferpool.pool import INFLIGHT, MISS, BufferPool
from repro.cpu.costs import CpuParameters
from repro.cpu.processor import Processor
from repro.layout.base import Placement
from repro.prefetch.prefetcher import DiskPrefetcher, PrefetchOrder
from repro.prefetch.spec import PrefetchSpec
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.stats import Tally
from repro.storage.drive import DiskDrive
from repro.storage.request import NO_DEADLINE, DiskRequest

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultRuntime
    from repro.layout.base import Layout
    from repro.media.library import VideoLibrary
    from repro.netsim.bus import NetworkBus
    from repro.replication.runtime import ReplicationRuntime
    from repro.sharing.runtime import SharingRuntime


class NodeStats:
    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.requests = 0
        self.disk_reads = 0
        self.service_time = Tally()


class VideoServerNode:
    def __init__(
        self,
        env: Environment,
        node_id: int,
        cpu: Processor,
        cpu_params: CpuParameters,
        drives: list[DiskDrive],
        pool: BufferPool,
        bus: "NetworkBus",
        library: "VideoLibrary",
        layout: "Layout",
        block_size: int,
        prefetch_spec: PrefetchSpec,
        prefetchers: list[DiskPrefetcher],
        faults: "FaultRuntime | None" = None,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.cpu = cpu
        self.cpu_params = cpu_params
        self.drives = drives
        self.pool = pool
        self.bus = bus
        self.library = library
        self.layout = layout
        self.block_size = block_size
        self.prefetch_spec = prefetch_spec
        self.prefetchers = prefetchers
        self.faults = faults
        #: Set by system assembly when the config replicates blocks;
        #: None keeps the single-copy read path bit-identical.
        self.replication: "ReplicationRuntime | None" = None
        #: Set by system assembly when the sharing policy chains
        #: buffers; None keeps the reference path bit-identical.
        self.sharing: "SharingRuntime | None" = None
        #: Constant CPU portion of the reply path, precomputed once so
        #: per-request deadline arithmetic stays off the cost tables.
        costs = cpu_params.costs
        self._reply_cpu_s = cpu_params.seconds(costs.send_message + costs.receive_message)
        self.stats = NodeStats()

    # ------------------------------------------------------------------
    # Request entry point (called from terminal fetch processes)
    # ------------------------------------------------------------------
    def request_block(
        self,
        terminal_id: int,
        video_id: int,
        block: int,
        size: int,
        placement: Placement,
        deadline: float,
    ) -> Event:
        """Service a stripe block read; the event fires on delivery."""
        done = self.env.event()
        self.env.process(
            self._service(terminal_id, video_id, block, size, placement, deadline, done),
            name=f"node-{self.node_id}-svc",
        )
        return done

    def _reply_allowance(self, size: int) -> float:
        """Time the reply path will add after the disk read completes.

        The disk access must finish this much before the terminal's
        deadline, so it is subtracted when assigning the disk deadline.
        """
        return self._reply_cpu_s + self.bus.params.transit_time(size)

    def _service(
        self,
        terminal_id: int,
        video_id: int,
        block: int,
        size: int,
        placement: Placement,
        deadline: float,
        done: Event,
    ):
        env = self.env
        costs = self.cpu_params.costs
        arrived = env.now
        self.stats.requests += 1
        yield from self.cpu.execute(costs.receive_message)

        key = (video_id, block)
        disk_deadline = deadline - self._reply_allowance(size)
        page, status = yield from self.pool.acquire(key, size, terminal_id=terminal_id)
        if status == MISS:
            self.stats.disk_reads += 1
            yield from self.cpu.execute(costs.start_io)
            if self.replication is not None:
                yield from self._read_replicated(
                    page, video_id, block, placement, size, disk_deadline, terminal_id
                )
            else:
                drive = self.drives[placement.disk_in_node]
                if self.faults is None:
                    request = DiskRequest(
                        env,
                        byte_offset=placement.byte_offset,
                        size=size,
                        cylinder=drive.geometry.cylinder_of(placement.byte_offset),
                        deadline=disk_deadline,
                        is_prefetch=False,
                        terminal_id=terminal_id,
                    )
                    request.tighten_deadline(page.deadline_hint)
                    page.disk_request = request
                    drive.submit(request)
                    yield request.done
                else:
                    yield from self._read_degraded(
                        page, placement, size, disk_deadline, terminal_id, drive
                    )
            self.pool.finish_io(page)
        elif status == INFLIGHT:
            # Merge onto the in-flight (usually prefetch) read, lending
            # it this real request's urgency — via the hint if the disk
            # request has not been created yet.
            page.deadline_hint = min(page.deadline_hint, disk_deadline)
            if page.disk_request is not None:
                page.disk_request.tighten_deadline(disk_deadline)
            yield page.io_event

        if self.sharing is not None:
            # Chain registry: pins the predecessor's page / counts the
            # successor's chained read, now that the page is loaded.
            self.sharing.note_block(
                terminal_id, video_id, block, status, page, self.pool
            )
        self._trigger_prefetch(video_id, block, disk_deadline)

        yield from self.cpu.execute(costs.send_message)
        yield from self.bus.transfer(size)
        self.pool.unpin(page)
        self.stats.service_time.record(env.now - arrived)
        done.succeed(env.now)
        return None

    def _read_degraded(self, page, placement, size, disk_deadline, terminal_id, drive):
        """MISS-path disk read with per-request timeout and bounded retry.

        Active only when fault injection is configured.  Each dispatch
        races ``request_timeout_s``; a timed-out request is cancelled and
        re-dispatched up to ``max_retries`` times.  A read that exhausts
        its retries — or whose drive has failed permanently — is *failed
        over*: served after ``failover_penalty_s`` (modelling a replica
        fetch or error concealment) so the stream degrades instead of
        hanging on dead hardware.
        """
        env = self.env
        spec = self.faults.spec
        attempt = 0
        while True:
            request = DiskRequest(
                env,
                byte_offset=placement.byte_offset,
                size=size,
                cylinder=drive.geometry.cylinder_of(placement.byte_offset),
                deadline=disk_deadline,
                is_prefetch=False,
                terminal_id=terminal_id,
            )
            request.tighten_deadline(page.deadline_hint)
            page.disk_request = request
            drive.submit(request)
            yield env.any_of([request.done, env.timeout(spec.request_timeout_s)])
            if request.done.triggered:
                if not request.failed:
                    return None
                self.faults.note_failed_read(drive.disk_id, terminal_id)
                break
            request.cancel()
            attempt += 1
            if attempt > spec.max_retries:
                self.faults.note_abandoned(drive.disk_id, terminal_id)
                break
            self.faults.note_retry(drive.disk_id, terminal_id, attempt)
        if spec.failover_penalty_s > 0:
            yield env.timeout(spec.failover_penalty_s)
        return None

    # ------------------------------------------------------------------
    # Replica-aware MISS read (replication configured)
    # ------------------------------------------------------------------
    def _read_replicated(
        self, page, video_id, block, placement, size, disk_deadline, terminal_id
    ):
        """MISS-path disk read that fails over across replicas.

        The routed copy (usually the primary) is tried first with the
        full retry budget; on exhaustion — or when its drive is known
        dead — the read moves to the next surviving copy instead of
        sleeping ``failover_penalty_s``.  Only when *every* copy is
        unreachable does the abstract penalty remain, as error
        concealment of last resort.  A copy on another node's disk is
        read directly from that drive and shipped over the bus — one
        extra hop, accounted as ``remote_replica_reads``.
        """
        env = self.env
        runtime = self.replication
        spec = self.faults.spec if self.faults is not None else None
        primary_disk = runtime.placements(video_id, block)[0].disk_global
        candidates = runtime.read_candidates(video_id, block, first=placement)
        for candidate in candidates:
            drive = runtime.drives[candidate.disk_global]
            if drive.failed:
                continue  # known dead: skip without burning a timeout
            served = yield from self._attempt_read(
                page, candidate, size, disk_deadline, terminal_id, drive, spec
            )
            if served:
                if candidate.disk_global != primary_disk:
                    # Served from a replica — whether routed away up
                    # front or failed over mid-read.
                    runtime.note_failover(
                        terminal_id, primary_disk, candidate.disk_global
                    )
                if candidate.node != self.node_id:
                    # Ship the block from the remote node to this one.
                    runtime.stats.remote_replica_reads += 1
                    yield from self.bus.transfer(size)
                return None
        # Every copy is dead or timed out: error concealment fallback.
        if self.faults is not None:
            self.faults.note_abandoned(placement.disk_global, terminal_id)
            if spec.failover_penalty_s > 0:
                yield env.timeout(spec.failover_penalty_s)
        return None

    def _attempt_read(
        self, page, placement, size, disk_deadline, terminal_id, drive, spec
    ):
        """One candidate copy: dispatch with timeout/retry; True if read."""
        env = self.env
        attempt = 0
        while True:
            request = DiskRequest(
                env,
                byte_offset=placement.byte_offset,
                size=size,
                cylinder=drive.geometry.cylinder_of(placement.byte_offset),
                deadline=disk_deadline,
                is_prefetch=False,
                terminal_id=terminal_id,
            )
            request.tighten_deadline(page.deadline_hint)
            page.disk_request = request
            drive.submit(request)
            if spec is None:
                yield request.done
                return not request.failed
            yield env.any_of([request.done, env.timeout(spec.request_timeout_s)])
            if request.done.triggered:
                if not request.failed:
                    return True
                self.faults.note_failed_read(drive.disk_id, terminal_id)
                return False
            request.cancel()
            self.replication.health.note_timeout(drive.disk_id)
            attempt += 1
            if attempt > spec.max_retries:
                return False
            self.faults.note_retry(drive.disk_id, terminal_id, attempt)

    # ------------------------------------------------------------------
    # Prefetch triggering (§5.2.3)
    # ------------------------------------------------------------------
    def _trigger_prefetch(self, video_id: int, block: int, base_deadline: float) -> None:
        """Queue background reads of upcoming blocks on the same disk.

        The standard algorithm looks one block ahead; a larger prefetch
        ``depth`` schedules several upcoming blocks of the stream's
        fragment (dedup in the prefetcher makes the steady-state cost
        one new prefetch per reference).
        """
        if self.prefetch_spec.mode == "none":
            return
        video = self.library[video_id]
        schedule = video.schedule(self.block_size)
        previous = block
        for _ in range(self.prefetch_spec.depth):
            next_block = self.layout.next_block_on_same_disk(video_id, previous)
            if next_block is None:
                return
            placement = self.layout.locate(video_id, next_block)
            if (
                self.replication is not None
                and self.replication.health.rank(placement.disk_global) > 0
            ):
                # Primary disk impaired: prefetch where reads will be
                # routed; a copy on another node is that node's problem.
                placement = self.replication.route(video_id, next_block)
                if placement.node != self.node_id:
                    return
            if self.prefetch_spec.uses_deadlines and base_deadline != NO_DEADLINE:
                frames_ahead = schedule.first_frame[next_block] - schedule.first_frame[block]
                estimated = base_deadline + frames_ahead / video.fps
            else:
                estimated = NO_DEADLINE
            prefetcher = self.prefetchers[placement.disk_in_node]
            prefetcher.schedule(
                PrefetchOrder(
                    key=(video_id, next_block),
                    size=schedule.block_bytes(next_block),
                    byte_offset=placement.byte_offset,
                    cylinder=self.drives[placement.disk_in_node].geometry.cylinder_of(
                        placement.byte_offset
                    ),
                    deadline=estimated,
                )
            )
            previous = next_block

    def reset_stats(self) -> None:
        self.stats.reset()
