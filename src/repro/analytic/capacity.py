"""Analytical video-server capacity models (the paper's §4 foil).

The paper argues that systems designed from analytical studies "often
make worst case assumptions (e.g., maximum disk seeks and latencies)"
and therefore under-utilise the hardware.  This module implements the
standard round-based analytical admission bounds so the claim can be
tested quantitatively against the simulator:

* **worst-case bound** — every read pays a full-stroke seek and a full
  rotation (the most pessimistic classical design rule);
* **average-case bound** — reads pay the statistical average seek
  (1/3 stroke) and half a rotation;
* **scan bound** — a round of N requests served in elevator order pays
  N seeks that together cross the surface once (seek distance ≈
  cylinders/N each), the model behind group-sweeping designs [Yu92].

Each bound answers: how many concurrent streams can one disk sustain
such that every stream receives one stripe block per block-consumption
period?
"""

from __future__ import annotations

import dataclasses

from repro.storage.drive import DriveParameters


@dataclasses.dataclass(frozen=True)
class StreamParameters:
    """What one video stream demands of the disk."""

    bit_rate_bps: float = 4_000_000.0
    block_bytes: int = 512 * 1024

    @property
    def bytes_per_second(self) -> float:
        return self.bit_rate_bps / 8.0

    @property
    def block_period_s(self) -> float:
        """Seconds of video one stripe block holds."""
        return self.block_bytes / self.bytes_per_second


def _capacity(read_time_s: float, stream: StreamParameters) -> int:
    """Streams per disk if every block read costs *read_time_s*."""
    if read_time_s <= 0:
        raise ValueError(f"read time must be positive, got {read_time_s}")
    return int(stream.block_period_s / read_time_s)


def worst_case_streams_per_disk(
    drive: DriveParameters,
    stream: StreamParameters,
    cylinders: int,
) -> int:
    """Streams per disk assuming full-stroke seeks and full rotations."""
    read = (
        drive.seek_time_s(max(1, cylinders - 1))
        + drive.rotation_time_ms / 1000.0
        + drive.transfer_time_s(stream.block_bytes)
    )
    return _capacity(read, stream)


def average_case_streams_per_disk(
    drive: DriveParameters,
    stream: StreamParameters,
    cylinders: int,
) -> int:
    """Streams per disk with average (1/3-stroke) seeks and half
    rotations — the common "expected value" analytical design."""
    read = (
        drive.seek_time_s(max(1, cylinders // 3))
        + drive.rotation_time_ms / 2000.0
        + drive.transfer_time_s(stream.block_bytes)
    )
    return _capacity(read, stream)


def scan_streams_per_disk(
    drive: DriveParameters,
    stream: StreamParameters,
    cylinders: int,
) -> int:
    """Streams per disk under elevator rounds (one sweep per round).

    With N streams per round, the N seeks jointly traverse the surface
    once, so each seek covers ≈ cylinders/N.  The admission bound is
    the largest N whose round fits in one block period; solved by
    direct search since N appears on both sides.
    """
    transfer = drive.transfer_time_s(stream.block_bytes)
    rotation = drive.rotation_time_ms / 2000.0
    period = stream.block_period_s
    best = 0
    n = 1
    while True:
        seek = drive.seek_time_s(max(1, cylinders // n))
        round_time = n * (seek + rotation + transfer)
        if round_time <= period:
            best = n
            n += 1
        else:
            return best


@dataclasses.dataclass(frozen=True)
class CapacityEstimates:
    """All analytical bounds for one configuration, in terminals."""

    disks: int
    worst_case: int
    average_case: int
    scan: int
    transfer_limit: int

    def as_rows(self) -> list[tuple[str, int]]:
        return [
            ("worst-case analytical", self.worst_case),
            ("average-case analytical", self.average_case),
            ("elevator-scan analytical", self.scan),
            ("pure transfer limit", self.transfer_limit),
        ]


def estimate_capacity(
    drive: DriveParameters,
    stream: StreamParameters,
    disks: int,
    disk_capacity_bytes: int,
) -> CapacityEstimates:
    """Terminal-capacity estimates for a *disks*-drive striped server.

    With full striping every disk serves every stream, so the server
    capacity is streams-per-disk × disks.
    """
    if disks < 1:
        raise ValueError(f"need >= 1 disk, got {disks}")
    cylinders = max(1, disk_capacity_bytes // drive.cylinder_bytes)
    transfer_only = int(
        disks
        * drive.transfer_rate_bytes
        / stream.bytes_per_second
    )
    return CapacityEstimates(
        disks=disks,
        worst_case=disks * worst_case_streams_per_disk(drive, stream, cylinders),
        average_case=disks * average_case_streams_per_disk(drive, stream, cylinders),
        scan=disks * scan_streams_per_disk(drive, stream, cylinders),
        transfer_limit=transfer_only,
    )
