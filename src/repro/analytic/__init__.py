"""Analytical capacity and memory models (the §4 foil to simulation)."""

from repro.analytic.capacity import (
    CapacityEstimates,
    StreamParameters,
    average_case_streams_per_disk,
    estimate_capacity,
    scan_streams_per_disk,
    worst_case_streams_per_disk,
)
from repro.analytic.memory import (
    MemoryEstimate,
    caching_pays_for_video,
    five_minute_rule_break_even,
    predicted_memory_demand,
)

__all__ = [
    "CapacityEstimates",
    "MemoryEstimate",
    "StreamParameters",
    "average_case_streams_per_disk",
    "caching_pays_for_video",
    "estimate_capacity",
    "five_minute_rule_break_even",
    "predicted_memory_demand",
    "scan_streams_per_disk",
    "worst_case_streams_per_disk",
]
