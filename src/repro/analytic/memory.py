"""Analytical server-memory models.

Closed-form companions to the §7.3 simulations: how much buffer memory
a server needs as a function of prefetch policy, plus the paper's §7.6
argument that there is **no five-minute rule for video servers** —
caching video for reuse never pays, so memory should be the minimum
that keeps prefetching effective.
"""

from __future__ import annotations

import dataclasses

from repro.analytic.capacity import StreamParameters


@dataclasses.dataclass(frozen=True)
class MemoryEstimate:
    """Predicted aggregate buffer-pool demand, in bytes."""

    transient_bytes: int   # pages pinned by in-flight reads and replies
    prefetched_bytes: int  # pages holding prefetched-but-unused blocks
    total_bytes: int


def predicted_memory_demand(
    streams: int,
    disks: int,
    stream: StreamParameters,
    prefetch_depth: int = 1,
    max_advance_s: float | None = None,
) -> MemoryEstimate:
    """Aggregate memory demand of *streams* active streams.

    A stream touches each disk every ``disks × block_period`` seconds;
    a block prefetched on reference of its same-disk predecessor sits
    in memory for that long.  Depth-``d`` lookahead multiplies the
    exposure; delayed prefetching caps it at ``max_advance_s`` worth of
    video per stream.
    """
    if streams < 0 or disks < 1:
        raise ValueError("streams must be >= 0 and disks >= 1")
    if prefetch_depth < 0:
        raise ValueError(f"prefetch depth must be >= 0, got {prefetch_depth}")
    block = stream.block_bytes
    # One block in flight plus one being shipped, per stream.
    transient = streams * 2 * block
    resident_blocks_per_stream = prefetch_depth * disks
    if max_advance_s is not None:
        capped = max_advance_s / stream.block_period_s
        resident_blocks_per_stream = min(resident_blocks_per_stream, capped)
    prefetched = int(streams * resident_blocks_per_stream * block)
    return MemoryEstimate(
        transient_bytes=transient,
        prefetched_bytes=prefetched,
        total_bytes=transient + prefetched,
    )


def five_minute_rule_break_even(
    page_bytes: int,
    disk_dollars: float,
    disk_accesses_per_second: float,
    memory_dollars_per_mb: float,
) -> float:
    """Gray's break-even reference interval, in seconds.

    Keeping a page in memory pays when it is re-read more often than
    every ``(disk $ / accesses-per-s) / (memory $ per page)`` seconds.
    The paper's point (§7.6): sequential video pages are referenced
    exactly once per stream, so their re-reference interval is
    effectively infinite and the rule never favours caching — "it is
    best to purchase the minimum amount of memory necessary".
    """
    if min(page_bytes, disk_dollars, disk_accesses_per_second,
           memory_dollars_per_mb) <= 0:
        raise ValueError("all inputs must be positive")
    dollars_per_access_per_second = disk_dollars / disk_accesses_per_second
    dollars_per_page = memory_dollars_per_mb * page_bytes / (1024 * 1024)
    return dollars_per_access_per_second / dollars_per_page


def caching_pays_for_video(
    rereference_interval_s: float,
    break_even_s: float,
) -> bool:
    """Whether caching a video page beats buying more disk."""
    return rereference_interval_s <= break_even_s
