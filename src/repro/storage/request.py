"""Disk I/O requests as seen by the disk schedulers."""

from __future__ import annotations

import itertools
import math
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

#: Deadline used for requests with no timing constraint (pure background
#: prefetches under the non-real-time prefetcher).
NO_DEADLINE = math.inf

_sequence = itertools.count()


class DiskRequest:
    """One read of a stripe block from a specific disk.

    ``deadline`` is the absolute simulated time by which the read must
    complete to avoid a glitch at the requesting terminal.  It may be
    tightened after enqueue (e.g. when a real reference merges with an
    in-flight prefetch); schedulers therefore evaluate deadlines at pop
    time rather than caching priority at push time.
    """

    __slots__ = (
        "env",
        "byte_offset",
        "size",
        "cylinder",
        "deadline",
        "is_prefetch",
        "terminal_id",
        "enqueued_at",
        "seq",
        "done",
        "started_at",
        "completed_at",
        "cancelled",
        "failed",
    )

    def __init__(
        self,
        env: "Environment",
        byte_offset: int,
        size: int,
        cylinder: int,
        deadline: float = NO_DEADLINE,
        is_prefetch: bool = False,
        terminal_id: int = -1,
    ) -> None:
        if size <= 0:
            raise ValueError(f"request size must be positive, got {size}")
        self.env = env
        self.byte_offset = byte_offset
        self.size = size
        self.cylinder = cylinder
        self.deadline = deadline
        self.is_prefetch = is_prefetch
        self.terminal_id = terminal_id
        self.enqueued_at = env.now
        self.seq = next(_sequence)
        #: Fires when the read completes (value: the request itself).
        self.done = Event(env)
        self.started_at: float | None = None
        self.completed_at: float | None = None
        #: Set when the submitter gave up (degraded-mode timeout); the
        #: drive discards the request instead of servicing it.
        self.cancelled = False
        #: Set when the read completed unsuccessfully (drive failed).
        self.failed = False

    @property
    def slack(self) -> float:
        """Seconds remaining until the deadline (may be negative)."""
        return self.deadline - self.env.now

    def tighten_deadline(self, deadline: float) -> None:
        """Move the deadline earlier (never later)."""
        if deadline < self.deadline:
            self.deadline = deadline

    def complete(self) -> None:
        self.completed_at = self.env.now
        self.done.succeed(self)

    def cancel(self) -> None:
        """Tell the drive the submitter no longer wants this read."""
        self.cancelled = True

    def fail_read(self) -> None:
        """Complete the request unsuccessfully (permanent drive failure)."""
        self.failed = True
        self.complete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "prefetch" if self.is_prefetch else "read"
        return (
            f"<DiskRequest {kind} cyl={self.cylinder} "
            f"deadline={self.deadline:.3f} term={self.terminal_id}>"
        )
