"""The disk drive model (Seagate ST15150N parameters from Table 1).

Service time of a read =

* seek — ``settle + factor · √(cylinder distance)`` milliseconds
  (zero when the head is already on-cylinder);
* rotational latency — uniform over one revolution (8.333 ms);
* transfer — bytes / 7.4 Mbyte/s, plus one head-switch settle per
  cylinder boundary crossed mid-transfer;
* all three are skipped except the transfer when the read sequentially
  continues a live read-ahead cache context.

The drive services exactly one request at a time; *which* request comes
next is delegated to a pluggable scheduler (see :mod:`repro.sched`).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.sim.environment import Environment
from repro.sim.resources import Gate
from repro.sim.rng import RandomSource
from repro.sim.stats import BusyTracker, Tally, TimeWeighted
from repro.storage.cache import ReadAheadCache
from repro.storage.geometry import DiskGeometry
from repro.storage.request import DiskRequest

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sched.base import DiskScheduler


@dataclasses.dataclass(frozen=True)
class DriveParameters:
    """Mechanical and cache parameters of one drive (Table 1 defaults)."""

    seek_factor_ms: float = 0.283
    settle_time_ms: float = 0.75
    rotation_time_ms: float = 8.333
    transfer_rate_bytes: float = 7.4e6
    cylinder_bytes: int = 1_310_720  # 1.25 Mbytes
    cache_contexts: int = 8
    cache_context_bytes: int = 131_072  # 128 Kbytes

    def seek_time_s(self, distance: int) -> float:
        """Seconds to move the head across *distance* cylinders."""
        if distance < 0:
            raise ValueError(f"seek distance must be >= 0, got {distance}")
        if distance == 0:
            return 0.0
        return (self.settle_time_ms + self.seek_factor_ms * math.sqrt(distance)) / 1000.0

    def transfer_time_s(self, size: int) -> float:
        return size / self.transfer_rate_bytes


class DiskDrive:
    """One simulated drive plus its scheduling queue."""

    def __init__(
        self,
        env: Environment,
        disk_id: int,
        params: DriveParameters,
        geometry: DiskGeometry,
        scheduler: "DiskScheduler",
        rng: RandomSource,
    ) -> None:
        self.env = env
        self.disk_id = disk_id
        self.params = params
        self.geometry = geometry
        self.scheduler = scheduler
        self.rng = rng
        self.cache = ReadAheadCache(params.cache_contexts, params.cache_context_bytes)
        self.head_cylinder = 0
        # Statistics.
        self.busy = BusyTracker(env.now)
        self.queue_length = TimeWeighted(env.now)
        self.service_times = Tally()
        self.seek_distances = Tally()
        self.reads = 0
        self.bytes_read = 0
        self._work = Gate(env)
        # Fault-injection state (see repro.faults); all inert by default.
        self.failed = False
        self._slow_multipliers: list[float] = []
        self._outages = 0
        self._outage_gate = Gate(env)
        env.process(self._run(), name=f"disk-{disk_id}")

    # ------------------------------------------------------------------
    # Request submission
    # ------------------------------------------------------------------
    def submit(self, request: DiskRequest) -> DiskRequest:
        """Queue a read; ``request.done`` fires when it completes."""
        self.scheduler.push(request)
        self.queue_length.update(self.env.now, len(self.scheduler))
        self._work.open()
        return request

    # ------------------------------------------------------------------
    # Fault injection (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def add_slowdown(self, multiplier: float) -> None:
        """Stretch every service time by *multiplier* until removed."""
        if multiplier < 1.0:
            raise ValueError(f"slowdown multiplier must be >= 1, got {multiplier}")
        self._slow_multipliers.append(multiplier)

    def remove_slowdown(self, multiplier: float) -> None:
        self._slow_multipliers.remove(multiplier)

    def begin_outage(self) -> None:
        """Stop servicing requests; queued work waits until the outage ends."""
        self._outages += 1

    def end_outage(self) -> None:
        if self._outages <= 0:
            raise ValueError("end_outage() without a matching begin_outage()")
        self._outages -= 1
        if self._outages == 0:
            self._outage_gate.open()

    def fail_permanently(self) -> None:
        """Take the drive offline for good.

        Every queued and future request completes immediately with
        ``failed=True`` so submitters never hang on a dead drive.
        """
        self.failed = True
        self._work.open()
        self._outage_gate.open()

    @property
    def in_outage(self) -> bool:
        return self._outages > 0

    def _fail_queued(self) -> None:
        env = self.env
        while len(self.scheduler) > 0:
            request = self.scheduler.pop(env.now, self.head_cylinder)
            request.fail_read()
        self.queue_length.update(env.now, 0)

    # ------------------------------------------------------------------
    # The drive's service loop
    # ------------------------------------------------------------------
    def _run(self):
        env = self.env
        while True:
            if self.failed:
                self._fail_queued()
                yield self._work.wait()
                continue
            if self._outages > 0:
                yield self._outage_gate.wait()
                continue
            if len(self.scheduler) == 0:
                yield self._work.wait()
                continue
            request = self.scheduler.pop(env.now, self.head_cylinder)
            self.queue_length.update(env.now, len(self.scheduler))
            if request.cancelled:
                # The submitter timed out and re-dispatched; discard.
                request.complete()
                continue
            request.started_at = env.now
            service = self._service_time(request)
            for multiplier in self._slow_multipliers:
                service *= multiplier
            self.busy.begin(env.now)
            yield env.timeout(service)
            self.busy.end(env.now)
            self.reads += 1
            self.bytes_read += request.size
            self.service_times.record(service)
            request.complete()

    def _service_time(self, request: DiskRequest) -> float:
        params = self.params
        old_head = self.head_cylinder
        sequential = self.cache.access(request.byte_offset, request.size)
        crossings = self.geometry.cylinders_crossed(request.byte_offset, request.size)
        transfer = params.transfer_time_s(request.size)
        transfer += crossings * params.settle_time_ms / 1000.0
        self.head_cylinder = self.geometry.cylinder_of(
            min(request.byte_offset + request.size, self.geometry.capacity_bytes) - 1
        )
        if sequential:
            # Head already positioned: the read-ahead context continues,
            # so seek and rotational latency are skipped.
            return transfer
        distance = abs(request.cylinder - old_head)
        seek = params.seek_time_s(distance)
        latency = self.rng.uniform(0.0, params.rotation_time_ms / 1000.0)
        self.seek_distances.record(distance)
        return seek + latency + transfer

    def utilization(self) -> float:
        return self.busy.utilization(self.env.now)

    def reset_stats(self) -> None:
        now = self.env.now
        self.busy.reset(now)
        self.queue_length.reset(now)
        self.service_times.reset()
        self.seek_distances.reset()
        self.cache.reset_stats()
        self.reads = 0
        self.bytes_read = 0
