"""On-drive read-ahead cache (8 contexts × 128 Kbytes in Table 1).

SCSI drives of the era kept several sequential read-ahead *contexts*:
a read that continues exactly where an earlier read on a live context
left off is satisfied without mechanical positioning.  Because SPIFFI
lays each video's per-disk fragment out contiguously, back-to-back reads
of the same fragment hit a context and skip the seek and rotational
latency.
"""

from __future__ import annotations


class ReadAheadCache:
    """Tracks sequential contexts with LRU replacement."""

    def __init__(self, contexts: int, context_bytes: int) -> None:
        if contexts < 0:
            raise ValueError(f"contexts must be >= 0, got {contexts}")
        if contexts and context_bytes <= 0:
            raise ValueError(f"context size must be positive, got {context_bytes}")
        self.capacity = contexts
        self.context_bytes = context_bytes
        # Context end-offsets in LRU order (front = least recent).
        self._ends: list[int] = []
        self.hits = 0
        self.misses = 0

    def access(self, offset: int, size: int) -> bool:
        """Record a read; returns True when it continues a live context.

        On a hit the context advances to the new end of the read; on a
        miss a new context is (re)established, evicting the least
        recently used one if full.
        """
        if self.capacity == 0:
            return False
        end = offset + size
        try:
            index = self._ends.index(offset)
        except ValueError:
            self.misses += 1
            if len(self._ends) >= self.capacity:
                self._ends.pop(0)
            self._ends.append(end)
            return False
        self.hits += 1
        del self._ends[index]
        self._ends.append(end)
        return True

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
