"""Disk geometry: byte offsets → cylinders.

The paper's drives are modelled on the Seagate ST15150N but with a
constant cylinder size of 1.25 Mbytes ("although this disk has variable
capacity cylinders, for simplicity ... a constant cylinder size is
assumed").
"""

from __future__ import annotations


class DiskGeometry:
    def __init__(self, cylinder_bytes: int, capacity_bytes: int) -> None:
        if cylinder_bytes <= 0:
            raise ValueError(f"cylinder size must be positive, got {cylinder_bytes}")
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.cylinder_bytes = int(cylinder_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self.cylinder_count = -(-capacity_bytes // cylinder_bytes)

    def cylinder_of(self, offset: int) -> int:
        """Cylinder number containing byte *offset*."""
        if offset < 0 or offset >= self.capacity_bytes:
            raise ValueError(
                f"offset {offset} outside disk of {self.capacity_bytes} bytes"
            )
        return offset // self.cylinder_bytes

    def cylinders_crossed(self, offset: int, size: int) -> int:
        """Cylinder boundaries crossed while transferring *size* bytes."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        first = self.cylinder_of(offset)
        last = self.cylinder_of(min(offset + size, self.capacity_bytes) - 1)
        return last - first

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskGeometry(cylinders={self.cylinder_count}, "
            f"cylinder_bytes={self.cylinder_bytes})"
        )
