"""Disk models: geometry, read-ahead cache, requests, and drives."""

from repro.storage.cache import ReadAheadCache
from repro.storage.drive import DiskDrive, DriveParameters
from repro.storage.geometry import DiskGeometry
from repro.storage.request import NO_DEADLINE, DiskRequest

__all__ = [
    "DiskDrive",
    "DiskGeometry",
    "DiskRequest",
    "DriveParameters",
    "NO_DEADLINE",
    "ReadAheadCache",
]
