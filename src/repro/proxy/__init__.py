"""The proxy/edge prefix-cache tier.

A configurable proxy node between the terminals and the origin
server(s), caching the first K seconds of each title (hot-set chosen
by the access model's popularity weights) in its own bufferpool —
grounded in "An Optimal Prefix Replication Strategy for VoD Services"
(see PAPERS.md).  Disabled by default: the empty :class:`ProxySpec`
builds nothing and runs are bit-identical to the pre-proxy build.
"""

from repro.proxy.policies import (
    BreadthFirst,
    HottestFirst,
    PrefixPolicy,
    make_prefix_policy,
    prefix_policy_names,
    register_prefix_policy,
)
from repro.proxy.runtime import (
    ProxyRuntime,
    ProxyStats,
    ProxyView,
    prefix_block_count,
)
from repro.proxy.spec import ProxySpec, proxy_cache_dict

__all__ = [
    "BreadthFirst",
    "HottestFirst",
    "PrefixPolicy",
    "ProxyRuntime",
    "ProxySpec",
    "ProxyStats",
    "ProxyView",
    "make_prefix_policy",
    "prefix_block_count",
    "prefix_policy_names",
    "proxy_cache_dict",
    "register_prefix_policy",
]
