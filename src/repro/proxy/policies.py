"""Prefix-selection policies: which blocks the proxy pre-loads.

A prefix policy ranks every (video, block) pair inside the configured
prefix window; the :class:`~repro.proxy.runtime.ProxyRuntime` takes
pairs in that order until its memory budget is full.  The ranking sees
only the popularity *weights* of the access model (RNG-free, index =
title id) and the per-title prefix depth in blocks, so the pre-load is
a pure function of the config — no simulation events, no randomness.

Third-party policies plug in via :func:`register_prefix_policy`
without touching the runtime, mirroring the other component
registries::

    from repro.api import ProxySpec, register_prefix_policy

    register_prefix_policy("mine", MyPolicy)
    spec = ProxySpec(prefix_s=60.0, memory_bytes=64 * MB, policy="mine")
"""

from __future__ import annotations

import typing


class PrefixPolicy(typing.Protocol):
    """Orders candidate prefix blocks, hottest first."""

    def plan(
        self, weights: typing.Sequence[float], prefix_blocks: typing.Sequence[int]
    ) -> typing.Iterator[tuple[int, int]]:
        """Yield ``(video, block)`` pairs in descending priority.

        *weights* are the access-model popularity weights (index =
        title id); *prefix_blocks* gives each title's prefix depth in
        blocks.  Only blocks inside the prefix may be yielded.
        """
        ...  # pragma: no cover


def _ranked(weights: typing.Sequence[float]) -> list[int]:
    # Descending weight; title id breaks ties so the order is total.
    return sorted(range(len(weights)), key=lambda vid: (-weights[vid], vid))


class HottestFirst:
    """Whole prefixes, hottest title first (depth-first).

    Maximises full-prefix coverage of the head of the popularity
    curve: under a tight budget the hottest titles keep their entire
    startup window resident while cold titles get nothing.
    """

    def plan(self, weights, prefix_blocks):
        for vid in _ranked(weights):
            for block in range(prefix_blocks[vid]):
                yield vid, block


class BreadthFirst:
    """Block 0 of every title, then block 1, ... (breadth-first).

    Spreads the budget across the catalog: every title gets *some*
    instant-start coverage before any title gets a deep prefix —
    the right shape when the skew is mild and misses are uniform.
    """

    def plan(self, weights, prefix_blocks):
        ranked = _ranked(weights)
        depth = max(prefix_blocks, default=0)
        for block in range(depth):
            for vid in ranked:
                if block < prefix_blocks[vid]:
                    yield vid, block


_REGISTRY: dict[str, typing.Callable[[], PrefixPolicy]] = {}


def register_prefix_policy(
    name: str, factory: typing.Callable[[], PrefixPolicy]
) -> None:
    """Make *name* selectable via ``ProxySpec(policy=name)``."""
    if not name or not isinstance(name, str):
        raise ValueError(
            f"prefix policy name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def prefix_policy_names() -> tuple[str, ...]:
    """Every currently registered policy name (registration order)."""
    return tuple(_REGISTRY)


def make_prefix_policy(name: str) -> PrefixPolicy:
    """A fresh policy instance for *name*."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown prefix policy {name!r}; "
            f"choose from {prefix_policy_names()}"
        )
    return _REGISTRY[name]()


register_prefix_policy("hottest", HottestFirst)
register_prefix_policy("breadth", BreadthFirst)
