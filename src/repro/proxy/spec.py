"""The proxy tier's configuration value object.

``ProxySpec`` composes a prefix-caching proxy between the terminals
and the origin server(s): the proxy holds the first ``prefix_s``
seconds of every title in its own bufferpool (budgeted by
``memory_bytes``), pre-loaded hottest-first by the named prefix policy
and thereafter managed by the named replacement policy.  The default
spec is *disabled* — no proxy is built, no simulation events are
added, and runs are bit-identical to a build without the proxy
subsystem (pinned by the golden digest tests), mirroring the
``FaultSpec``/``ReplicationSpec``/``ArrivalSpec`` convention.
"""

from __future__ import annotations

import dataclasses

from repro.bufferpool.registry import ReplacementSpec
from repro.proxy.policies import make_prefix_policy, prefix_policy_names


@dataclasses.dataclass(frozen=True)
class ProxySpec:
    """Prefix-cache proxy between terminals and the origin servers."""

    #: Seconds of each title's head the proxy may serve.  0 disables
    #: the proxy entirely (the default: no tier is built).
    prefix_s: float = 0.0
    #: The proxy's own bufferpool budget.  Must be positive when the
    #: proxy is enabled and 0 when disabled.
    memory_bytes: int = 0
    #: Replacement policy for the proxy's bufferpool (same registry as
    #: the server pools — love-prefetch vs LRU is a free ablation).
    replacement: ReplacementSpec = dataclasses.field(
        default_factory=ReplacementSpec
    )
    #: Registered prefix policy choosing which blocks to pre-load
    #: under the memory budget (see :mod:`repro.proxy.policies`).
    policy: str = "hottest"

    def __post_init__(self) -> None:
        if not isinstance(self.replacement, ReplacementSpec):
            raise TypeError(
                f"replacement must be a ReplacementSpec, "
                f"got {self.replacement!r}"
            )
        if self.prefix_s < 0:
            raise ValueError(f"prefix_s must be >= 0, got {self.prefix_s}")
        if self.policy not in prefix_policy_names():
            raise ValueError(
                f"unknown prefix policy {self.policy!r}; "
                f"choose from {prefix_policy_names()}"
            )
        if self.enabled and self.memory_bytes <= 0:
            raise ValueError(
                f"an enabled proxy (prefix_s={self.prefix_s:g}) needs a "
                f"positive memory budget, got {self.memory_bytes}"
            )
        if not self.enabled and self.memory_bytes != 0:
            raise ValueError(
                f"proxy memory ({self.memory_bytes} bytes) without a prefix "
                "length does nothing; set prefix_s > 0 to enable the proxy"
            )

    @property
    def enabled(self) -> bool:
        """Whether a proxy tier is built at all."""
        return self.prefix_s > 0

    def build_policy(self):
        """A fresh prefix-policy instance."""
        return make_prefix_policy(self.policy)

    def label(self) -> str:
        """Short human-readable tag for experiment tables."""
        if not self.enabled:
            return "no-proxy"
        mb = self.memory_bytes / (1024 * 1024)
        return (
            f"proxy {self.prefix_s:g}s/{mb:g}MB "
            f"{self.replacement.label()}/{self.policy}"
        )


def proxy_cache_dict(spec: ProxySpec) -> dict:
    """Canonical cache/digest form (component specs collapse to names)."""
    return {
        "prefix_s": spec.prefix_s,
        "memory_bytes": spec.memory_bytes,
        "replacement": spec.replacement.name,
        "policy": spec.policy,
    }
