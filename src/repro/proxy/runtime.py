"""The proxy tier at run time: a prefix cache in front of the origin.

One :class:`ProxyRuntime` sits between the terminals and the origin
server(s).  It owns its own :class:`~repro.bufferpool.pool.BufferPool`
(budgeted by ``ProxySpec.memory_bytes``, managed by the spec's
``ReplacementSpec``) and is stocked at construction with the hottest
prefix blocks under the budget — a pure function of the config
(popularity weights are RNG-free and the pre-load creates no
simulation events), so determinism is untouched.

Per request, only blocks *inside* a title's prefix window ever reach
the proxy; the tail of every stream keeps flowing terminal → origin
directly, modelling the manifest-level split of a real CDN edge:

* **hit** — the block is resident: serve it straight from proxy
  memory over the terminal network (no disk, no origin CPU);
* **miss** — fetch from the origin over the modeled network (one
  control message on the *forward* bus — the cluster interconnect
  when the proxy fronts a cluster — then the origin's full service
  path), install the block, and relay it to the terminal.

Concurrent misses for one block merge onto a single origin fetch via
the pool's in-flight machinery, exactly like the server pools.  The
proxy box itself is assumed not CPU-bound (it does no scheduling or
disk work), so no processor is modeled — its costs are the transfers.
"""

from __future__ import annotations

import typing

from repro.bufferpool.pool import INFLIGHT, MISS, BufferPool
from repro.telemetry import trace as trace_events

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.layout.base import Placement
    from repro.media.video import BlockSchedule
    from repro.netsim.bus import NetworkBus
    from repro.proxy.spec import ProxySpec
    from repro.sim.environment import Environment
    from repro.sim.events import Event
    from repro.telemetry.trace import TraceRecorder


def prefix_block_count(schedule: "BlockSchedule", prefix_s: float) -> int:
    """Blocks covering the first *prefix_s* seconds of one title.

    The byte length of the first ``prefix_s * fps`` frames, rounded up
    to whole stripe blocks and capped at the title's block count.
    """
    sequence = schedule.sequence
    frames = min(sequence.frame_count, int(prefix_s * sequence.fps))
    if frames <= 0:
        return 0
    prefix_bytes = sequence.cumulative_list[frames]
    return min(schedule.block_count, -(-prefix_bytes // schedule.block_size))


class ProxyStats:
    """Proxy request accounting (hits + misses == requests, always)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Prefix-range block requests that reached the proxy.
        self.requests = 0
        #: Served from proxy memory (joins on an in-flight fill count:
        #: the terminal did not trigger its own origin fetch).
        self.hits = 0
        #: Fetched from the origin (and installed) on demand.
        self.misses = 0
        #: Bytes delivered to terminals straight from proxy memory.
        self.served_bytes = 0
        #: Bytes pulled from the origin on misses (then relayed).
        self.origin_bytes = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ProxyRuntime:
    """One proxy node: prefix catalog, bufferpool, request service."""

    def __init__(
        self,
        env: "Environment",
        spec: "ProxySpec",
        schedules: typing.Sequence["BlockSchedule"],
        weights: typing.Sequence[float],
        block_size: int,
        forward_bus: "NetworkBus",
        control_message_bytes: int,
    ) -> None:
        if len(schedules) != len(weights):
            raise ValueError(
                f"{len(schedules)} schedules vs {len(weights)} weights"
            )
        capacity = spec.memory_bytes // block_size
        if capacity < 1:
            raise ValueError(
                f"proxy memory of {spec.memory_bytes} bytes holds no "
                f"{block_size}-byte block"
            )
        self.env = env
        self.spec = spec
        self.schedules = list(schedules)
        self.block_size = block_size
        self.forward_bus = forward_bus
        self.control_message_bytes = control_message_bytes
        self.pool = BufferPool(env, capacity, spec.replacement.build())
        #: Per-title prefix depth in blocks; requests past this bypass
        #: the proxy entirely (the origin streams the tail).
        self.prefix_blocks = [
            prefix_block_count(schedule, spec.prefix_s)
            for schedule in self.schedules
        ]
        self.stats = ProxyStats()
        #: Optional structured trace (``proxy.*`` kinds).
        self.trace: "TraceRecorder | None" = None
        self._preload(weights)

    def _preload(self, weights: typing.Sequence[float]) -> None:
        """Stock the pool with the policy's hottest blocks, budget-bound.

        Inserted coldest-first so the hottest block ends up most
        recently touched in the replacement order; everything is
        flagged prefetched, so love-prefetch genuinely protects
        untouched prefixes — the LRU-vs-love-prefetch ablation is real.
        """
        selection: list[tuple[int, int]] = []
        capacity = self.pool.capacity_pages
        for pair in self.spec.build_policy().plan(weights, self.prefix_blocks):
            if len(selection) >= capacity:
                break
            selection.append(pair)
        for video_id, block in reversed(selection):
            size = self.schedules[video_id].block_bytes(block)
            self.pool.insert_resident((video_id, block), size, prefetched=True)
        self.preloaded_pages = len(selection)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def serves(self, video_id: int, block: int) -> bool:
        """Whether *block* of *video_id* is inside the prefix window."""
        return (
            0 <= video_id < len(self.prefix_blocks)
            and block < self.prefix_blocks[video_id]
        )

    def request_block(
        self,
        origin,
        terminal_id: int,
        video_id: int,
        origin_video_id: int,
        block: int,
        size: int,
        placement: "Placement",
        deadline: float,
    ) -> "Event":
        """Serve a prefix block; the event fires on delivery.

        *origin* is the :class:`~repro.core.node.ServerFabric` behind
        the proxy; *video_id* is the proxy's (catalog-global) title id
        while *origin_video_id* is the same title in the origin's local
        numbering (they differ only behind a cluster front door).
        """
        done = self.env.event()
        self.env.process(
            self._service(
                origin, terminal_id, video_id, origin_video_id,
                block, size, placement, deadline, done,
            ),
            name="proxy-svc",
        )
        return done

    def _service(
        self, origin, terminal_id, video_id, origin_video_id,
        block, size, placement, deadline, done,
    ):
        env = self.env
        stats = self.stats
        stats.requests += 1
        key = (video_id, block)
        page, status = yield from self.pool.acquire(
            key, size, terminal_id=terminal_id
        )
        if status == MISS:
            stats.misses += 1
            if self.trace is not None:
                self.trace.record(
                    trace_events.PROXY_MISS,
                    terminal=terminal_id, video=video_id, block=block,
                )
            # Control message proxy → origin, then the origin's full
            # service path.  The origin read must land early enough to
            # leave time for the proxy → terminal relay.
            yield from self.forward_bus.transfer(self.control_message_bytes)
            relay = origin.bus.params.transit_time(size)
            yield origin.node(placement.node).request_block(
                terminal_id=terminal_id,
                video_id=origin_video_id,
                block=block,
                size=size,
                placement=placement,
                deadline=deadline - relay,
            )
            self.pool.finish_io(page)
            stats.origin_bytes += size
            if self.trace is not None:
                self.trace.record(
                    trace_events.PROXY_FILL, video=video_id, block=block, bytes=size
                )
        else:
            if status == INFLIGHT:
                # Merge onto the fill already heading for the origin.
                yield page.io_event
            stats.hits += 1
            stats.served_bytes += size
            if self.trace is not None:
                self.trace.record(
                    trace_events.PROXY_HIT,
                    terminal=terminal_id, video=video_id, block=block,
                )
        # Data hop proxy → terminal on the terminal-side network.
        yield from origin.bus.transfer(size)
        self.pool.unpin(page)
        done.succeed(env.now)
        return None

    def reset_stats(self) -> None:
        self.stats.reset()
        self.pool.reset_stats()


class ProxyView:
    """A fabric-facing handle binding the runtime to one origin.

    Terminals resolve ``fabric.proxy`` once and call ``serves`` /
    ``request_block`` on it; the view supplies the origin fabric and
    translates the origin's local title ids to the proxy's catalog ids
    (identity for the standalone system; the placement's local → global
    map behind a cluster front door).
    """

    __slots__ = ("runtime", "origin", "_to_global")

    def __init__(
        self,
        runtime: ProxyRuntime,
        origin,
        to_global: typing.Sequence[int] | None = None,
    ) -> None:
        self.runtime = runtime
        self.origin = origin
        self._to_global = to_global

    def serves(self, video_id: int, block: int) -> bool:
        if self._to_global is not None:
            video_id = self._to_global[video_id]
        return self.runtime.serves(video_id, block)

    def request_block(
        self, terminal_id, video_id, block, size, placement, deadline
    ) -> "Event":
        global_id = (
            video_id if self._to_global is None else self._to_global[video_id]
        )
        return self.runtime.request_block(
            origin=self.origin,
            terminal_id=terminal_id,
            video_id=global_id,
            origin_video_id=video_id,
            block=block,
            size=size,
            placement=placement,
            deadline=deadline,
        )
