"""Assembly and execution of a multi-node SPIFFI cluster.

``SpiffiCluster`` builds N :class:`~repro.core.node.SpiffiNode` members
onto **one** shared simulation environment, joined by a dedicated
interconnect :class:`~repro.netsim.bus.NetworkBus` and fronted by the
placement/routing/session layers of this package.  Cross-node health is
tracked by reusing :class:`repro.replication.health.HealthMonitor` —
it is generic over indices, so the same SUSPECT/DOWN ranking that
routes replica reads around sick disks routes sessions around sick
members.

Node outages are scripted on ``config.faults`` (``fail_node_ids``,
``fail_nodes_at_s``, ``node_recover_after_s``, and an optional
``fail_node_stagger_s`` spacing consecutive failures).  Failing a
member marks it DOWN in the health monitor (so the router stops
choosing it) and fires its outage event (so every session queued on or
streaming from it wakes and fails over); recovery reverts the health
state and arms a fresh outage event.  The member's simulation processes
are *not* killed — like a real front end, the cluster simply stops
sending work to a dead node and abandons what it was doing there.

With ``config.self_heal`` enabled the cluster additionally *heals*:
a :class:`~repro.cluster.rebuild.ClusterRebuildManager` re-replicates a
dead member's titles onto survivors (into spare slots provisioned from
the build-time :class:`~repro.cluster.selfheal.RebuildPlan`), recovered
members re-sync their stale catalog before re-entering routing, and the
front door spills arrivals away from full queues instead of balking.

The degenerate cluster — one node, closed workload, ``partitioned``
placement — builds exactly the standalone system on the same seed and
is bit-identical to it (pinned by the cluster golden-digest test):
constructing the bus, health monitor, router, and outage events
schedules no simulation events and draws no randomness.
"""

from __future__ import annotations

import itertools
import math
import time

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import collect_cluster_metrics
from repro.cluster.rebuild import ClusterRebuildManager
from repro.cluster.selfheal import RebuildPlan
from repro.cluster.sessions import ClusterSessionGenerator
from repro.core.metrics import RunMetrics
from repro.core.node import SpiffiNode
from repro.faults.schedule import FaultEvent
from repro.faults.spec import DISK_OUTAGE
from repro.media.access import make_access_model
from repro.netsim.bus import NetworkBus
from repro.proxy.runtime import ProxyRuntime, ProxyView
from repro.replication.health import HealthMonitor
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.rng import RandomSource
from repro.workload.qos import QosMonitor


class ClusterStats:
    """Cluster-level counters over the measurement window."""

    def __init__(self, nodes: int = 1) -> None:
        self._nodes = nodes
        self.reset()

    def reset(self) -> None:
        #: Node outages applied (scripted fault driver).
        self.node_outages = 0
        #: Nodes brought back by the recovery script.
        self.node_recoveries = 0
        #: Self-healing: titles re-replicated onto survivors.
        self.titles_rebuilt = 0
        #: Planned copies abandoned because every source died first.
        self.titles_unrecoverable = 0
        #: Moved bytes (read + write) of completed rebuild copies.
        self.rebuild_bytes = 0
        #: Recovered members that completed a catalog resync.
        self.rejoin_resyncs = 0
        #: Moved bytes (transfer + write) of rejoin resyncs.
        self.rejoin_resync_bytes = 0
        #: Per-member rebuild traffic: bytes written to each node as a
        #: re-replication destination / read from it as a source.
        self.rebuild_bytes_in = [0] * self._nodes
        self.rebuild_bytes_out = [0] * self._nodes


class SpiffiCluster:
    """N SPIFFI nodes, one environment, one front door."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.env = Environment(queue=config.node.sim.build_queue())
        base = config.node
        self.placement = config.placement.build(config.nodes, base.video_count)
        # Scripted outages + rebuild: plan the re-replication at build
        # time so every destination member is born with the spare
        # library/layout slots its future copies will land in.  With
        # self-healing disabled (the default) no plan exists, no spares
        # are allocated, and member construction is untouched.
        self.heal_plan: RebuildPlan | None = None
        spares = [0] * config.nodes
        if config.self_heal.rebuild and config.faults.node_outages_enabled:
            self.heal_plan = RebuildPlan(
                self.placement, config.faults.fail_node_ids
            )
            spares = self.heal_plan.spares
        # The 1-node closed cluster must be the standalone system: same
        # member seed, full local catalog, its own terminal population.
        closed = not config.workload.enabled
        self.members = [
            SpiffiNode(
                base.replace(seed=config.seed + index),
                env=self.env,
                local_videos=self.placement.local_count(index) + spares[index],
                closed_terminals=closed,
            )
            for index in range(config.nodes)
        ]
        #: Cluster interconnect (control traffic between front end and
        #: members); sized like the member buses.
        self.interconnect = NetworkBus(self.env, base.network)
        #: Member health, reusing the disk-health state machine over
        #: node indices (rank >= 2 — DOWN or FAILED — is unavailable).
        self.health = HealthMonitor(
            self.env, config.nodes, base.replication.suspect_cooldown_s
        )
        self._down_events = [Event(self.env) for _ in range(config.nodes)]
        self.qos = QosMonitor(config.workload.startup_slo_s)
        self.stats = ClusterStats(config.nodes)
        #: The self-healing layer: re-replication on outage, resync on
        #: rejoin.  None (and zero-cost) unless the config both enables
        #: rebuild and scripts an outage to heal around.
        self.rebuild_manager: ClusterRebuildManager | None = None
        if self.heal_plan is not None:
            self.rebuild_manager = ClusterRebuildManager(
                self, config.self_heal, self.heal_plan
            )
        self.router = config.routing.build(self)
        #: The edge proxy tier: one prefix cache at the front door,
        #: shared by every member's terminals over the global catalog.
        self.proxy_runtime: ProxyRuntime | None = None
        if config.proxy.enabled:
            self._build_proxy()
        self.workload: ClusterSessionGenerator | None = None
        if config.workload.enabled:
            self.workload = ClusterSessionGenerator(
                self.env,
                self,
                config.workload,
                RandomSource(config.seed).spawn("cluster-workload"),
            )
        self._started = False

    def _build_proxy(self) -> None:
        """Assemble the edge prefix cache over the global catalog.

        Per-title schedules come from the primary member's copy (every
        replica is byte-identical, so the choice is cosmetic), weights
        from the same popularity model the session generator selects
        with.  Every member gets a :class:`ProxyView` translating its
        local title ids, so terminals spawned on any member consult the
        one shared front-door cache.  Misses forward over the
        interconnect; construction draws no randomness and schedules no
        events.
        """
        config = self.config
        base = config.node
        catalog = self.placement.catalog_size
        weights = make_access_model(
            base.access_model, catalog, base.zipf_skew
        ).weights()
        schedules = []
        for title in range(catalog):
            primary = self.placement.primary(title)
            local = self.placement.local_id(title, primary)
            schedules.append(
                self.members[primary].library[local].schedule(base.stripe_bytes)
            )
        self.proxy_runtime = ProxyRuntime(
            self.env,
            config.proxy,
            schedules=schedules,
            weights=weights,
            block_size=base.stripe_bytes,
            forward_bus=self.interconnect,
            control_message_bytes=base.control_message_bytes,
        )
        for index, member in enumerate(self.members):
            # Sized to the member's whole library — including any spare
            # re-replication slots — so a rebuilt title streams through
            # the proxy with its global id like any construction copy.
            to_global = [0] * member.library.title_count
            for title in range(catalog):
                if index in self.placement.nodes_for(title):
                    to_global[self.placement.local_id(title, index)] = title
            if self.heal_plan is not None:
                for work in self.heal_plan.per_dead.values():
                    for item in work:
                        if item.dest == index:
                            to_global[item.dest_local] = item.title
            member.proxy = ProxyView(self.proxy_runtime, member, to_global)

    def enable_proxy_tracing(self, capacity: int = 100_000):
        """Attach a trace recorder to the edge proxy (``proxy.*`` kinds)."""
        if self.proxy_runtime is None:
            raise ValueError("config enables no proxy; nothing to trace")
        from repro.telemetry.trace import TraceRecorder

        recorder = TraceRecorder(self.env, capacity)
        self.proxy_runtime.trace = recorder
        return recorder

    def enable_cluster_tracing(self, capacity: int = 100_000):
        """Attach a trace recorder to the self-healing layer
        (``cluster.rebuild.*`` / ``cluster.rejoin.*`` plus member
        ``health.change`` transitions); self-healing must be active."""
        if self.rebuild_manager is None:
            raise ValueError(
                "config enables no self-healing rebuild; nothing to trace"
            )
        from repro.telemetry.trace import TraceRecorder

        recorder = TraceRecorder(self.env, capacity)
        self.rebuild_manager.trace = recorder
        self.health.trace = recorder
        return recorder

    # ------------------------------------------------------------------
    # Member availability (consulted by the router and sessions)
    # ------------------------------------------------------------------
    def node_available(self, index: int) -> bool:
        """Whether member *index* can take (or keep) sessions."""
        return self.health.rank(index) < 2  # below DOWN

    def down_event(self, index: int) -> Event:
        """Fires when member *index* suffers an outage; re-armed on
        recovery, so capture it per wait, not per session."""
        return self._down_events[index]

    def rebuild_load(self, node: int):
        """Self-heal traffic load on *node* for the router's ordering
        (integer 0 — not merely 0.0 — when self-healing is off, so the
        historical all-integer load keys are bit-preserved)."""
        if self.rebuild_manager is None:
            return 0
        return self.rebuild_manager.load(node)

    def spill_target(
        self, title: int, exclude: int, queue_limit: int
    ) -> int | None:
        """Placement-aware admission: an alternative replica holder
        with queue room, or None (always None when the feature is off,
        leaving the front door's historical balk path untouched)."""
        if not self.config.self_heal.placement_aware_admission:
            return None
        return self.router.spill_candidate(title, exclude, queue_limit)

    # ------------------------------------------------------------------
    # Scripted node outages
    # ------------------------------------------------------------------
    def _fault_driver(self):
        """Apply the outage script: each listed node fails at
        ``fail_nodes_at_s + k * fail_node_stagger_s`` and (when scripted)
        begins recovery ``node_recover_after_s`` after its own failure.

        Actions are grouped by instant and replayed with one timeout per
        distinct time; with zero stagger this degenerates to exactly the
        historical two-batch schedule (all failures, then all
        recoveries, each batch in ``fail_node_ids`` order) — same event
        count, same ordering, bit-identical digests.
        """
        faults = self.config.faults
        actions: list[tuple[float, object, int]] = []
        for order, index in enumerate(faults.fail_node_ids):
            fail_at = faults.fail_nodes_at_s + order * faults.fail_node_stagger_s
            actions.append((fail_at, self._fail_node, index))
            if faults.node_recover_after_s > 0:
                actions.append(
                    (
                        fail_at + faults.node_recover_after_s,
                        self._recover_node,
                        index,
                    )
                )
        actions.sort(key=lambda action: action[0])  # stable on ties
        elapsed = 0.0
        for at, group in itertools.groupby(actions, key=lambda action: action[0]):
            yield self.env.timeout(at - elapsed)
            elapsed = at
            for _, apply, index in group:
                apply(index)

    def _outage_event(self, index: int) -> FaultEvent:
        faults = self.config.faults
        duration = (
            faults.node_recover_after_s
            if faults.node_recover_after_s > 0
            else math.inf
        )
        return FaultEvent(
            start_s=self.env.now,
            kind=DISK_OUTAGE,  # the health monitor's generic outage kind
            target=index,
            duration_s=duration,
            magnitude=0.0,
        )

    def _fail_node(self, index: int) -> None:
        self.stats.node_outages += 1
        self.health.fault_applied(self._outage_event(index))
        self._down_events[index].succeed()

    def _recover_node(self, index: int) -> None:
        """A scripted recovery instant: with rejoin resync configured
        the member first re-syncs its stale catalog (staying DOWN and
        unroutable until the resync lands); otherwise it re-enters
        routing immediately, the historical behaviour."""
        if (
            self.rebuild_manager is not None
            and self.config.self_heal.rejoin_resync_fraction > 0
        ):
            self.rebuild_manager.begin_rejoin(index)
            return
        self._complete_recovery(index)

    def _complete_recovery(self, index: int) -> None:
        self.stats.node_recoveries += 1
        self.health.fault_reverted(self._outage_event(index))
        self._down_events[index] = Event(self.env)

    # ------------------------------------------------------------------
    # Execution (the paper's methodology, cluster-wide)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the workload and the outage script."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        if self.config.faults.node_outages_enabled:
            self.env.process(self._fault_driver(), name="cluster-faults")
        if self.workload is not None:
            self.workload.start()
            return
        for member in self.members:
            member.start()

    def run(self) -> RunMetrics:
        """Warm up, measure, and collect across every member."""
        config = self.config
        self.start()
        self.env.run(until=config.warmup_s)
        self.reset_stats()
        self.env.run(until=config.warmup_s + config.measure_s)
        return collect_cluster_metrics(self, config.measure_s)

    def reset_stats(self) -> None:
        """Begin the measurement window: zero every statistic."""
        for member in self.members:
            member.reset_stats()
        self.interconnect.reset_stats()
        self.qos.reset()
        self.stats.reset()
        if self.proxy_runtime is not None:
            self.proxy_runtime.reset_stats()
        if self.workload is not None:
            self.workload.reset_stats()


def execute_cluster(config: ClusterConfig) -> RunMetrics:
    """The registered executor behind ``run(ClusterConfig)``.

    Mirrors :func:`repro.core.system.execute_simulation`: the returned
    metrics carry execution accounting (wall time and events processed,
    covering construction plus the run).
    """
    from repro.telemetry.runstats import RunStopwatch

    started = time.perf_counter()
    cluster = SpiffiCluster(config)
    with RunStopwatch(cluster.env) as watch:
        metrics = cluster.run()
    watch.wall_time_s = time.perf_counter() - started
    return watch.stamp(metrics)


def run_cluster(config: ClusterConfig) -> RunMetrics:
    """Build and run one cluster.

    A thin type-checked delegate to the unified :func:`repro.api.run`
    entry point, kept for its historical name.
    """
    if not isinstance(config, ClusterConfig):
        raise TypeError(
            f"run_cluster takes a ClusterConfig, got "
            f"{type(config).__name__}; use repro.api.run for other "
            "config types"
        )
    from repro.runnable import run

    return run(config)
