"""Multi-node SPIFFI: placement, routing, and cross-node failover.

The paper scales a single SPIFFI server; this package promotes that
server to a *cluster member* (:class:`~repro.core.node.SpiffiNode`) and
adds the installation-level layers around it:

* :mod:`~repro.cluster.placement` — which node stores which title
  (``partitioned`` / ``replicated`` / ``hybrid-hot-replicated``);
* :mod:`~repro.cluster.routing` — which replica host serves a session
  (``least-loaded`` / ``consistent-hash`` / ``locality``);
* :mod:`~repro.cluster.sessions` — the cluster-wide open workload with
  cross-node failover when a member drops;
* :mod:`~repro.cluster.selfheal` / :mod:`~repro.cluster.rebuild` — the
  self-healing layer: catalog re-replication onto survivors, node
  rejoin resync, and placement-aware (spill) admission;
* :mod:`~repro.cluster.system` — N members on one simulation
  environment, scripted node outages, cluster-wide metrics.

Everything is registry-backed and deterministic, and the degenerate
1-node closed cluster is bit-identical to the standalone system.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import collect_cluster_metrics
from repro.cluster.placement import (
    CatalogPlacement,
    PlacementSpec,
    placement_names,
    register_placement,
)
from repro.cluster.rebuild import ClusterRebuildManager
from repro.cluster.routing import (
    RequestRouter,
    RouterSpec,
    register_router,
    router_names,
)
from repro.cluster.selfheal import RebuildPlan, SelfHealSpec
from repro.cluster.sessions import ClusterSessionGenerator, ClusterSessionStats
from repro.cluster.system import ClusterStats, SpiffiCluster, run_cluster

__all__ = [
    "CatalogPlacement",
    "ClusterConfig",
    "ClusterRebuildManager",
    "ClusterSessionGenerator",
    "ClusterSessionStats",
    "ClusterStats",
    "PlacementSpec",
    "RebuildPlan",
    "RequestRouter",
    "RouterSpec",
    "SelfHealSpec",
    "SpiffiCluster",
    "collect_cluster_metrics",
    "placement_names",
    "register_placement",
    "register_router",
    "router_names",
    "run_cluster",
]
