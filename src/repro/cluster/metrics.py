"""Cluster-wide :class:`~repro.core.metrics.RunMetrics` aggregation.

The cluster reuses the single-run metrics schema — the experiment
machinery, SLO checks, and report tables all read ``RunMetrics`` — and
fills it by aggregating across members exactly the way
:func:`repro.core.metrics.collect_metrics` reads one system: counters
sum, utilizations average over devices, latency means are
count-weighted, maxima take the max.  Session and startup-QoS numbers
come from the cluster's own front door (the session generator and the
shared :class:`~repro.workload.qos.QosMonitor`), which see every
customer regardless of the member that served them.

Caveats (documented, deliberate): the network columns sum the
per-member bus figures plus the interconnect, so the "peak" is the sum
of per-bus peaks (an upper bound — members peak at different
instants); the admission queue-length max is the largest single-member
queue, not the instantaneous cluster-wide sum.

Multi-node runs additionally carry a ``per_node`` breakdown — one
mapping per member (routed sessions, queue depth, disk utilization,
rebuild traffic, availability) — as a diagnostic view; it is excluded
from digests and equality, so the aggregates stay bit-identical whether
or not anyone reads it.

The degenerate 1-node closed cluster bypasses aggregation entirely and
returns ``collect_metrics`` of its one member verbatim — that is what
keeps it bit-identical to the standalone system.
"""

from __future__ import annotations

import typing

from repro.core.metrics import RunMetrics, collect_metrics

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.system import SpiffiCluster


def collect_cluster_metrics(
    cluster: "SpiffiCluster", measure_s: float
) -> RunMetrics:
    """Read the post-measurement statistics out of a finished cluster."""
    members = cluster.members
    if len(members) == 1 and cluster.workload is None:
        return collect_metrics(members[0], measure_s)

    terminals = [t for member in members for t in member.terminals]
    server_nodes = [node for member in members for node in member.nodes]
    pools = [node.pool for node in server_nodes]
    drives = [drive for node in server_nodes for drive in node.drives]
    prefetchers = [p for node in server_nodes for p in node.prefetchers]
    now = cluster.env.now

    references = sum(pool.stats.references for pool in pools)
    hits = sum(pool.stats.hits for pool in pools)
    inflight = sum(pool.stats.inflight_hits for pool in pools)
    rereferences = sum(pool.stats.rereferences for pool in pools)

    glitch_durations = [t.stats.glitch_durations for t in terminals]
    total_glitch_events = sum(t.count for t in glitch_durations)
    glitch_time = sum(t.mean * t.count for t in glitch_durations)

    response_counts = sum(t.stats.response_time.count for t in terminals)
    response_total = sum(
        t.stats.response_time.mean * t.stats.response_time.count for t in terminals
    )
    response_max = max(
        (t.stats.response_time.maximum for t in terminals if t.stats.response_time.count),
        default=0.0,
    )
    startup_counts = sum(t.stats.startup_latency.count for t in terminals)
    startup_total = sum(
        t.stats.startup_latency.mean * t.stats.startup_latency.count
        for t in terminals
    )
    disk_utils = [drive.busy.utilization(now) for drive in drives]

    admissions = [member.admission for member in members]
    wait_count = sum(a.wait_times.count for a in admissions)
    wait_total = sum(a.wait_times.mean * a.wait_times.count for a in admissions)

    fault_runtimes = [m.faults for m in members if m.faults is not None]
    repl_stats = [
        m.replication.stats for m in members if m.replication is not None
    ]
    rebuild_count = sum(s.rebuild_durations.count for s in repl_stats)
    rebuild_total = sum(
        s.rebuild_durations.mean * s.rebuild_durations.count for s in repl_stats
    )

    share_leaders = share_followers = merged = chain_reads = chain_breaks = 0
    for member in members:
        share_leaders += member.piggyback.batches_launched
        share_followers += member.piggyback.terminals_batched
        if member.sharing is not None:
            share_leaders += member.sharing.stats.batches_launched
            share_followers += member.sharing.stats.batch_followers
            merged += member.sharing.stats.merged_sessions
            chain_reads += member.sharing.stats.chain_reads
            chain_breaks += member.sharing.stats.chain_breaks
    shared_streams = share_followers + merged

    sessions = cluster.workload.stats if cluster.workload is not None else None
    qos = cluster.qos
    proxy = cluster.proxy_runtime.stats if cluster.proxy_runtime else None
    cstats = cluster.stats
    manager = cluster.rebuild_manager
    restore_s = 0.0
    if manager is not None and manager.degree_restored_at is not None:
        restore_s = (
            manager.degree_restored_at - cluster.config.faults.fail_nodes_at_s
        )

    per_node = []
    for index, member in enumerate(members):
        node_terminals = member.terminals
        node_drives = [d for node in member.nodes for d in node.drives]
        node_utils = [d.busy.utilization(now) for d in node_drives]
        per_node.append(
            {
                "node": index,
                "routed": sessions.routed[index] if sessions else 0,
                "admissions_queued": member.admission.queued,
                "admission_queue_len_max": member.admission.queue_lengths.maximum,
                "disk_utilization_mean": sum(node_utils) / len(node_utils),
                "blocks_delivered": sum(
                    t.stats.blocks_received for t in node_terminals
                ),
                "glitches": sum(t.stats.glitches for t in node_terminals),
                "available": cluster.node_available(index),
                "rebuild_bytes_in": cstats.rebuild_bytes_in[index],
                "rebuild_bytes_out": cstats.rebuild_bytes_out[index],
            }
        )

    return RunMetrics(
        terminals=len(terminals),
        measure_s=measure_s,
        glitches=sum(t.stats.glitches for t in terminals),
        glitching_terminals=sum(1 for t in terminals if t.stats.glitches),
        mean_glitch_duration_s=(
            glitch_time / total_glitch_events if total_glitch_events else 0.0
        ),
        disk_utilization_mean=sum(disk_utils) / len(disk_utils),
        disk_utilization_min=min(disk_utils),
        disk_utilization_max=max(disk_utils),
        cpu_utilization_mean=(
            sum(node.cpu.utilization() for node in server_nodes) / len(server_nodes)
        ),
        network_peak_bytes_per_s=(
            sum(m.bus.peak_bandwidth for m in members)
            + cluster.interconnect.peak_bandwidth
        ),
        network_mean_bytes_per_s=(
            sum(m.bus.mean_bandwidth() for m in members)
            + cluster.interconnect.mean_bandwidth()
        ),
        buffer_references=references,
        buffer_hit_rate=hits / references if references else 0.0,
        buffer_inflight_hit_rate=inflight / references if references else 0.0,
        rereference_rate=rereferences / references if references else 0.0,
        wasted_prefetches=sum(pool.stats.wasted_prefetches for pool in pools),
        dropped_prefetches=sum(pool.stats.dropped_prefetches for pool in pools),
        allocation_waits=sum(pool.stats.allocation_waits for pool in pools),
        prefetches_issued=sum(p.stats.issued for p in prefetchers),
        prefetches_completed=sum(p.stats.completed for p in prefetchers),
        mean_response_time_s=(
            response_total / response_counts if response_counts else 0.0
        ),
        max_response_time_s=response_max,
        deadline_misses=sum(t.stats.deadline_misses for t in terminals),
        blocks_delivered=sum(t.stats.blocks_received for t in terminals),
        mean_startup_latency_s=(
            startup_total / startup_counts if startup_counts else 0.0
        ),
        videos_completed=sum(t.stats.videos_completed for t in terminals),
        pauses_taken=sum(t.stats.pauses_taken for t in terminals),
        admissions_queued=sum(a.queued for a in admissions),
        admission_mean_wait_s=wait_total / wait_count if wait_count else 0.0,
        fault_glitches=sum(t.stats.fault_glitches for t in terminals),
        fault_events_injected=sum(f.stats.events_injected for f in fault_runtimes),
        fault_retries=sum(f.stats.retries for f in fault_runtimes),
        fault_abandoned_reads=sum(f.stats.abandoned_reads for f in fault_runtimes),
        fault_failed_reads=sum(f.stats.failed_reads for f in fault_runtimes),
        offered_sessions=sessions.offered if sessions else 0,
        admitted_sessions=sessions.admitted if sessions else 0,
        balked_sessions=sessions.balked if sessions else 0,
        reneged_sessions=sessions.reneged if sessions else 0,
        completed_sessions=sessions.completed if sessions else 0,
        abandoned_sessions=sessions.abandoned if sessions else 0,
        arrival_rate_per_s=(sessions.offered / measure_s if sessions else 0.0),
        startup_p50_s=qos.startup_quantile(0.5),
        startup_p95_s=qos.startup_quantile(0.95),
        startup_p99_s=qos.startup_quantile(0.99),
        startup_slo_attainment=qos.slo_attainment,
        admission_max_wait_s=max(a.max_wait_s for a in admissions),
        admission_queue_len_mean=sum(
            a.queue_lengths.mean(now) for a in admissions
        ),
        admission_queue_len_max=max(a.queue_lengths.maximum for a in admissions),
        failover_reads=sum(s.failover_reads for s in repl_stats),
        remote_replica_reads=sum(s.remote_replica_reads for s in repl_stats),
        rebuild_reads=sum(s.rebuild_reads for s in repl_stats),
        rebuild_blocks=sum(s.rebuild_blocks for s in repl_stats),
        rebuild_io_bytes=sum(s.rebuild_bytes for s in repl_stats),
        rebuilds_completed=sum(s.rebuilds_completed for s in repl_stats),
        mean_time_to_rebuild_s=(
            rebuild_total / rebuild_count if rebuild_count else 0.0
        ),
        proxy_requests=proxy.requests if proxy else 0,
        proxy_hits=proxy.hits if proxy else 0,
        proxy_misses=proxy.misses if proxy else 0,
        proxy_served_bytes=proxy.served_bytes if proxy else 0,
        proxy_origin_bytes=proxy.origin_bytes if proxy else 0,
        batches_launched=share_leaders,
        shared_streams=shared_streams,
        merged_sessions=merged,
        chain_reads=chain_reads,
        chain_breaks=chain_breaks,
        sharing_fraction=(
            shared_streams / (share_leaders + shared_streams)
            if share_leaders + shared_streams
            else 0.0
        ),
        failed_over_sessions=sessions.failed_over if sessions else 0,
        lost_sessions=sessions.lost if sessions else 0,
        spilled_sessions=sessions.spilled if sessions else 0,
        node_titles_rebuilt=cstats.titles_rebuilt,
        node_titles_unrecoverable=cstats.titles_unrecoverable,
        node_rebuild_bytes=cstats.rebuild_bytes,
        replication_restore_s=restore_s,
        rejoin_resyncs=cstats.rejoin_resyncs,
        rejoin_resync_bytes=cstats.rejoin_resync_bytes,
        per_node=tuple(per_node),
    )
