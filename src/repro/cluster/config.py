"""Cluster-level configuration: N SPIFFI nodes behind one front end.

``ClusterConfig`` composes a per-node :class:`~repro.core.config.
SpiffiConfig` (the member hardware and algorithms) with the cluster-only
choices: member count, catalog placement, request routing, the
cluster-wide open workload, and scripted node outages.  It deliberately
mirrors the ``SpiffiConfig`` surface that the experiment machinery
relies on (``seed``, ``measure_s``, ``replace``, ``describe``) so
sweeps, the run cache, and :func:`repro.workload.saturation.
find_max_rate` drive clusters and single systems interchangeably.

A 1-node ``partitioned`` cluster with a closed workload is the
degenerate case: it builds exactly one :class:`~repro.core.node.
SpiffiNode` with the member config's own seed and full catalog, and is
**bit-identical** to running that ``SpiffiConfig`` standalone (pinned
by the cluster golden-digest test).
"""

from __future__ import annotations

import dataclasses

from repro.cluster.placement import PlacementSpec
from repro.cluster.routing import RouterSpec
from repro.cluster.selfheal import SelfHealSpec
from repro.core.config import SpiffiConfig
from repro.faults.spec import FaultSpec
from repro.proxy.spec import ProxySpec, proxy_cache_dict
from repro.runnable import register_runnable
from repro.workload.spec import ArrivalSpec


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """A multi-node SPIFFI installation.

    *node* describes one member (every member is shaped identically;
    member *i* runs with ``seed + i`` so replicas are statistically
    identical but not lock-stepped).  The cluster owns the workload:
    *workload* is the cluster-wide arrival process, routed to members
    by *routing* within the constraints of *placement*.  *faults* may
    script **node-level** outages only (``fail_node_ids`` et al.);
    per-disk and network faults belong on ``node.faults`` as always.
    """

    node: SpiffiConfig = dataclasses.field(default_factory=SpiffiConfig)
    nodes: int = 1
    placement: PlacementSpec = dataclasses.field(default_factory=PlacementSpec)
    routing: RouterSpec = dataclasses.field(default_factory=RouterSpec)
    #: Cluster-wide arrival process.  Closed (the default) is only
    #: meaningful for 1-node clusters, where the member builds its own
    #: terminal population exactly as a standalone system would.
    workload: ArrivalSpec = dataclasses.field(default_factory=ArrivalSpec)
    #: Node-outage script (``fail_node_ids``/``fail_nodes_at_s``/
    #: ``node_recover_after_s``); disk and network faults are per-node
    #: concerns and are rejected here.
    faults: FaultSpec = dataclasses.field(default_factory=FaultSpec)
    #: Cluster-edge proxy tier: one prefix cache at the front door,
    #: serving startup blocks over the **global** catalog before the
    #: router is consulted.  Disabled by default; requires an open
    #: cluster workload (the closed 1-node population never routes
    #: through the front door).
    proxy: ProxySpec = dataclasses.field(default_factory=ProxySpec)
    #: Self-healing around node outages: catalog re-replication onto
    #: survivors, rejoin resync, and placement-aware (spill) admission.
    #: The default spec is inert — runs are bit-identical to a build
    #: without the self-healing layer at all.
    self_heal: SelfHealSpec = dataclasses.field(default_factory=SelfHealSpec)
    #: Cluster seed; None adopts ``node.seed``.  Member *i* runs with
    #: ``seed + i``; the cluster session generator draws from the
    #: ``"cluster-workload"`` child stream of ``seed``.
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.node, SpiffiConfig):
            raise TypeError(f"node must be a SpiffiConfig, got {self.node!r}")
        if not isinstance(self.placement, PlacementSpec):
            raise TypeError(
                f"placement must be a PlacementSpec, got {self.placement!r}"
            )
        if not isinstance(self.routing, RouterSpec):
            raise TypeError(f"routing must be a RouterSpec, got {self.routing!r}")
        if not isinstance(self.workload, ArrivalSpec):
            raise TypeError(
                f"workload must be an ArrivalSpec, got {self.workload!r}"
            )
        if not isinstance(self.faults, FaultSpec):
            raise TypeError(f"faults must be a FaultSpec, got {self.faults!r}")
        if not isinstance(self.proxy, ProxySpec):
            raise TypeError(f"proxy must be a ProxySpec, got {self.proxy!r}")
        if not isinstance(self.self_heal, SelfHealSpec):
            raise TypeError(
                f"self_heal must be a SelfHealSpec, got {self.self_heal!r}"
            )
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        if self.seed is None:
            object.__setattr__(self, "seed", self.node.seed)
        if self.nodes > 1 and not self.workload.enabled:
            raise ValueError(
                "a multi-node cluster needs an open cluster workload "
                "(workload=ArrivalSpec(process=...)); the closed "
                "terminal population is a single-node concept"
            )
        if self.node.workload.enabled:
            raise ValueError(
                "the cluster owns the workload: set ClusterConfig.workload, "
                "not node.workload"
            )
        if self.node.proxy.enabled:
            raise ValueError(
                "the cluster owns the proxy tier: set ClusterConfig.proxy, "
                "not node.proxy"
            )
        if self.proxy.enabled and not self.workload.enabled:
            raise ValueError(
                "a cluster proxy needs an open cluster workload "
                "(workload=ArrivalSpec(process=...)); closed terminal "
                "populations stream from their own member, not the front "
                "door"
            )
        if self.proxy.enabled and self.proxy.memory_bytes < self.node.stripe_bytes:
            raise ValueError(
                f"proxy memory {self.proxy.memory_bytes} cannot hold even "
                f"one {self.node.stripe_bytes}-byte block"
            )
        if self.faults.enabled:
            raise ValueError(
                "cluster faults may only script node outages; put disk and "
                "network fault schedules on node.faults"
            )
        bad = [n for n in self.faults.fail_node_ids if n >= self.nodes]
        if bad:
            raise ValueError(
                f"fail_node_ids {bad} out of range for {self.nodes} node(s) "
                f"(valid: 0..{self.nodes - 1})"
            )
        if len(self.faults.fail_node_ids) >= self.nodes:
            raise ValueError(
                f"fault spec fails all {self.nodes} node(s); at least one "
                f"member must survive"
            )
        if self.self_heal.rebuild and not self.faults.node_outages_enabled:
            raise ValueError(
                "self_heal.rebuild=True but faults.fail_node_ids is empty: "
                "re-replication destinations are provisioned at build time "
                "from the scripted outage, so there is nothing to heal"
            )
        if self.self_heal.enabled and self.nodes < 2:
            raise ValueError(
                "self-healing (self_heal.rebuild or "
                "self_heal.placement_aware_admission) needs a multi-node "
                f"cluster, got nodes={self.nodes}"
            )
        # Build the placement once for validation: bad shapes (e.g. an
        # oversized hybrid hotset) fail at config time, not run time.
        self.placement.build(self.nodes, self.node.video_count)

    # --- derived quantities --------------------------------------------
    @property
    def catalog_size(self) -> int:
        """Distinct titles across the whole cluster."""
        return self.placement.build(self.nodes, self.node.video_count).catalog_size

    @property
    def measure_s(self) -> float:
        return self.node.measure_s

    @property
    def warmup_s(self) -> float:
        return self.node.warmup_s

    @property
    def total_sim_time_s(self) -> float:
        return self.node.total_sim_time_s

    def replace(self, **changes) -> "ClusterConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary for reports and the cache."""
        text = (
            f"{self.nodes}-node cluster, {self.placement.label()} placement, "
            f"{self.routing.label()} routing, {self.workload.label()}, "
        )
        if self.proxy.enabled:
            text += f"{self.proxy.label()}, "
        if self.self_heal.enabled:
            text += f"{self.self_heal.label()}, "
        return text + f"node: {self.node.describe()}"

    def label(self) -> str:
        return f"{self.nodes}n/{self.placement.label()}/{self.routing.label()}"

    def to_cache_dict(self) -> dict:
        """Canonical dict for the run cache's config digest (see
        :func:`cluster_cache_dict`)."""
        return cluster_cache_dict(self)


def cluster_cache_dict(config: ClusterConfig) -> dict:
    """Canonical cache form of a :class:`ClusterConfig`.

    Namespaced under ``"cluster"`` so no cluster digest can ever collide
    with a single-system digest of similar shape.  The embedded
    ``"schema"`` marker versions *cluster* semantics independently of
    the global :data:`~repro.experiments.results.CACHE_SCHEMA_VERSION`:
    bumping it invalidates cached cluster runs without disturbing the
    (unchanged) standalone entries.  Schema 2 charges front-door routing
    control messages to the interconnect.  A default (disabled) proxy is
    omitted, so pre-proxy cluster configs keep their digests; likewise a
    default ``self_heal``, a zero ``fail_node_stagger_s``, and a zero
    placement ``replicas`` are omitted, so pre-self-healing configs keep
    theirs.
    """
    from repro.core.config import config_cache_dict

    placement = dataclasses.asdict(config.placement)
    if config.placement.replicas == 0:
        del placement["replicas"]
    faults = dataclasses.asdict(config.faults)
    if config.faults.fail_node_stagger_s == 0.0:
        del faults["fail_node_stagger_s"]
    payload = {
        "schema": 2,
        "nodes": config.nodes,
        "seed": config.seed,
        "placement": placement,
        "routing": dataclasses.asdict(config.routing),
        "workload": dataclasses.asdict(config.workload),
        "faults": faults,
        "node": config_cache_dict(config.node),
    }
    if config.proxy != ProxySpec():
        payload["proxy"] = proxy_cache_dict(config.proxy)
    if config.self_heal != SelfHealSpec():
        payload["self_heal"] = dataclasses.asdict(config.self_heal)
    return {"cluster": payload}


def _run_cluster_config(config: ClusterConfig):
    """The registered executor behind ``run(ClusterConfig)``."""
    from repro.cluster.system import execute_cluster

    return execute_cluster(config)


register_runnable(
    ClusterConfig,
    kind="cluster",
    run=_run_cluster_config,
    cache_dict=cluster_cache_dict,
)
