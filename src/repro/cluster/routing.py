"""Front-end request routing: which replica host serves a session.

A :class:`RouterSpec` names a registered routing policy; building it
against a live :class:`~repro.cluster.system.SpiffiCluster` yields a
:class:`RequestRouter`.  Routers are consulted once per session (and
again on every cross-node failover) with a global title id; they pick
among the title's *available* hosting nodes — placement-constrained,
health-filtered — and return None when no host survives.

Built-in policies:

* ``least-loaded`` — the healthiest candidate with the fewest active
  plus queued streams (join-the-shortest-queue across replicas);
* ``consistent-hash`` — a static hash ring over the member nodes
  (``virtual_points`` virtual nodes each); a title walks the ring from
  its own hash to the first hosting candidate, so assignments are
  sticky under membership churn;
* ``locality`` — the title's placement primary whenever it is up,
  falling back to least-loaded among the surviving replicas.

Determinism: routers draw no randomness.  ``consistent-hash`` uses
SHA-256 (not the per-process-salted builtin ``hash``), and every
tie-break is by node index, so the session->node assignment is a pure
function of the config and the simulated history.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.system import SpiffiCluster

#: ``factory(spec, cluster) -> RequestRouter``
RouterFactory = typing.Callable[..., "RequestRouter"]

_REGISTRY: dict[str, RouterFactory] = {}


def register_router(name: str, factory: RouterFactory) -> None:
    """Make *name* selectable via ``RouterSpec(name)``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"router name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def router_names() -> tuple[str, ...]:
    """Every currently registered router name (registration order)."""
    return tuple(_REGISTRY)


@dataclasses.dataclass(frozen=True)
class RouterSpec:
    """Which routing policy the cluster front end runs."""

    name: str = "least-loaded"
    #: ``consistent-hash``: virtual nodes per member on the ring.
    virtual_points: int = 64

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise ValueError(
                f"unknown router {self.name!r}; choose from {router_names()}"
            )
        if self.virtual_points < 1:
            raise ValueError(
                f"virtual_points must be >= 1, got {self.virtual_points}"
            )

    def build(self, cluster: "SpiffiCluster") -> "RequestRouter":
        return _REGISTRY[self.name](self, cluster)

    def label(self) -> str:
        return self.name


def _stable_hash(key: str) -> int:
    """A process-independent 64-bit hash (builtin ``hash`` is salted)."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "little")


class RequestRouter:
    """Base router: placement-constrained, health-filtered candidates."""

    def __init__(self, spec: RouterSpec, cluster: "SpiffiCluster") -> None:
        self.spec = spec
        self.cluster = cluster

    def candidates(self, title: int) -> list[int]:
        """The title's hosting nodes that are currently serviceable."""
        cluster = self.cluster
        return [
            node
            for node in cluster.placement.nodes_for(title)
            if cluster.node_available(node)
        ]

    def _load(self, node: int) -> float:
        """Streams on *node* plus any self-heal traffic it is absorbing
        (``rebuild_load`` is 0.0 whenever self-healing is disabled, so
        the historical integer ordering is untouched)."""
        admission = self.cluster.members[node].admission
        return (
            admission.active
            + admission.queue_length
            + self.cluster.rebuild_load(node)
        )

    def _least_loaded(self, candidates: list[int]) -> int:
        health = self.cluster.health
        return min(
            candidates, key=lambda node: (health.rank(node), self._load(node), node)
        )

    def route(self, title: int) -> int | None:
        """The node to serve *title* now, or None if no host survives."""
        raise NotImplementedError

    def spill_candidate(
        self, title: int, exclude: int, queue_limit: int
    ) -> int | None:
        """A replica holder with queue room, for placement-aware
        admission: the least-loaded available host of *title* other
        than *exclude* whose admission queue is below *queue_limit*
        (None when every alternative is as full as the routed node)."""
        members = self.cluster.members
        candidates = [
            node
            for node in self.candidates(title)
            if node != exclude
            and members[node].admission.queue_length < queue_limit
        ]
        if not candidates:
            return None
        return self._least_loaded(candidates)


class LeastLoadedRouter(RequestRouter):
    def route(self, title: int) -> int | None:
        candidates = self.candidates(title)
        if not candidates:
            return None
        return self._least_loaded(candidates)


class ConsistentHashRouter(RequestRouter):
    def __init__(self, spec: RouterSpec, cluster: "SpiffiCluster") -> None:
        super().__init__(spec, cluster)
        ring = []
        for node in range(len(cluster.members)):
            for point in range(spec.virtual_points):
                ring.append((_stable_hash(f"node-{node}-{point}"), node))
        ring.sort()
        self._ring_keys = [key for key, _ in ring]
        self._ring_nodes = [node for _, node in ring]

    def route(self, title: int) -> int | None:
        candidates = self.candidates(title)
        if not candidates:
            return None
        eligible = set(candidates)
        start = bisect.bisect_left(self._ring_keys, _stable_hash(f"title-{title}"))
        size = len(self._ring_nodes)
        for step in range(size):
            node = self._ring_nodes[(start + step) % size]
            if node in eligible:
                return node
        return None  # pragma: no cover - candidates guarantee a hit


class LocalityRouter(RequestRouter):
    def route(self, title: int) -> int | None:
        candidates = self.candidates(title)
        if not candidates:
            return None
        primary = self.cluster.placement.primary(title)
        if primary in candidates:
            return primary
        return self._least_loaded(candidates)


register_router("least-loaded", LeastLoadedRouter)
register_router("consistent-hash", ConsistentHashRouter)
register_router("locality", LocalityRouter)
