"""Catalog placement: which cluster node hosts which title.

A :class:`PlacementSpec` follows the declarative-spec idiom of
:class:`repro.layout.registry.LayoutSpec`: an immutable value object on
:class:`~repro.cluster.config.ClusterConfig` naming a registered
placement scheme.  Building the spec against a node count and the
per-node catalog capacity yields a :class:`CatalogPlacement` — the pure
mapping from global title ids to hosting nodes and node-local video
ids that both the router and the session generator consult.

Built-in schemes:

* ``partitioned`` — every node stores a distinct slice of the catalog
  (global catalog = nodes x per-node videos); maximum catalog breadth,
  no cross-node failover possible;
* ``replicated`` — every node stores the full catalog (global catalog =
  the per-node capacity); primaries rotate round-robin so load spreads,
  and any node can serve any title;
* ``hybrid-hot-replicated`` — the partitioned catalog, with the first
  ``hot_titles`` titles additionally replicated to every node: hot
  content survives node outages and spreads load, the long tail keeps
  the partitioned breadth.

Third-party schemes plug in via :func:`register_placement` without
touching the cluster assembly, mirroring every other registry in the
tree.
"""

from __future__ import annotations

import dataclasses
import typing


class CatalogPlacement:
    """The built placement: titles -> hosting nodes -> local video ids.

    *hosts* lists, per global title, the hosting node ids with the
    **primary first**.  Local video ids are assigned per node in
    ascending global-title order, so the mapping is a pure function of
    the placement (no RNG, no construction-order dependence).
    """

    def __init__(self, nodes: int, hosts: list[tuple[int, ...]]) -> None:
        if nodes < 1:
            raise ValueError(f"need at least one node, got {nodes}")
        self.nodes = nodes
        self.hosts = hosts
        self._local: dict[tuple[int, int], int] = {}
        counts = [0] * nodes
        for title, node_ids in enumerate(hosts):
            if not node_ids:
                raise ValueError(f"title {title} has no hosting node")
            for node in node_ids:
                if not 0 <= node < nodes:
                    raise ValueError(
                        f"title {title} hosted on node {node}, "
                        f"outside 0..{nodes - 1}"
                    )
                self._local[(title, node)] = counts[node]
                counts[node] += 1
        self._local_counts = counts

    @property
    def catalog_size(self) -> int:
        """Distinct titles across the whole cluster."""
        return len(self.hosts)

    def nodes_for(self, title: int) -> tuple[int, ...]:
        """Hosting node ids for *title*, primary first."""
        return self.hosts[title]

    def primary(self, title: int) -> int:
        return self.hosts[title][0]

    def local_id(self, title: int, node: int) -> int:
        """The node-local video id of *title* on *node*."""
        try:
            return self._local[(title, node)]
        except KeyError:
            raise ValueError(f"title {title} is not hosted on node {node}") from None

    def local_count(self, node: int) -> int:
        """Videos stored on *node* (its library size)."""
        return self._local_counts[node]

    def replication_of(self, title: int) -> int:
        """Copies of *title* across the cluster."""
        return len(self.hosts[title])

    def add_replica(self, title: int, node: int, local_id: int) -> None:
        """Activate a new live copy of *title* on *node*.

        Called by the cluster rebuild manager once a re-replicated
        title's last block lands on the destination's disks; the router
        sees the node as a host from the next ``nodes_for`` call.  The
        copy is appended, so the title's primary never changes.  The
        caller supplies *local_id* — the spare library slot the copy was
        written into — because spare slots sit past the construction
        count this mapping assigned.
        """
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} outside 0..{self.nodes - 1}")
        if node in self.hosts[title]:
            raise ValueError(f"title {title} is already hosted on node {node}")
        self.hosts[title] = self.hosts[title] + (node,)
        self._local[(title, node)] = local_id


#: ``factory(spec, nodes, videos_per_node) -> CatalogPlacement``
PlacementFactory = typing.Callable[..., CatalogPlacement]

_REGISTRY: dict[str, PlacementFactory] = {}


def register_placement(name: str, factory: PlacementFactory) -> None:
    """Make *name* selectable via ``PlacementSpec(name)``."""
    if not name or not isinstance(name, str):
        raise ValueError(
            f"placement name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def placement_names() -> tuple[str, ...]:
    """Every currently registered placement name (registration order)."""
    return tuple(_REGISTRY)


@dataclasses.dataclass(frozen=True)
class PlacementSpec:
    """Which placement scheme the cluster uses, with its parameters."""

    name: str = "partitioned"
    #: ``hybrid-hot-replicated``: leading titles replicated everywhere.
    hot_titles: int = 0
    #: ``chained-declustered``: copies per title (0 elsewhere, where the
    #: scheme itself fixes the replication degree).
    replicas: int = 0

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise ValueError(
                f"unknown placement {self.name!r}; "
                f"choose from {placement_names()}"
            )
        if self.hot_titles < 0:
            raise ValueError(f"hot_titles must be >= 0, got {self.hot_titles}")
        if self.name == "hybrid-hot-replicated" and self.hot_titles == 0:
            raise ValueError("hybrid-hot-replicated needs hot_titles > 0")
        if self.name != "hybrid-hot-replicated" and self.hot_titles != 0:
            raise ValueError(
                f"placement {self.name!r} takes no hot_titles "
                f"(got {self.hot_titles})"
            )
        if self.name == "chained-declustered" and self.replicas < 2:
            raise ValueError(
                f"chained-declustered needs replicas >= 2, "
                f"got {self.replicas}"
            )
        if self.name != "chained-declustered" and self.replicas != 0:
            raise ValueError(
                f"placement {self.name!r} takes no replicas "
                f"(got {self.replicas})"
            )

    def build(self, nodes: int, videos_per_node: int) -> CatalogPlacement:
        """The concrete title->node mapping for this cluster shape."""
        if videos_per_node < 1:
            raise ValueError(
                f"need at least one video per node, got {videos_per_node}"
            )
        return _REGISTRY[self.name](self, nodes, videos_per_node)

    def label(self) -> str:
        if self.hot_titles:
            return f"{self.name}({self.hot_titles})"
        if self.replicas:
            return f"{self.name}({self.replicas})"
        return self.name


def _partitioned(spec: PlacementSpec, nodes: int, per: int) -> CatalogPlacement:
    hosts = [(title // per,) for title in range(nodes * per)]
    return CatalogPlacement(nodes, hosts)


def _replicated(spec: PlacementSpec, nodes: int, per: int) -> CatalogPlacement:
    # Primaries rotate round-robin; the remaining replicas follow
    # cyclically so every title names every node exactly once.
    hosts = [
        tuple((title + shift) % nodes for shift in range(nodes))
        for title in range(per)
    ]
    return CatalogPlacement(nodes, hosts)


def _hybrid(spec: PlacementSpec, nodes: int, per: int) -> CatalogPlacement:
    catalog = nodes * per
    if spec.hot_titles > catalog:
        raise ValueError(
            f"hot_titles {spec.hot_titles} exceeds the {catalog}-title catalog"
        )
    hosts: list[tuple[int, ...]] = []
    for title in range(catalog):
        primary = title // per
        if title < spec.hot_titles:
            hosts.append(
                tuple((primary + shift) % nodes for shift in range(nodes))
            )
        else:
            hosts.append((primary,))
    return CatalogPlacement(nodes, hosts)


def _chained(spec: PlacementSpec, nodes: int, per: int) -> CatalogPlacement:
    """Chained declustering at the node level (cf. the disk-level layout
    in :mod:`repro.layout`): each title lives on ``replicas`` cyclically
    consecutive nodes, so losing one node leaves every title exactly one
    copy short — the sweet spot for measuring re-replication — and the
    rebuild load of a dead member spreads over its chain neighbours.

    Per-node storage stays at the ``per``-video capacity: the catalog
    holds ``nodes * per // replicas`` distinct titles, each stored
    ``replicas`` times.
    """
    if spec.replicas > nodes:
        raise ValueError(
            f"chained-declustered replicas={spec.replicas} exceeds "
            f"{nodes} node(s)"
        )
    catalog = nodes * per // spec.replicas
    if catalog < 1:
        raise ValueError(
            f"chained-declustered({spec.replicas}) over {nodes} node(s) x "
            f"{per} video(s) leaves no catalog"
        )
    hosts = [
        tuple((title + shift) % nodes for shift in range(spec.replicas))
        for title in range(catalog)
    ]
    return CatalogPlacement(nodes, hosts)


register_placement("partitioned", _partitioned)
register_placement("replicated", _replicated)
register_placement("hybrid-hot-replicated", _hybrid)
register_placement("chained-declustered", _chained)
