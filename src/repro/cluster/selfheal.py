"""Cluster self-healing: the spec and the re-replication plan.

:class:`SelfHealSpec` follows the declarative-spec idiom (an immutable
value object on :class:`~repro.cluster.config.ClusterConfig`); the
**default spec is inert** — no rebuild manager is built, no spare
library slots are allocated, the admission path takes its historical
branches — so a cluster with ``SelfHealSpec()`` is bit-identical to a
build without this module at all (pinned by the golden-identity tests).

:class:`RebuildPlan` answers the one question re-replication cannot
defer to run time: *where do the new copies live?*  A member's library
and disk layout are sized at construction, so a survivor can only
receive a re-replicated title if a **spare slot** was provisioned for
it.  Scripted outages (``FaultSpec.fail_node_ids``) are known at config
time, so the plan is a pure function of the placement and the fault
script: for every title a scheduled-to-fail node hosts, pick the
surviving non-host with the fewest spares so far (ties to the lowest
index) and reserve the next spare local id on it.  The cluster then
builds each member with ``local_count + spares`` videos, and the
rebuild manager copies into those slots when the outage actually
happens.

Planned destinations are chosen among *final* survivors — nodes the
script never fails — a deliberate modelling choice: re-replicating onto
a member that is itself about to die would manufacture work the real
system's placement policy would avoid.  Sources, by contrast, are
chosen at run time among the currently-alive hosts, because which
replica is alive when the copy runs is a run-time fact.
"""

from __future__ import annotations

import dataclasses
import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.placement import CatalogPlacement
    from repro.faults.spec import FaultSpec

MB = 1024 * 1024


@dataclasses.dataclass(frozen=True)
class SelfHealSpec:
    """How (and whether) the cluster heals itself around node outages."""

    #: Re-replicate a dead member's catalog onto survivors, through the
    #: interconnect and the survivors' real disk paths.
    rebuild: bool = False
    #: Moved-bytes budget (read + write) per dead node's rebuild stream;
    #: also paces rejoin resync.  The knob trading time-to-redundancy
    #: against foreground glitches, exactly like the per-disk rebuild.
    rebuild_bandwidth_bytes_per_s: float = 4 * MB
    #: Fraction of a recovered member's local catalog bytes assumed
    #: stale and re-synced (over the interconnect, onto its disks)
    #: before the member re-enters routing.  0 = rejoin is immediate,
    #: the historical behaviour.
    rejoin_resync_fraction: float = 0.05
    #: Consult per-node queue depth before committing a session to one
    #: member's queue: an arrival that would balk on the routed node
    #: spills to another replica holder with queue room instead.
    placement_aware_admission: bool = False
    #: Extra router load charged per rebuild/resync stream writing to a
    #: node, so the front door steers sessions away from members busy
    #: absorbing re-replication traffic.
    rebuild_load_penalty: float = 2.0

    def __post_init__(self) -> None:
        if (
            self.rebuild_bandwidth_bytes_per_s <= 0
            or not math.isfinite(self.rebuild_bandwidth_bytes_per_s)
        ):
            raise ValueError(
                f"rebuild_bandwidth_bytes_per_s must be finite and positive, "
                f"got {self.rebuild_bandwidth_bytes_per_s}"
            )
        if not 0.0 <= self.rejoin_resync_fraction <= 1.0:
            raise ValueError(
                f"rejoin_resync_fraction must be in [0, 1], "
                f"got {self.rejoin_resync_fraction}"
            )
        if self.rebuild_load_penalty < 0:
            raise ValueError(
                f"rebuild_load_penalty must be >= 0, "
                f"got {self.rebuild_load_penalty}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any self-healing behaviour is switched on."""
        return self.rebuild or self.placement_aware_admission

    def label(self) -> str:
        if not self.enabled:
            return "no self-heal"
        parts = []
        if self.rebuild:
            parts.append(
                f"rebuild@{self.rebuild_bandwidth_bytes_per_s / MB:g}MB/s"
            )
        if self.placement_aware_admission:
            parts.append("spill")
        return "heal(" + ", ".join(parts) + ")"


@dataclasses.dataclass(frozen=True)
class TitleRebuild:
    """One planned re-replication: a title lost with *dead*, to be
    copied into spare slot *dest_local* on surviving node *dest*."""

    dead: int
    title: int
    dest: int
    dest_local: int


class RebuildPlan:
    """Where every re-replicated copy will live, decided at build time.

    ``per_dead[d]`` lists the :class:`TitleRebuild` work triggered by
    node *d*'s outage, in ascending title order; ``spares[n]`` is the
    number of extra library slots member *n* must be built with.

    One new copy per title: a title hosted on several scheduled-to-fail
    nodes is planned once, against the first of them to fail.  Whether
    the copy can actually run is a *run-time* question — under a
    staggered script the title's other host may still be alive during
    the first rebuild window (the race the resilience experiment
    measures), while under a simultaneous script every source is
    already dead and the manager counts the title unrecoverable.  A
    title with no destination candidate (every final survivor already
    hosts it) needs no copy: it outlives the script as built.
    """

    def __init__(
        self, placement: "CatalogPlacement", fail_node_ids: typing.Sequence[int]
    ) -> None:
        doomed = set(fail_node_ids)
        self.per_dead: dict[int, list[TitleRebuild]] = {
            dead: [] for dead in fail_node_ids
        }
        self.spares = [0] * placement.nodes
        planned: set[int] = set()
        for dead in fail_node_ids:
            for title in range(placement.catalog_size):
                hosts = placement.nodes_for(title)
                if dead not in hosts or title in planned:
                    continue
                candidates = [
                    node
                    for node in range(placement.nodes)
                    if node not in doomed and node not in hosts
                ]
                if not candidates:
                    continue  # every survivor already holds a copy
                dest = min(
                    candidates, key=lambda node: (self.spares[node], node)
                )
                self.per_dead[dead].append(
                    TitleRebuild(
                        dead=dead,
                        title=title,
                        dest=dest,
                        dest_local=placement.local_count(dest)
                        + self.spares[dest],
                    )
                )
                self.spares[dest] += 1
                planned.add(title)

    @property
    def total_titles(self) -> int:
        """Planned re-replications across every scheduled outage."""
        return sum(len(work) for work in self.per_dead.values())
