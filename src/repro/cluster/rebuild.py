"""Cluster-level re-replication and node rejoin (the self-healing layer).

When the cluster :class:`~repro.replication.health.HealthMonitor`
reports a member DOWN, the manager starts one rebuild stream for that
member: every title the dead node hosted (and the
:class:`~repro.cluster.selfheal.RebuildPlan` found a destination for)
is copied block-by-block from a surviving replica holder onto its
planned spare slot — a real disk read on the source, a tagged transfer
over the cluster interconnect, and a real disk write on the
destination, so rebuild traffic visibly competes with serving traffic
on all three resources.  The stream paces itself with the same
:class:`~repro.replication.rebuild.BandwidthPacer` arithmetic as the
per-disk rebuild: moved bytes (read + write) per dead node capped at
``rebuild_bandwidth_bytes_per_s``, which makes the time to restored
replication degree predictable from the catalog size and the cap.

Once a title's last block lands, :meth:`CatalogPlacement.add_replica`
activates the copy — the router starts offering the destination on the
very next arrival, and a later outage of another host no longer loses
the title.  When every planned copy is live the cluster's replication
degree is restored; :attr:`ClusterRebuildManager.degree_restored_at`
records the instant.

**Rejoin** is the reverse path: a recovered member re-syncs the stale
fraction of its catalog (interconnect reads from peers, real writes to
its own disks, same pacer) *before* the cluster reverts its health
state — so the router keeps steering around it until it genuinely has
current content, and the re-entry cost scales with catalog size rather
than being a free instantaneous flip.
"""

from __future__ import annotations

import math
import typing

from repro.replication.rebuild import BandwidthPacer, REBUILD_TERMINAL
from repro.storage.request import NO_DEADLINE, DiskRequest
from repro.telemetry.trace import (
    CLUSTER_REBUILD_END,
    CLUSTER_REBUILD_START,
    CLUSTER_REBUILD_TITLE,
    CLUSTER_REJOIN_END,
    CLUSTER_REJOIN_START,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.selfheal import RebuildPlan, SelfHealSpec
    from repro.cluster.system import SpiffiCluster
    from repro.telemetry.trace import TraceRecorder


class ClusterRebuildManager:
    """Drives catalog re-replication and rejoin for one cluster."""

    def __init__(
        self,
        cluster: "SpiffiCluster",
        spec: "SelfHealSpec",
        plan: "RebuildPlan",
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.plan = plan
        self.env = cluster.env
        self.block_size = cluster.config.node.stripe_bytes
        #: Planned copies not yet live; 0 means the replication degree
        #: is restored (as far as the plan could restore it).
        self.pending = plan.total_titles
        #: Simulated instant the last planned copy activated (None
        #: while any copy is outstanding, or when nothing was planned).
        self.degree_restored_at: float | None = None
        #: Rebuild/resync streams currently writing to each member
        #: (consulted by the router's load model via ``load``).
        self._dest_streams = [0] * len(cluster.members)
        #: Rebuild streams currently running (one per dead node).
        self.active = 0
        self.trace: "TraceRecorder | None" = None
        cluster.health.subscribe_outage(self._on_node_down)

    # ------------------------------------------------------------------
    # Router integration
    # ------------------------------------------------------------------
    def load(self, node: int) -> float:
        """Extra routing load on *node* from self-heal traffic."""
        return self._dest_streams[node] * self.spec.rebuild_load_penalty

    def _record(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(kind, **fields)

    # ------------------------------------------------------------------
    # Re-replication after an outage
    # ------------------------------------------------------------------
    def _on_node_down(self, node: int) -> None:
        work = self.plan.per_dead.get(node)
        if work:
            self.env.process(
                self._rebuild_node(node, work), name=f"cluster-rebuild-{node}"
            )

    def _drives_of(self, member):
        return [drive for srv in member.nodes for drive in srv.drives]

    def _disk_copy(self, member, drives, local_id: int, block: int, size: int):
        """One real disk access (read or write cost as modelled) for
        *block* of the member-local video *local_id*."""
        placement = member.layout.locate(local_id, block)
        drive = drives[placement.disk_global]
        request = DiskRequest(
            member.env,
            byte_offset=placement.byte_offset,
            size=size,
            cylinder=drive.geometry.cylinder_of(placement.byte_offset),
            deadline=NO_DEADLINE,
            is_prefetch=True,
            terminal_id=REBUILD_TERMINAL,
        )
        drive.submit(request)
        return request

    def _pick_source(self, title: int, dead: int) -> int | None:
        """First currently-available host of *title*, hosts order."""
        cluster = self.cluster
        for node in cluster.placement.nodes_for(title):
            if node != dead and cluster.node_available(node):
                return node
        return None

    def _rebuild_node(self, dead: int, work):
        env = self.env
        cluster = self.cluster
        stats = cluster.stats
        started = env.now
        self.active += 1
        self._record(CLUSTER_REBUILD_START, node=dead, titles=len(work))
        pacer = BandwidthPacer(env, self.spec.rebuild_bandwidth_bytes_per_s)
        rebuilt = 0
        for item in work:
            dest_member = cluster.members[item.dest]
            dest_drives = self._drives_of(dest_member)
            schedule = dest_member.library[item.dest_local].schedule(
                self.block_size
            )
            self._dest_streams[item.dest] += 1
            copied = True
            for block in range(schedule.block_count):
                source = self._pick_source(item.title, dead)
                if source is None:
                    # The last live host died mid-copy; the partial copy
                    # is useless and the title dies with its hosts.
                    copied = False
                    break
                size = schedule.block_bytes(block)
                src_member = cluster.members[source]
                src_local = cluster.placement.local_id(item.title, source)
                # Replica content is seeded per member, so the source's
                # copy of the title can hold fewer blocks than the
                # destination slot being filled; clamp the read address
                # into the source video (the read is a cost model — the
                # bytes that land on disk are the destination copy's).
                src_blocks = src_member.library[src_local].schedule(
                    self.block_size
                ).block_count
                read = self._disk_copy(
                    src_member, self._drives_of(src_member), src_local,
                    min(block, src_blocks - 1), size,
                )
                yield read.done
                if read.failed:
                    copied = False
                    break
                yield from cluster.interconnect.transfer(size, kind="rebuild")
                write = self._disk_copy(
                    dest_member, dest_drives, item.dest_local, block, size
                )
                yield write.done
                if write.failed:
                    copied = False
                    break
                stats.rebuild_bytes += 2 * size
                stats.rebuild_bytes_out[source] += size
                stats.rebuild_bytes_in[item.dest] += size
                yield from pacer.charge(2 * size)
            self._dest_streams[item.dest] -= 1
            self.pending -= 1
            if copied:
                cluster.placement.add_replica(
                    item.title, item.dest, item.dest_local
                )
                stats.titles_rebuilt += 1
                rebuilt += 1
                self._record(
                    CLUSTER_REBUILD_TITLE,
                    node=dead, title=item.title, dest=item.dest,
                )
            else:
                stats.titles_unrecoverable += 1
            if self.pending == 0:
                self.degree_restored_at = env.now
        self.active -= 1
        self._record(
            CLUSTER_REBUILD_END,
            node=dead, titles=rebuilt, duration_s=env.now - started,
        )
        return None

    # ------------------------------------------------------------------
    # Rejoin: resync a recovered member before it re-enters routing
    # ------------------------------------------------------------------
    def begin_rejoin(self, index: int) -> None:
        """Start the resync process for recovered member *index*; the
        cluster completes the recovery when the resync lands."""
        self.env.process(self._rejoin(index), name=f"cluster-rejoin-{index}")

    def _rejoin(self, index: int):
        env = self.env
        cluster = self.cluster
        member = cluster.members[index]
        drives = self._drives_of(member)
        started = env.now
        fraction = self.spec.rejoin_resync_fraction
        self._record(CLUSTER_REJOIN_START, node=index)
        pacer = BandwidthPacer(env, self.spec.rebuild_bandwidth_bytes_per_s)
        self._dest_streams[index] += 1
        moved = 0
        # The stale fraction of every locally hosted title, front-first
        # (prefix blocks are what a re-entering member serves first).
        for local in range(cluster.placement.local_count(index)):
            schedule = member.library[local].schedule(self.block_size)
            stale_blocks = min(
                schedule.block_count,
                max(1, math.ceil(fraction * schedule.block_count)),
            )
            for block in range(stale_blocks):
                size = schedule.block_bytes(block)
                yield from cluster.interconnect.transfer(size, kind="resync")
                write = self._disk_copy(member, drives, local, block, size)
                yield write.done
                moved += 2 * size
                yield from pacer.charge(2 * size)
        cluster.stats.rejoin_resyncs += 1
        cluster.stats.rejoin_resync_bytes += moved
        self._record(
            CLUSTER_REJOIN_END,
            node=index, bytes=moved, duration_s=env.now - started,
        )
        cluster._complete_recovery(index)
        return None
