"""The cluster session generator: routed arrivals with cross-node
failover.

A :class:`ClusterSessionGenerator` is the cluster's single front door —
the multi-node counterpart of :class:`repro.workload.generator.
SessionGenerator`.  It draws arrivals from the configured process over
the **global** catalog, asks the :mod:`router <repro.cluster.routing>`
for a hosting node, and runs each session against that member's own
admission controller and server fabric:

    arrive → route → (balk | queue → (renege | admit)) →
    piggyback window → stream → (complete | depart early) → release

The cluster-only clause is **failover**: every wait on a member —
queueing for admission, streaming a video — also watches that member's
outage event.  When the node drops (see :meth:`SpiffiCluster.
_fail_node`), the session releases whatever it held, re-routes among
the title's surviving replica hosts, and resumes the stream from the
frame it had reached; a title with no surviving host is *lost*.  The
customer's viewing budget (``mean_view_duration_s``) is drawn once, at
first admission, and spans migrations — failing over does not grant
extra watching time.

Determinism: the generator mirrors the single-node stream discipline
(``select``/``arrivals``/``patience``/``views`` child streams plus one
per session) under the dedicated ``"cluster-workload"`` root, the
router draws nothing, and sessions are simulation processes on the one
shared environment — so the session→node assignment is a pure function
of the config (pinned by the router-determinism tests).
"""

from __future__ import annotations

import typing

from repro.media.access import make_access_model
from repro.sim.rng import RandomSource
from repro.terminal.terminal import Terminal
from repro.workload.generator import SessionStats
from repro.workload.popularity import RotatingPopularity
from repro.workload.spec import ArrivalSpec
from repro.workload.arrivals import make_arrival_process

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.system import SpiffiCluster


class ClusterSessionStats(SessionStats):
    """Single-node session counters plus the cluster-only outcomes."""

    def __init__(self, nodes: int) -> None:
        self._nodes = nodes
        super().__init__()

    def reset(self) -> None:
        super().reset()
        #: Admissions per member node (one increment per placement,
        #: failover re-placements included).
        self.routed = [0] * self._nodes
        #: Cross-node migrations after a host outage.
        self.failed_over = 0
        #: Sessions dropped because no surviving node hosts the title.
        self.lost = 0
        #: Placement-aware admission: arrivals redirected to another
        #: replica holder instead of balking on the routed node's queue.
        self.spilled = 0


class ClusterSessionGenerator:
    """Routes arriving sessions onto cluster members, with failover."""

    def __init__(
        self,
        env,
        cluster: "SpiffiCluster",
        spec: ArrivalSpec,
        rng: RandomSource,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.spec = spec
        self.process = make_arrival_process(spec)
        node_config = cluster.config.node
        self.popularity = RotatingPopularity(
            make_access_model(
                node_config.access_model,
                cluster.placement.catalog_size,
                node_config.zipf_skew,
            ),
            spec,
            rng.spawn("select"),
            rng,
        )
        self._arrival_rng = rng.spawn("arrivals")
        self._patience_rng = rng.spawn("patience")
        self._view_rng = rng.spawn("views")
        self._session_rng_root = rng
        self._sessions = 0
        self.stats = ClusterSessionStats(len(cluster.members))
        #: Full routing log: ``(session, title, node)`` per admission,
        #: in admission order.  Never reset — the determinism tests
        #: compare whole-run logs across fresh builds.
        self.assignments: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # Arrival loop (identical thinning discipline to the node generator)
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.env.process(self._run(), name="cluster-session-generator")

    def _run(self):
        env = self.env
        peak = self.process.peak_rate
        while True:
            yield env.timeout(self._arrival_rng.exponential(1.0 / peak))
            rate = self.process.rate_at(env.now)
            if rate < peak and self._arrival_rng.uniform() * peak > rate:
                continue  # Thinned candidate: no arrival at this instant.
            self._sessions += 1
            session = self._sessions
            env.process(self._session(session), name=f"session-{session}")

    # ------------------------------------------------------------------
    # One customer lifecycle, possibly spanning several nodes
    # ------------------------------------------------------------------
    def _session(self, session: int):
        env = self.env
        spec = self.spec
        cluster = self.cluster
        stats = self.stats
        arrived = env.now
        stats.offered += 1
        title = self.popularity.select(env.now)

        admitted = False
        view_deadline: float | None = None  # absolute; spans migrations
        start_frame = 0
        attempt = 0
        while True:
            node_id = cluster.router.route(title)
            if node_id is None:
                # No surviving host for this title (partitioned outage).
                if admitted:
                    stats.lost += 1
                    stats.abandoned += 1
                elif attempt == 0:
                    stats.balked += 1
                else:
                    stats.lost += 1
                    stats.reneged += 1
                return None
            member = cluster.members[node_id]
            admission = member.admission
            down = cluster.down_event(node_id)
            sharing = member.sharing
            if sharing is not None and not sharing.batching:
                sharing = None
            # Front-door control traffic: every placement (failover
            # re-routes included) sends one routing message over the
            # interconnect before the member is engaged.
            yield from cluster.interconnect.transfer(
                cluster.config.node.control_message_bytes
            )

            # --- batched admission: ride the member's open window ------
            # Batches form *per member*: each node runs its own sharing
            # runtime, so only arrivals routed to the same replica
            # holder share a launch.  Failed-over sessions (attempt > 0)
            # resume immediately on a slot of their own instead of
            # waiting out another window.
            batch = None
            if sharing is not None and attempt == 0:
                local = cluster.placement.local_id(title, node_id)
                open_batch = sharing.joinable_batch(local)
                if open_batch is not None:
                    # Joining commits the customer: the window is a
                    # service-side startup delay (like piggybacking),
                    # not queue time, so only a host outage — never
                    # patience — pulls a joiner back out of it.
                    open_batch.join()
                    yield env.any_of([open_batch.launch, down])
                    if not open_batch.launch.triggered:
                        open_batch.withdraw()
                        sharing.stats.batch_withdrawn += 1
                        # Host died during the window: re-route.
                        attempt += 1
                        stats.failed_over += 1
                        continue
                    batch = open_batch

            # --- bounded wait queue on the routed member ---------------
            if batch is None and (
                attempt == 0
                and admission.would_queue
                and admission.queue_length >= spec.queue_limit
            ):
                # Placement-aware admission: before giving up on one
                # member's full queue, ask for another replica holder
                # with room (None whenever the feature is disabled —
                # the historical balk is then taken verbatim).
                spill = cluster.spill_target(title, node_id, spec.queue_limit)
                if spill is None:
                    stats.balked += 1
                    return None
                stats.spilled += 1
                node_id = spill
                member = cluster.members[node_id]
                admission = member.admission
                down = cluster.down_event(node_id)
                # Sharing runtimes are per member: re-bind to the spill
                # target's (a leader opens its window over there).
                sharing = member.sharing
                if sharing is not None and not sharing.batching:
                    sharing = None
                # The redirect is one more front-door control message.
                yield from cluster.interconnect.transfer(
                    cluster.config.node.control_message_bytes
                )
                if admission.would_queue and (
                    admission.queue_length >= spec.queue_limit
                ):
                    stats.balked += 1  # the room filled while we hopped
                    return None
            if batch is None:
                slot = admission.request_slot()
                if not slot.triggered:
                    waits = [slot, down]
                    if not admitted and spec.mean_patience_s > 0:
                        patience = self._patience_rng.exponential(spec.mean_patience_s)
                        waits.append(env.timeout(patience))
                    yield env.any_of(waits)
                    if not slot.triggered:
                        admission.cancel(slot)
                        if down.triggered:
                            attempt += 1
                            stats.failed_over += 1
                            continue  # host died while we queued: re-route
                        stats.reneged += 1
                        return None
                    if down.triggered:
                        # Admitted a slot on a node that just died (e.g. a
                        # release cascaded to us post-outage): hand it back
                        # and take the stream elsewhere.
                        admission.release_slot()
                        attempt += 1
                        stats.failed_over += 1
                        continue
            if not admitted:
                admitted = True
                stats.admitted += 1
                if spec.mean_view_duration_s > 0:
                    view_deadline = env.now + self._view_rng.exponential(
                        spec.mean_view_duration_s
                    )
            stats.routed[node_id] += 1
            self.assignments.append((session, title, node_id))

            # --- launch on the member: batch/piggyback, then a terminal
            local = cluster.placement.local_id(title, node_id)
            if batch is None and sharing is not None and attempt == 0:
                # Admitted leader: open the member's launch window; the
                # batch takes over this session's slot (released by the
                # last member to depart).
                batch = sharing.open_batch(local, member.release_admission)
                yield batch.launch
            elif batch is None:
                remaining = (
                    view_deadline - env.now if view_deadline is not None else None
                )
                if remaining is not None and remaining <= 0:
                    # The whole budget went to waiting (e.g. re-routing
                    # after an outage): leave before joining a window.
                    admission.release_slot()
                    stats.abandoned += 1
                    return None
                follower = member.piggyback.has_open_batch(local)
                launch = member.request_start(local)
                if launch is not None:
                    if remaining is not None:
                        yield env.any_of([launch, env.timeout(remaining)])
                        if not launch.triggered:
                            # Budget exhausted inside the window: undo a
                            # follower's join so the departed customer
                            # does not inflate the sharing counters.
                            if follower:
                                member.piggyback.withdraw(local)
                            admission.release_slot()
                            stats.abandoned += 1
                            return None
                    else:
                        yield launch
            if view_deadline is not None and env.now >= view_deadline:
                # The whole budget went to waiting; the customer leaves.
                if batch is not None:
                    batch.depart()
                else:
                    admission.release_slot()
                stats.abandoned += 1
                return None
            terminal = self._spawn_terminal(session, attempt, member)
            # First placement measures startup from arrival (queue time
            # counts against the SLO); a migration measures the
            # re-buffering from the moment of failover.
            terminal.startup_anchor = arrived if attempt == 0 else env.now
            video = member.library[local]
            frame = min(start_frame, video.frame_count - 1)
            playback = env.process(
                terminal.play(local, frame), name=f"session-{session}-play"
            )

            # --- stream until done, out of budget, or host death -------
            waits = [playback, down]
            if view_deadline is not None:
                waits.append(env.timeout(view_deadline - env.now))
            yield env.any_of(waits)
            if playback.triggered:
                stats.completed += 1
                if batch is not None:
                    batch.depart()
                else:
                    admission.release_slot()
                return None
            if view_deadline is not None and env.now >= view_deadline:
                terminal.abandon()
                if batch is not None:
                    batch.depart()
                else:
                    admission.release_slot()
                stats.abandoned += 1
                return None
            # Host outage mid-stream: resume elsewhere from this frame.
            start_frame = terminal._next_frame
            terminal.abandon()
            if batch is not None:
                batch.depart()
            else:
                admission.release_slot()
            attempt += 1
            stats.failed_over += 1

    def _spawn_terminal(self, session: int, attempt: int, member) -> Terminal:
        config = self.cluster.config.node
        name = f"session-{session}" if attempt == 0 else f"session-{session}-m{attempt}"
        terminal = Terminal(
            env=self.env,
            terminal_id=session,
            fabric=member,
            access=member.access,
            rng=self._session_rng_root.spawn(name),
            memory_bytes=config.terminal_memory_bytes,
            pause_model=config.pause_model,
        )
        member.adopt_terminal(terminal)
        # Startup QoS is a cluster-wide account: one monitor sees every
        # start regardless of which member served it.
        terminal.qos = self.cluster.qos
        return terminal

    def reset_stats(self) -> None:
        self.stats.reset()
