"""repro — a from-scratch reproduction of the SPIFFI scalable
video-on-demand system (Freedman & DeWitt, SIGMOD 1995).

Quickstart::

    from repro import SpiffiConfig, run

    metrics = run(SpiffiConfig(terminals=40, measure_s=60.0,
                               video_length_s=300.0))
    print(metrics.summary())

:func:`run` executes any registered config type (standalone, cluster,
or third-party — see :mod:`repro.api`); ``run_simulation`` remains as
the type-checked standalone alias.
"""

from repro.bufferpool.registry import ReplacementSpec
from repro.core import (
    GB,
    KB,
    MB,
    RunMetrics,
    SpiffiConfig,
    SpiffiNode,
    SpiffiSystem,
    run_simulation,
)
from repro.faults.spec import FaultSpec
from repro.layout.registry import LayoutSpec
from repro.prefetch import PrefetchSpec
from repro.proxy import ProxySpec
from repro.runnable import run
from repro.sched import SchedulerSpec
from repro.sharing import SharingSpec
from repro.terminal import PauseModel
from repro.workload.spec import ArrivalSpec

__version__ = "1.0.0"

__all__ = [
    "ArrivalSpec",
    "FaultSpec",
    "GB",
    "KB",
    "LayoutSpec",
    "MB",
    "PauseModel",
    "PrefetchSpec",
    "ProxySpec",
    "ReplacementSpec",
    "RunMetrics",
    "SchedulerSpec",
    "SharingSpec",
    "SpiffiConfig",
    "SpiffiNode",
    "SpiffiSystem",
    "run",
    "run_simulation",
    "__version__",
]
