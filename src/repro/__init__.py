"""repro — a from-scratch reproduction of the SPIFFI scalable
video-on-demand system (Freedman & DeWitt, SIGMOD 1995).

Quickstart::

    from repro import SpiffiConfig, run_simulation

    metrics = run_simulation(SpiffiConfig(terminals=40, measure_s=60.0,
                                          video_length_s=300.0))
    print(metrics.summary())
"""

from repro.bufferpool.registry import ReplacementSpec
from repro.core import (
    GB,
    KB,
    MB,
    RunMetrics,
    SpiffiConfig,
    SpiffiNode,
    SpiffiSystem,
    run_simulation,
)
from repro.faults.spec import FaultSpec
from repro.layout.registry import LayoutSpec
from repro.prefetch import PrefetchSpec
from repro.sched import SchedulerSpec
from repro.terminal import PauseModel
from repro.workload.spec import ArrivalSpec

__version__ = "1.0.0"

__all__ = [
    "ArrivalSpec",
    "FaultSpec",
    "GB",
    "KB",
    "LayoutSpec",
    "MB",
    "PauseModel",
    "PrefetchSpec",
    "ReplacementSpec",
    "RunMetrics",
    "SchedulerSpec",
    "SpiffiConfig",
    "SpiffiNode",
    "SpiffiSystem",
    "run_simulation",
    "__version__",
]
