"""The stream-sharing runtime: batches, merge chases, buffer chains.

One :class:`SharingRuntime` per system (or per cluster member) carries
the three mechanisms a :class:`~repro.sharing.spec.SharingSpec` policy
composes:

* a **batch coordinator** the session generators drive: the first
  admitted arrival for a title opens a :class:`StreamBatch` holding one
  admission slot; same-title arrivals inside the window (including
  requests already queued for admission) join slot-free and every
  member launches at the same instant, so all but one merge onto shared
  in-flight buffer reads.  The slot is released when the *last* batch
  member departs.
* a **merge controller**: terminals report playback starts; a new
  stream with a leader close ahead displays fast (``1 + rate_delta``)
  until the positions meet, then snaps back to nominal rate — from
  there its requests land on the leader's prefetched pages.
* a **chain registry**: a new stream close behind a predecessor forms
  a :class:`BufferChain`; the server nodes report every block
  reference, the registry pins the predecessor's recently fetched pages
  (bounded by ``chain_pin_limit_blocks``) and the successor unpins them
  as it consumes them.  A predecessor pause/seek/abandon — or a MISS on
  a block the predecessor had fetched (the page was evicted anyway) —
  *breaks* the chain and releases every held pin.

Determinism: the runtime draws no randomness; every decision is a pure
function of simulation state at deterministic event times.
"""

from __future__ import annotations

import typing

from repro.bufferpool.pool import MISS
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.stats import Tally
from repro.telemetry import trace as trace_events

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.bufferpool.page import Page, PageKey
    from repro.bufferpool.pool import BufferPool
    from repro.sharing.spec import SharingSpec
    from repro.telemetry.trace import TraceRecorder
    from repro.terminal.terminal import Terminal


class SharingStats:
    """Counters over the measurement window (reset like all run stats)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Batches that reached their launch instant.
        self.batches_launched = 0
        #: Members launched per batch beyond the leader (each one is a
        #: disk stream the batch saved).
        self.batch_followers = 0
        #: Joins that left before launch (reneged inside the window).
        self.batch_withdrawn = 0
        #: Of the follower launches, how many had first queued for an
        #: admission slot and converted to the batch instead.
        self.queue_converts = 0
        #: Merge chases started / finished / given up.
        self.merges_started = 0
        self.merged_sessions = 0
        self.merge_aborts = 0
        #: Initial leader-trailer gap of every chase (seconds of video).
        self.merge_lag_s = Tally()
        #: Wall (simulated) seconds each successful chase took.
        self.merge_catchup_s = Tally()
        #: Chains formed / block reads served off a predecessor's
        #: fetches / chains broken mid-flight.
        self.chains_formed = 0
        self.chain_reads = 0
        self.chain_breaks = 0


class StreamBatch:
    """One open (then launched) batched-admission group for a title."""

    __slots__ = ("video_id", "launch", "live", "launched", "_release")

    def __init__(self, env: Environment, video_id: int, release) -> None:
        self.video_id = video_id
        #: Fires at the end of the window; every member starts then.
        self.launch = env.event()
        #: Members currently riding the batch (the leader included).
        self.live = 1
        self.launched = False
        self._release = release

    def join(self) -> None:
        if self.launched:
            raise ValueError("join() after the batch launched")
        self.live += 1

    def withdraw(self) -> None:
        """A joined member leaves before launch (reneged in-window)."""
        if self.launched:
            raise ValueError("withdraw() after the batch launched")
        if self.live <= 1:
            raise ValueError("withdraw() would leave the batch leaderless")
        self.live -= 1

    def depart(self) -> None:
        """A launched member's session ended; the last one out frees
        the batch's single admission slot."""
        if not self.launched:
            raise ValueError("depart() before the batch launched")
        if self.live <= 0:
            raise ValueError("depart() with no live members")
        self.live -= 1
        if self.live == 0 and self._release is not None:
            self._release()


class BufferChain:
    """A successor session feeding off a predecessor's buffer pages."""

    __slots__ = (
        "video_id",
        "predecessor",
        "successor",
        "pred_epoch",
        "succ_epoch",
        "pinned",
        "pred_frontier",
        "succ_frontier",
    )

    def __init__(
        self,
        video_id: int,
        predecessor: "Terminal",
        successor: "Terminal",
    ) -> None:
        self.video_id = video_id
        self.predecessor = predecessor
        self.successor = successor
        self.pred_epoch = predecessor._epoch
        self.succ_epoch = successor._epoch
        #: Pages held pinned on the successor's behalf.
        self.pinned: dict["PageKey", tuple["Page", "BufferPool"]] = {}
        #: Highest block either end has requested so far.
        self.pred_frontier = predecessor._next_request - 1
        self.succ_frontier = successor._next_request - 1


class SharingRuntime:
    """Everything the sharing policy does at run time."""

    def __init__(self, env: Environment, spec: "SharingSpec") -> None:
        self.env = env
        self.spec = spec
        self.batching = spec.batching
        self.merging = spec.merging
        self.chaining = spec.chaining
        #: Whether terminals should report playback lifecycle events.
        self.tracks_streams = self.merging or self.chaining
        self.stats = SharingStats()
        #: Optional structured trace (see ``enable_sharing_tracing``).
        self.trace: "TraceRecorder | None" = None
        # Batch coordinator state.
        self._batches: dict[int, StreamBatch] = {}
        self._window_opened: dict[int, Event] = {}
        # Active streams per title: {terminal: epoch at play start}.
        # Insertion-ordered, so scans are deterministic.
        self._streams: dict[int, dict["Terminal", int]] = {}
        self._by_id: dict[int, "Terminal"] = {}
        # Chains indexed from both ends (at most one each way).
        self._chains_by_pred: dict["Terminal", BufferChain] = {}
        self._chains_by_succ: dict["Terminal", BufferChain] = {}

    # ------------------------------------------------------------------
    # Batched admission (driven by the session generators)
    # ------------------------------------------------------------------
    def joinable_batch(self, video_id: int) -> StreamBatch | None:
        """The open batch for *video_id*, if one can still be joined."""
        batch = self._batches.get(video_id)
        if batch is None or batch.launched:
            return None
        if self.spec.max_batch and batch.live >= self.spec.max_batch:
            return None
        return batch

    def open_batch(self, video_id: int, release) -> StreamBatch:
        """An admitted leader opens the launch window for its title.

        *release* is called when the last launched member departs —
        the batch holds exactly one admission slot for its whole life.

        If a *full* batch is still open for the title (``max_batch``
        reached, so this leader could not join it), the new batch stays
        unregistered: it launches after the window like any other but
        accepts no joiners, and queued waiters are not signalled.
        """
        batch = StreamBatch(self.env, video_id, release)
        registered = video_id not in self._batches
        if registered:
            self._batches[video_id] = batch
        self.env.process(
            self._launch_later(batch), name=f"sharing-batch-{video_id}"
        )
        if self.trace is not None:
            self.trace.record(
                trace_events.BATCH_OPEN, video=video_id,
                window_s=self.spec.window_s,
            )
        if registered:
            opened = self._window_opened.pop(video_id, None)
            if opened is not None:
                opened.succeed()
        return batch

    def window_opened(self, video_id: int) -> Event:
        """Fires when a batch window next opens for *video_id* (lets a
        queued admission request convert into a batch join)."""
        event = self._window_opened.get(video_id)
        if event is None:
            event = self.env.event()
            self._window_opened[video_id] = event
        return event

    def _launch_later(self, batch: StreamBatch):
        yield self.env.timeout(self.spec.window_s)
        if self._batches.get(batch.video_id) is batch:
            del self._batches[batch.video_id]
        batch.launched = True
        self.stats.batches_launched += 1
        self.stats.batch_followers += batch.live - 1
        if self.trace is not None:
            self.trace.record(
                trace_events.BATCH_LAUNCH, video=batch.video_id, size=batch.live
            )
        batch.launch.succeed()

    # ------------------------------------------------------------------
    # Playback lifecycle (reported by terminals when tracks_streams)
    # ------------------------------------------------------------------
    def note_play_start(self, terminal: "Terminal", video_id: int) -> None:
        """A terminal begins (or rejoins) playback of *video_id*."""
        streams = self._streams.setdefault(video_id, {})
        fps = terminal._video.fps
        position = terminal._next_frame
        if self.merging:
            leader = self._nearest_ahead(
                streams, position, self.spec.merge_max_lag_s * fps, terminal
            )
            if leader is not None:
                self.stats.merges_started += 1
                if self.trace is not None:
                    self.trace.record(
                        trace_events.MERGE_START,
                        video=video_id,
                        trailer=terminal.terminal_id,
                        leader=leader.terminal_id,
                        lag_s=(leader._next_frame - position) / fps,
                    )
                self.env.process(
                    self._chase(terminal, leader, video_id, leader._epoch),
                    name=f"sharing-merge-{terminal.terminal_id}",
                )
        if self.chaining and terminal not in self._chains_by_succ:
            predecessor = self._nearest_ahead(
                streams,
                position,
                self.spec.chain_max_lag_s * fps,
                terminal,
                without_successor=True,
            )
            if predecessor is not None:
                chain = BufferChain(video_id, predecessor, terminal)
                self._chains_by_pred[predecessor] = chain
                self._chains_by_succ[terminal] = chain
                self.stats.chains_formed += 1
                if self.trace is not None:
                    self.trace.record(
                        trace_events.CHAIN_FORM,
                        video=video_id,
                        predecessor=predecessor.terminal_id,
                        successor=terminal.terminal_id,
                        lag_blocks=chain.pred_frontier - chain.succ_frontier,
                    )
        streams[terminal] = terminal._epoch
        self._by_id[terminal.terminal_id] = terminal

    def _nearest_ahead(
        self,
        streams: dict["Terminal", int],
        position: int,
        max_lag_frames: float,
        newcomer: "Terminal",
        without_successor: bool = False,
    ) -> "Terminal | None":
        """The closest live stream ahead of *position* within the lag
        bound (skipping stale entries whose session already changed)."""
        best: "Terminal | None" = None
        best_lag = 0
        for other, epoch in streams.items():
            if other is newcomer or other._epoch != epoch:
                continue
            if without_successor and other in self._chains_by_pred:
                continue
            lag = other._next_frame - position
            if lag <= 0 or lag > max_lag_frames:
                continue
            if best is None or lag < best_lag:
                best, best_lag = other, lag
        return best

    def note_play_end(self, terminal: "Terminal", video_id: int) -> None:
        """Playback finished (completed or already-abandoned exit)."""
        streams = self._streams.get(video_id)
        if streams is not None:
            streams.pop(terminal, None)
            if not streams:
                del self._streams[video_id]
        if self._by_id.get(terminal.terminal_id) is terminal:
            del self._by_id[terminal.terminal_id]
        # A completed predecessor stops fetching: release the pins (the
        # pages stay resident until evicted normally) without counting a
        # break — the chain simply ran its course.
        chain = self._chains_by_pred.get(terminal)
        if chain is not None:
            self._dissolve_chain(chain)
        chain = self._chains_by_succ.get(terminal)
        if chain is not None:
            self._dissolve_chain(chain)

    def note_pause(self, terminal: "Terminal") -> None:
        """The viewer paused: a successor would overrun a stalled
        predecessor, so the chain breaks."""
        chain = self._chains_by_pred.get(terminal)
        if chain is not None:
            self._break_chain(chain, "pause")

    def note_seek(self, terminal: "Terminal") -> None:
        """A seek discards the position both chain directions rely on."""
        chain = self._chains_by_pred.get(terminal)
        if chain is not None:
            self._break_chain(chain, "seek")
        chain = self._chains_by_succ.get(terminal)
        if chain is not None:
            self._dissolve_chain(chain)

    def note_abandon(self, terminal: "Terminal") -> None:
        """The viewer departed mid-video."""
        chain = self._chains_by_pred.get(terminal)
        if chain is not None:
            self._break_chain(chain, "abandon")
        chain = self._chains_by_succ.get(terminal)
        if chain is not None:
            self._dissolve_chain(chain)

    # ------------------------------------------------------------------
    # Adaptive merging
    # ------------------------------------------------------------------
    def _chase(
        self,
        trailer: "Terminal",
        leader: "Terminal",
        video_id: int,
        leader_epoch: int,
    ):
        env = self.env
        fps = trailer._video.fps
        delta = self.spec.rate_delta
        epoch = trailer._epoch
        started = env.now
        self.stats.merge_lag_s.record(
            (leader._next_frame - trailer._next_frame) / fps
        )
        trailer.set_display_rate(1.0 + delta)
        while True:
            if trailer._epoch != epoch:
                # The trailer seeked/abandoned/moved on; its own session
                # machinery reset the display clock.
                return None
            if self._streams.get(video_id, {}).get(leader) != leader_epoch:
                # The leader completed, abandoned, or seeked away.
                trailer.set_display_rate(1.0)
                self.stats.merge_aborts += 1
                if self.trace is not None:
                    self.trace.record(
                        trace_events.MERGE_ABORT,
                        video=video_id,
                        trailer=trailer.terminal_id,
                        leader=leader.terminal_id,
                    )
                return None
            lag = leader._next_frame - trailer._next_frame
            if lag <= 0:
                trailer.set_display_rate(1.0)
                self.stats.merged_sessions += 1
                self.stats.merge_catchup_s.record(env.now - started)
                if self.trace is not None:
                    self.trace.record(
                        trace_events.MERGE_DONE,
                        video=video_id,
                        trailer=trailer.terminal_id,
                        leader=leader.terminal_id,
                        chased_s=env.now - started,
                    )
                return None
            # Both streams advance nominally; the trailer closes at
            # delta * fps frames per second.  Re-check at the projected
            # catch-up instant (glitches/pauses shift it, so loop).
            yield env.timeout(max(lag / (fps * delta), 0.25))

    # ------------------------------------------------------------------
    # Buffer chaining (reported by the server nodes per block reference)
    # ------------------------------------------------------------------
    def note_block(
        self,
        terminal_id: int,
        video_id: int,
        block: int,
        status: str,
        page: "Page",
        pool: "BufferPool",
    ) -> None:
        """One served block reference (called after the page loaded)."""
        terminal = self._by_id.get(terminal_id)
        if terminal is None:
            return
        chain = self._chains_by_succ.get(terminal)
        if chain is not None and chain.video_id == video_id:
            held = chain.pinned.pop((video_id, block), None)
            if held is not None:
                held[1].unpin(held[0])
            if block > chain.succ_frontier:
                chain.succ_frontier = block
            if block <= chain.pred_frontier:
                if status == MISS:
                    # The predecessor had fetched this block but the
                    # page is gone: the bridge collapsed.
                    self._break_chain(chain, "evicted")
                else:
                    self.stats.chain_reads += 1
        chain = self._chains_by_pred.get(terminal)
        if chain is not None and chain.video_id == video_id:
            if block > chain.pred_frontier:
                chain.pred_frontier = block
            key = (video_id, block)
            if (
                block > chain.succ_frontier
                and key not in chain.pinned
                and len(chain.pinned) < self.spec.chain_pin_limit_blocks
            ):
                pool.pin(page)
                chain.pinned[key] = (page, pool)

    def _release_pins(self, chain: BufferChain) -> None:
        for held_page, held_pool in chain.pinned.values():
            held_pool.unpin(held_page)
        chain.pinned.clear()

    def _unlink_chain(self, chain: BufferChain) -> None:
        if self._chains_by_pred.get(chain.predecessor) is chain:
            del self._chains_by_pred[chain.predecessor]
        if self._chains_by_succ.get(chain.successor) is chain:
            del self._chains_by_succ[chain.successor]

    def _break_chain(self, chain: BufferChain, reason: str) -> None:
        self._release_pins(chain)
        self._unlink_chain(chain)
        self.stats.chain_breaks += 1
        if self.trace is not None:
            self.trace.record(
                trace_events.CHAIN_BREAK,
                video=chain.video_id,
                predecessor=chain.predecessor.terminal_id,
                successor=chain.successor.terminal_id,
                reason=reason,
            )

    def _dissolve_chain(self, chain: BufferChain) -> None:
        """Unpin and unlink without counting a break (orderly end)."""
        self._release_pins(chain)
        self._unlink_chain(chain)

    # ------------------------------------------------------------------
    # Derived stats
    # ------------------------------------------------------------------
    @property
    def shared_streams(self) -> int:
        """Sessions served without their own disk stream: batch
        followers plus sessions that completed a merge."""
        return self.stats.batch_followers + self.stats.merged_sessions

    @property
    def sharing_fraction(self) -> float:
        """Shared fraction of the batch-coordinated launches."""
        launched = self.stats.batches_launched + self.stats.batch_followers
        if launched == 0:
            return 0.0
        return self.stats.batch_followers / launched

    def reset_stats(self) -> None:
        # In-flight batches and chains deliberately survive the reset:
        # they are live state, not statistics (same discipline as the
        # piggyback coordinator's open batches).
        self.stats.reset()
