"""Stream-sharing configuration (ROADMAP item 3; paper §8.2 and beyond).

``SharingSpec`` selects how concurrent sessions of the same title share
disk streams and buffer pages, going past the fixed-window piggyback of
:mod:`repro.server.piggyback`.  A *policy* names a registered set of
sharing components; the built-ins compose three mechanisms:

* **batch** — *batched admission*: near-simultaneous same-title
  arrivals from the open-system workload launch together on one
  admission slot and (through in-flight buffer merging) one disk
  stream.  A queued request whose title opens a batch leaves the
  admission queue and joins the batch instead of consuming a slot.
* **merge** — *adaptive piggyback merging*: a session starting shortly
  behind an existing stream of the same title displays slightly fast
  (``1 + rate_delta`` over the frame schedule) until it catches the
  leader, then merges onto the leader's buffer pages and returns to
  nominal rate.
* **chain** — *buffer chaining* (after the INRIA chaining algorithms):
  a later session reads blocks from an earlier session's still-resident
  bufferpool pages; the chain registry pins the predecessor's recent
  pages (within a bounded budget) until the successor consumes them,
  and breaks the chain when the predecessor pauses, seeks, abandons,
  or the pages are evicted anyway.

The default spec is **inert**: no runtime is built, no events are
added, no randomness is drawn, and runs are bit-identical to a build
without the sharing subsystem at all (pinned by golden-digest tests),
following the ``FaultSpec``/``ProxySpec``/``ArrivalSpec`` convention.
"""

from __future__ import annotations

import dataclasses
import typing

#: Component names a policy may compose.
BATCH = "batch"
MERGE = "merge"
CHAIN = "chain"
_COMPONENTS = (BATCH, MERGE, CHAIN)

_REGISTRY: dict[str, frozenset[str]] = {}


def register_sharing_policy(
    name: str, components: typing.Iterable[str]
) -> None:
    """Make *name* selectable via ``SharingSpec(name)``.

    *components* is any subset of ``("batch", "merge", "chain")``; the
    named policy enables exactly those mechanisms.  An empty set is the
    inert policy (only ``"none"`` ships with it, but a plugin may alias
    it).
    """
    if not name or not isinstance(name, str):
        raise ValueError(
            f"sharing policy name must be a non-empty string, got {name!r}"
        )
    parts = frozenset(components)
    unknown = parts - set(_COMPONENTS)
    if unknown:
        raise ValueError(
            f"unknown sharing components {sorted(unknown)}; "
            f"choose from {_COMPONENTS}"
        )
    _REGISTRY[name] = parts


def sharing_policy_names() -> tuple[str, ...]:
    """Every currently registered policy name (registration order)."""
    return tuple(_REGISTRY)


register_sharing_policy("none", ())
register_sharing_policy("batch", (BATCH,))
register_sharing_policy("merge", (MERGE,))
register_sharing_policy("chain", (CHAIN,))
register_sharing_policy("batch+chain", (BATCH, CHAIN))
register_sharing_policy("batch+merge+chain", (BATCH, MERGE, CHAIN))


@dataclasses.dataclass(frozen=True)
class SharingSpec:
    """Which stream-sharing policy the system runs, with its knobs."""

    #: Registered policy name (see :func:`register_sharing_policy`).
    policy: str = "none"

    # --- batched admission ------------------------------------------------
    #: Seconds a newly opened batch waits for more same-title arrivals
    #: before every member launches together.
    window_s: float = 2.0
    #: Largest batch (leader included); 0 = unbounded.
    max_batch: int = 0

    # --- adaptive merging -------------------------------------------------
    #: Bounded display-rate speedup of a trailing session while it
    #: chases a leader (0.05 = 5% fast, imperceptible in practice).
    rate_delta: float = 0.05
    #: A new session only chases a leader at most this far ahead.
    merge_max_lag_s: float = 60.0

    # --- buffer chaining --------------------------------------------------
    #: A new session only chains to a predecessor at most this far
    #: ahead (the pages to bridge must plausibly still be resident).
    chain_max_lag_s: float = 30.0
    #: Most predecessor pages one chain may hold pinned at a time —
    #: bounds how much pool memory a single chain can monopolise.
    chain_pin_limit_blocks: int = 32

    def __post_init__(self) -> None:
        if self.policy not in _REGISTRY:
            raise ValueError(
                f"unknown sharing policy {self.policy!r}; "
                f"choose from {sharing_policy_names()}"
            )
        if self.window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {self.window_s}")
        if self.batching and self.window_s == 0:
            raise ValueError(
                f"policy {self.policy!r} batches admissions and needs "
                f"window_s > 0"
            )
        if self.max_batch < 0:
            raise ValueError(f"max_batch must be >= 0, got {self.max_batch}")
        if not 0.0 < self.rate_delta <= 0.5:
            raise ValueError(
                f"rate_delta must be in (0, 0.5], got {self.rate_delta}"
            )
        if self.merge_max_lag_s <= 0:
            raise ValueError(
                f"merge_max_lag_s must be positive, got {self.merge_max_lag_s}"
            )
        if self.chain_max_lag_s <= 0:
            raise ValueError(
                f"chain_max_lag_s must be positive, got {self.chain_max_lag_s}"
            )
        if self.chain_pin_limit_blocks < 1:
            raise ValueError(
                f"chain_pin_limit_blocks must be >= 1, "
                f"got {self.chain_pin_limit_blocks}"
            )

    @property
    def components(self) -> frozenset[str]:
        """The sharing mechanisms the named policy enables."""
        return _REGISTRY[self.policy]

    @property
    def enabled(self) -> bool:
        """Whether any sharing runtime is built at all."""
        return bool(self.components)

    @property
    def batching(self) -> bool:
        return BATCH in self.components

    @property
    def merging(self) -> bool:
        return MERGE in self.components

    @property
    def chaining(self) -> bool:
        return CHAIN in self.components

    def build(self, env):
        """A fresh :class:`~repro.sharing.runtime.SharingRuntime`."""
        from repro.sharing.runtime import SharingRuntime

        return SharingRuntime(env, self)

    def label(self) -> str:
        """Short human-readable tag for experiment tables."""
        if not self.enabled:
            return "no-sharing"
        text = self.policy
        if self.batching:
            text += f"({self.window_s:g}s)"
        return text


def sharing_cache_dict(spec: SharingSpec) -> dict:
    """Canonical cache/digest form of a (non-default) spec."""
    return {
        "policy": spec.policy,
        "window_s": spec.window_s,
        "max_batch": spec.max_batch,
        "rate_delta": spec.rate_delta,
        "merge_max_lag_s": spec.merge_max_lag_s,
        "chain_max_lag_s": spec.chain_max_lag_s,
        "chain_pin_limit_blocks": spec.chain_pin_limit_blocks,
    }
