"""Stream sharing: batched admission, adaptive merging, buffer chains.

See :class:`~repro.sharing.spec.SharingSpec` for the policy surface and
:class:`~repro.sharing.runtime.SharingRuntime` for the mechanisms.
"""

from repro.sharing.runtime import BufferChain, SharingRuntime, StreamBatch
from repro.sharing.spec import (
    SharingSpec,
    register_sharing_policy,
    sharing_cache_dict,
    sharing_policy_names,
)

__all__ = [
    "BufferChain",
    "SharingRuntime",
    "SharingSpec",
    "StreamBatch",
    "register_sharing_policy",
    "sharing_cache_dict",
    "sharing_policy_names",
]
