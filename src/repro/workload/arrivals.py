"""Session arrival processes, registry-backed.

An arrival process is an *intensity function*: it reports the
instantaneous session arrival rate at any simulated time, plus the peak
rate it can ever reach.  The :class:`~repro.workload.generator.
SessionGenerator` samples arrivals from it by thinning (Lewis &
Shedler): candidate arrivals are drawn as a Poisson process at the peak
rate and each is accepted with probability ``rate(t) / peak``, so any
bounded time-varying profile is sampled exactly with one exponential
draw (plus, for non-constant profiles, one uniform) per candidate.

Third-party processes plug in without touching core code::

    from repro.workload import register_arrival_process

    register_arrival_process("ramp", lambda spec: RampArrivals(spec))
    config = SpiffiConfig(workload=ArrivalSpec("ramp", rate_per_s=1.0))

``closed`` is not in the registry: it is the *absence* of an arrival
process (the paper's fixed-terminal-population workload).
"""

from __future__ import annotations

import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.workload.spec import ArrivalSpec

#: The spec value meaning "no arrival process" (the paper's workload).
CLOSED = "closed"


class ArrivalProcess:
    """Base class: a deterministic arrival-intensity profile."""

    def __init__(self, spec: "ArrivalSpec") -> None:
        self.spec = spec

    @property
    def peak_rate(self) -> float:
        """Least upper bound of :meth:`rate_at` (thinning envelope)."""
        raise NotImplementedError

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (sessions/s) at time *t*."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    @property
    def peak_rate(self) -> float:
        return self.spec.rate_per_s

    def rate_at(self, t: float) -> float:
        return self.spec.rate_per_s


class DiurnalArrivals(ArrivalProcess):
    """Sinusoid-modulated Poisson arrivals (a compressed daily cycle).

    ``rate(t) = rate_per_s * (1 + amplitude * sin(2*pi*t / period))``,
    so the *mean* rate over a whole period is still ``rate_per_s``.
    """

    @property
    def peak_rate(self) -> float:
        return self.spec.rate_per_s * (1.0 + self.spec.diurnal_amplitude)

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * t / self.spec.diurnal_period_s
        return self.spec.rate_per_s * (
            1.0 + self.spec.diurnal_amplitude * math.sin(phase)
        )


class FlashArrivals(ArrivalProcess):
    """Baseline Poisson plus a new-release burst window.

    The rate is ``rate_per_s`` except during ``[flash_at_s, flash_at_s +
    flash_duration_s)``, where it is multiplied by ``flash_multiplier``
    — the premiere-night crowd.
    """

    @property
    def peak_rate(self) -> float:
        return self.spec.rate_per_s * self.spec.flash_multiplier

    def rate_at(self, t: float) -> float:
        spec = self.spec
        if spec.flash_at_s <= t < spec.flash_at_s + spec.flash_duration_s:
            return spec.rate_per_s * spec.flash_multiplier
        return spec.rate_per_s


#: ``factory(spec) -> ArrivalProcess``.
_REGISTRY: dict[str, typing.Callable[["ArrivalSpec"], ArrivalProcess]] = {}


def register_arrival_process(
    name: str, factory: typing.Callable[["ArrivalSpec"], ArrivalProcess]
) -> None:
    """Make *name* selectable via ``ArrivalSpec(name)``."""
    if not name or not isinstance(name, str):
        raise ValueError(
            f"arrival process name must be a non-empty string, got {name!r}"
        )
    if name == CLOSED:
        raise ValueError(
            f"{CLOSED!r} is the built-in closed-system workload and "
            f"cannot be registered as an arrival process"
        )
    _REGISTRY[name] = factory


def arrival_process_names() -> tuple[str, ...]:
    """Every registered open-system process name (registration order)."""
    return tuple(_REGISTRY)


def make_arrival_process(spec: "ArrivalSpec") -> ArrivalProcess:
    """Build the registered arrival process the spec names."""
    factory = _REGISTRY.get(spec.process)
    if factory is None:
        raise ValueError(
            f"unknown arrival process {spec.process!r}; choose from "
            f"{(CLOSED,) + arrival_process_names()}"
        )
    return factory(spec)


register_arrival_process("poisson", PoissonArrivals)
register_arrival_process("diurnal", DiurnalArrivals)
register_arrival_process("flash", FlashArrivals)
