"""Open-system workload configuration.

``ArrivalSpec`` follows the declarative-spec idiom of
:class:`repro.faults.spec.FaultSpec`: an immutable value object on
:class:`repro.core.config.SpiffiConfig` from which the whole open-system
machinery — the arrival process, the session generator, the bounded
wait queue, the QoS accounting — is derived deterministically.

The default spec is **closed**: no session generator is created, the
fixed ``terminals`` population of the paper's methodology is built
exactly as before, no extra random draws happen, and a run is
bit-identical to one on a build without the workload subsystem at all
(pinned by a golden test, like the fault and replication specs).
"""

from __future__ import annotations

import dataclasses

from repro.workload.arrivals import CLOSED, arrival_process_names


@dataclasses.dataclass(frozen=True)
class ArrivalSpec:
    """How sessions arrive, wait, watch, and leave.

    With ``process != "closed"`` the simulation becomes *open*: instead
    of ``config.terminals`` looping videos forever, a
    :class:`~repro.workload.generator.SessionGenerator` draws session
    arrivals from the named process (registry-backed; see
    :func:`repro.workload.register_arrival_process`) at ``rate_per_s``
    and spawns a fresh terminal per session.  Each session:

    * *balks* (is rejected on the spot) if the admission wait queue
      already holds ``queue_limit`` customers;
    * otherwise requests an admission slot and — if made to wait —
      *reneges* after an exponential patience with mean
      ``mean_patience_s`` (0 = infinite patience);
    * once admitted, picks a title from the (optionally rotating) Zipf
      popularity model, streams it, and departs after an exponential
      viewing time with mean ``mean_view_duration_s`` (0 = watches to
      the end) — the session-churn knob;
    * counts toward the startup-latency SLO: the stream must begin
      displaying within ``startup_slo_s`` of the session's *arrival*
      (wait-queue time included).

    Popularity churn: with ``hotset_size > 0``, every
    ``hotset_rotation_s`` the top ``hotset_size`` popularity ranks are
    reassigned to a freshly drawn set of titles (the week's new
    releases); the mapping is a pure function of the rotation epoch and
    the seed, so runs stay deterministic.

    All stochastic choices draw from dedicated child streams of the
    ``"workload"`` RNG stream, so enabling the workload layer perturbs
    nothing else and the closed default consumes no randomness at all.
    """

    process: str = CLOSED
    #: Mean session arrival rate (sessions/second) for open processes.
    rate_per_s: float = 0.0

    # --- session shape --------------------------------------------------
    #: Mean exponential viewing time before the customer departs;
    #: 0 watches every video to the end.
    mean_view_duration_s: float = 0.0

    # --- wait queue (in front of server admission) ----------------------
    #: Customers the admission wait queue holds before new arrivals balk.
    queue_limit: int = 64
    #: Mean exponential patience while queued; 0 = never renege.
    mean_patience_s: float = 0.0

    # --- popularity churn -----------------------------------------------
    #: Top popularity ranks reassigned each rotation (0 = static Zipf).
    hotset_size: int = 0
    #: Simulated seconds between hotset rotations.
    hotset_rotation_s: float = 0.0

    # --- arrival-process parameters -------------------------------------
    #: ``diurnal``: sinusoid period (a compressed "day").
    diurnal_period_s: float = 600.0
    #: ``diurnal``: modulation depth in [0, 1].
    diurnal_amplitude: float = 0.5
    #: ``flash``: burst window start, length, and rate multiplier.
    flash_at_s: float = 0.0
    flash_duration_s: float = 60.0
    flash_multiplier: float = 4.0

    # --- QoS ------------------------------------------------------------
    #: Startup-latency SLO (arrival to first displayed frame).
    startup_slo_s: float = 10.0

    def __post_init__(self) -> None:
        known = (CLOSED,) + arrival_process_names()
        if self.process not in known:
            raise ValueError(
                f"unknown arrival process {self.process!r}; choose from {known}"
            )
        if self.enabled and self.rate_per_s <= 0:
            raise ValueError(
                f"arrival process {self.process!r} needs rate_per_s > 0, "
                f"got {self.rate_per_s}"
            )
        if not self.enabled and self.rate_per_s != 0.0:
            raise ValueError(
                f"closed workload cannot carry an arrival rate "
                f"({self.rate_per_s})"
            )
        for label, value in (
            ("mean_view_duration_s", self.mean_view_duration_s),
            ("mean_patience_s", self.mean_patience_s),
        ):
            if value < 0:
                raise ValueError(f"{label} must be >= 0, got {value}")
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.hotset_size < 0:
            raise ValueError(f"hotset_size must be >= 0, got {self.hotset_size}")
        if self.hotset_rotation_s < 0:
            raise ValueError(
                f"hotset_rotation_s must be >= 0, got {self.hotset_rotation_s}"
            )
        if (self.hotset_size > 0) != (self.hotset_rotation_s > 0):
            raise ValueError(
                "hotset rotation needs both hotset_size and "
                f"hotset_rotation_s (got size={self.hotset_size}, "
                f"rotation={self.hotset_rotation_s})"
            )
        if self.diurnal_period_s <= 0:
            raise ValueError(
                f"diurnal_period_s must be positive, got {self.diurnal_period_s}"
            )
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1], "
                f"got {self.diurnal_amplitude}"
            )
        if self.flash_at_s < 0:
            raise ValueError(f"flash_at_s must be >= 0, got {self.flash_at_s}")
        if self.flash_duration_s <= 0:
            raise ValueError(
                f"flash_duration_s must be positive, got {self.flash_duration_s}"
            )
        if self.flash_multiplier < 1.0:
            raise ValueError(
                f"flash_multiplier must be >= 1, got {self.flash_multiplier}"
            )
        if self.startup_slo_s <= 0:
            raise ValueError(
                f"startup_slo_s must be positive, got {self.startup_slo_s}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this spec replaces the closed terminal population."""
        return self.process != CLOSED

    def label(self) -> str:
        """Human-readable summary used in benchmark tables."""
        if not self.enabled:
            return CLOSED
        text = f"{self.process} {self.rate_per_s * 60.0:g}/min"
        if self.hotset_size:
            text += f" hotset {self.hotset_size}@{self.hotset_rotation_s:g}s"
        return text
