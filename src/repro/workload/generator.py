"""The session generator: arrival-driven load instead of a fixed
terminal population.

One :class:`SessionGenerator` process replaces the closed loop of
``Terminal._run``.  It draws session arrivals from the configured
:mod:`arrival process <repro.workload.arrivals>` by thinning, and each
session runs as its own process through the full customer lifecycle:

    arrive → (balk | queue → (renege | admit)) → piggyback window →
    stream → (watch to the end | depart early) → release slot

Every admitted session spawns a fresh :class:`~repro.terminal.terminal.
Terminal` — sessions churn in and out of the system, which is what the
closed model cannot express.  Denied demand (balks, reneges) becomes a
*measured* quantity instead of a coroutine blocked forever in the
admission queue.

Determinism: interarrival gaps, thinning accepts, patience, title
selection, viewing durations, and per-session terminal behaviour each
draw from their own child stream of the ``"workload"`` RNG stream, so
verdicts never depend on scheduling order and the closed default draws
nothing at all.
"""

from __future__ import annotations

import typing

from repro.media.access import make_access_model
from repro.sim.rng import RandomSource
from repro.telemetry import trace as trace_events
from repro.terminal.terminal import Terminal
from repro.workload.arrivals import make_arrival_process
from repro.workload.popularity import RotatingPopularity
from repro.workload.spec import ArrivalSpec

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import SpiffiSystem
    from repro.telemetry.trace import TraceRecorder


class SessionStats:
    """Counts over the measurement window (reset like all run stats)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Sessions that arrived (balked ones included).
        self.offered = 0
        #: Sessions granted a stream slot.
        self.admitted = 0
        #: Arrivals rejected on the spot: wait queue full.
        self.balked = 0
        #: Queued sessions whose patience ran out before admission.
        self.reneged = 0
        #: Admitted sessions that finished their video.
        self.completed = 0
        #: Admitted sessions that departed before the video ended.
        self.abandoned = 0


class SessionGenerator:
    """Spawns and retires terminals according to an arrival process."""

    def __init__(
        self,
        env,
        system: "SpiffiSystem",
        spec: ArrivalSpec,
        rng: RandomSource,
    ) -> None:
        self.env = env
        self.system = system
        self.spec = spec
        self.process = make_arrival_process(spec)
        config = system.config
        self.popularity = RotatingPopularity(
            make_access_model(
                config.access_model, config.video_count, config.zipf_skew
            ),
            spec,
            rng.spawn("select"),
            rng,
        )
        self._arrival_rng = rng.spawn("arrivals")
        self._patience_rng = rng.spawn("patience")
        self._view_rng = rng.spawn("views")
        self._session_rng_root = rng
        self._sessions = 0
        self.stats = SessionStats()
        #: Optional structured trace (see ``enable_session_tracing``).
        self.trace: "TraceRecorder | None" = None

    # ------------------------------------------------------------------
    # Arrival loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.env.process(self._run(), name="session-generator")

    def _run(self):
        env = self.env
        peak = self.process.peak_rate
        while True:
            yield env.timeout(self._arrival_rng.exponential(1.0 / peak))
            rate = self.process.rate_at(env.now)
            if rate < peak and self._arrival_rng.uniform() * peak > rate:
                continue  # Thinned candidate: no arrival at this instant.
            self._sessions += 1
            session = self._sessions
            env.process(self._session(session), name=f"session-{session}")

    # ------------------------------------------------------------------
    # One customer lifecycle
    # ------------------------------------------------------------------
    def _session(self, session: int):
        env = self.env
        spec = self.spec
        system = self.system
        admission = system.admission
        arrived = env.now
        self.stats.offered += 1
        if self.trace is not None:  # skip building fields when untraced
            self._record(trace_events.SESSION_ARRIVE, session=session)

        # --- bounded wait queue: balk, queue, maybe renege -------------
        if admission.would_queue and admission.queue_length >= spec.queue_limit:
            self.stats.balked += 1
            if self.trace is not None:
                self._record(
                    trace_events.SESSION_BALK,
                    session=session,
                    queue_length=admission.queue_length,
                )
            return None
        slot = admission.request_slot()
        if not slot.triggered:
            if self.trace is not None:
                self._record(
                    trace_events.QUEUE_ENTER,
                    session=session,
                    queue_length=admission.queue_length,
                )
            if spec.mean_patience_s > 0:
                patience = self._patience_rng.exponential(spec.mean_patience_s)
                yield env.any_of([slot, env.timeout(patience)])
                if not slot.triggered:
                    admission.cancel(slot)
                    self.stats.reneged += 1
                    if self.trace is not None:
                        self._record(
                            trace_events.SESSION_RENEGE,
                            session=session,
                            waited_s=env.now - arrived,
                        )
                    return None
            else:
                yield slot
            if self.trace is not None:
                self._record(
                    trace_events.QUEUE_LEAVE,
                    session=session,
                    waited_s=env.now - arrived,
                )
        self.stats.admitted += 1
        if self.trace is not None:
            self._record(
                trace_events.SESSION_ADMIT,
                session=session,
                waited_s=env.now - arrived,
            )

        # --- launch: piggyback batching, then a fresh terminal ---------
        video_id = self.popularity.select(env.now)
        launch = system.request_start(video_id)
        if launch is not None:
            yield launch
        terminal = self._spawn_terminal(session)
        # Startup latency spans the whole wait: arrival to first frame.
        terminal.startup_anchor = arrived
        playback = env.process(
            terminal.play(video_id), name=f"session-{session}-play"
        )

        # --- viewing time: watch to the end, or churn out early --------
        if spec.mean_view_duration_s > 0:
            view_for = self._view_rng.exponential(spec.mean_view_duration_s)
            yield env.any_of([playback, env.timeout(view_for)])
            if not playback.triggered:
                terminal.abandon()
                self.stats.abandoned += 1
                if self.trace is not None:
                    self._record(
                        trace_events.SESSION_ABANDON,
                        session=session,
                        video=video_id,
                        watched_s=view_for,
                    )
            else:
                self.stats.completed += 1
                if self.trace is not None:
                    self._record(
                        trace_events.SESSION_COMPLETE, session=session, video=video_id
                    )
        else:
            yield playback
            self.stats.completed += 1
            if self.trace is not None:
                self._record(
                    trace_events.SESSION_COMPLETE, session=session, video=video_id
                )
        system.release_admission()
        return None

    def _spawn_terminal(self, session: int) -> Terminal:
        system = self.system
        config = system.config
        terminal = Terminal(
            env=self.env,
            terminal_id=session,
            fabric=system,
            access=system.access,
            rng=self._session_rng_root.spawn(f"session-{session}"),
            memory_bytes=config.terminal_memory_bytes,
            pause_model=config.pause_model,
        )
        system.adopt_terminal(terminal)
        return terminal

    def _record(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(kind, **fields)

    def reset_stats(self) -> None:
        self.stats.reset()
