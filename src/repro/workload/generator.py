"""The session generator: arrival-driven load instead of a fixed
terminal population.

One :class:`SessionGenerator` process replaces the closed loop of
``Terminal._run``.  It draws session arrivals from the configured
:mod:`arrival process <repro.workload.arrivals>` by thinning, and each
session runs as its own process through the full customer lifecycle:

    arrive → (balk | queue → (renege | admit)) → piggyback window →
    stream → (watch to the end | depart early) → release slot

Every admitted session spawns a fresh :class:`~repro.terminal.terminal.
Terminal` — sessions churn in and out of the system, which is what the
closed model cannot express.  Denied demand (balks, reneges) becomes a
*measured* quantity instead of a coroutine blocked forever in the
admission queue.

Determinism: interarrival gaps, thinning accepts, patience, title
selection, viewing durations, and per-session terminal behaviour each
draw from their own child stream of the ``"workload"`` RNG stream, so
verdicts never depend on scheduling order and the closed default draws
nothing at all.
"""

from __future__ import annotations

import typing

from repro.media.access import make_access_model
from repro.sim.rng import RandomSource
from repro.telemetry import trace as trace_events
from repro.terminal.terminal import Terminal
from repro.workload.arrivals import make_arrival_process
from repro.workload.popularity import RotatingPopularity
from repro.workload.spec import ArrivalSpec

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import SpiffiSystem
    from repro.telemetry.trace import TraceRecorder


class SessionStats:
    """Counts over the measurement window (reset like all run stats)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Sessions that arrived (balked ones included).
        self.offered = 0
        #: Sessions granted a stream slot.
        self.admitted = 0
        #: Arrivals rejected on the spot: wait queue full.
        self.balked = 0
        #: Queued sessions whose patience ran out before admission.
        self.reneged = 0
        #: Admitted sessions that finished their video.
        self.completed = 0
        #: Admitted sessions that departed before the video ended.
        self.abandoned = 0


class SessionGenerator:
    """Spawns and retires terminals according to an arrival process."""

    def __init__(
        self,
        env,
        system: "SpiffiSystem",
        spec: ArrivalSpec,
        rng: RandomSource,
    ) -> None:
        self.env = env
        self.system = system
        self.spec = spec
        self.process = make_arrival_process(spec)
        config = system.config
        self.popularity = RotatingPopularity(
            make_access_model(
                config.access_model, config.video_count, config.zipf_skew
            ),
            spec,
            rng.spawn("select"),
            rng,
        )
        self._arrival_rng = rng.spawn("arrivals")
        self._patience_rng = rng.spawn("patience")
        self._view_rng = rng.spawn("views")
        self._session_rng_root = rng
        #: Sharing runtime with batched admission, or None.  Resolved
        #: once: system assembly builds the runtime before the workload.
        sharing = getattr(system, "sharing", None)
        self._sharing = sharing if sharing is not None and sharing.batching else None
        self._sessions = 0
        self.stats = SessionStats()
        #: Optional structured trace (see ``enable_session_tracing``).
        self.trace: "TraceRecorder | None" = None

    # ------------------------------------------------------------------
    # Arrival loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.env.process(self._run(), name="session-generator")

    def _run(self):
        env = self.env
        peak = self.process.peak_rate
        while True:
            yield env.timeout(self._arrival_rng.exponential(1.0 / peak))
            rate = self.process.rate_at(env.now)
            if rate < peak and self._arrival_rng.uniform() * peak > rate:
                continue  # Thinned candidate: no arrival at this instant.
            self._sessions += 1
            session = self._sessions
            env.process(self._session(session), name=f"session-{session}")

    # ------------------------------------------------------------------
    # One customer lifecycle
    # ------------------------------------------------------------------
    def _session(self, session: int):
        env = self.env
        spec = self.spec
        system = self.system
        admission = system.admission
        arrived = env.now
        self.stats.offered += 1
        if self.trace is not None:  # skip building fields when untraced
            self._record(trace_events.SESSION_ARRIVE, session=session)
        if self._sharing is not None:
            # Batched admission replaces the slot-per-session lifecycle;
            # kept out of line so the reference path stays byte-identical
            # (including its RNG draw order) when sharing is inert.
            yield from self._batched_session(session, arrived)
            return None

        # --- bounded wait queue: balk, queue, maybe renege -------------
        if admission.would_queue and admission.queue_length >= spec.queue_limit:
            self.stats.balked += 1
            if self.trace is not None:
                self._record(
                    trace_events.SESSION_BALK,
                    session=session,
                    queue_length=admission.queue_length,
                )
            return None
        slot = admission.request_slot()
        if not slot.triggered:
            if self.trace is not None:
                self._record(
                    trace_events.QUEUE_ENTER,
                    session=session,
                    queue_length=admission.queue_length,
                )
            if spec.mean_patience_s > 0:
                patience = self._patience_rng.exponential(spec.mean_patience_s)
                yield env.any_of([slot, env.timeout(patience)])
                if not slot.triggered:
                    admission.cancel(slot)
                    self.stats.reneged += 1
                    if self.trace is not None:
                        self._record(
                            trace_events.SESSION_RENEGE,
                            session=session,
                            waited_s=env.now - arrived,
                        )
                    return None
            else:
                yield slot
            if self.trace is not None:
                self._record(
                    trace_events.QUEUE_LEAVE,
                    session=session,
                    waited_s=env.now - arrived,
                )
        self.stats.admitted += 1
        if self.trace is not None:
            self._record(
                trace_events.SESSION_ADMIT,
                session=session,
                waited_s=env.now - arrived,
            )

        # --- launch: piggyback batching, then a fresh terminal ---------
        video_id = self.popularity.select(env.now)
        launch = system.request_start(video_id)
        if launch is not None:
            yield launch
        terminal = self._spawn_terminal(session)
        # Startup latency spans the whole wait: arrival to first frame.
        terminal.startup_anchor = arrived
        playback = env.process(
            terminal.play(video_id), name=f"session-{session}-play"
        )

        # --- viewing time: watch to the end, or churn out early --------
        if spec.mean_view_duration_s > 0:
            view_for = self._view_rng.exponential(spec.mean_view_duration_s)
            yield env.any_of([playback, env.timeout(view_for)])
            if not playback.triggered:
                terminal.abandon()
                self.stats.abandoned += 1
                if self.trace is not None:
                    self._record(
                        trace_events.SESSION_ABANDON,
                        session=session,
                        video=video_id,
                        watched_s=view_for,
                    )
            else:
                self.stats.completed += 1
                if self.trace is not None:
                    self._record(
                        trace_events.SESSION_COMPLETE, session=session, video=video_id
                    )
        else:
            yield playback
            self.stats.completed += 1
            if self.trace is not None:
                self._record(
                    trace_events.SESSION_COMPLETE, session=session, video=video_id
                )
        system.release_admission()
        return None

    # ------------------------------------------------------------------
    # Batched-admission lifecycle (sharing policy with "batch")
    # ------------------------------------------------------------------
    def _batched_session(self, session: int, arrived: float):
        """One customer lifecycle under batched admission.

        The title is selected at *arrival* (not after admission) so a
        joinable launch window for it can be recognised: near-
        simultaneous same-title arrivals ride one admission slot — the
        leader's — and one disk stream.  The batch, not the session,
        owns the slot; the last member to depart releases it.
        """
        env = self.env
        spec = self.spec
        video_id = self.popularity.select(env.now)
        batch = yield from self._acquire_stream(session, arrived, video_id)
        if batch is None:
            return None  # balked or reneged; stats already recorded
        terminal = self._spawn_terminal(session)
        # Startup latency spans the whole wait: arrival to first frame.
        terminal.startup_anchor = arrived
        playback = env.process(
            terminal.play(video_id), name=f"session-{session}-play"
        )
        if spec.mean_view_duration_s > 0:
            view_for = self._view_rng.exponential(spec.mean_view_duration_s)
            yield env.any_of([playback, env.timeout(view_for)])
            if not playback.triggered:
                terminal.abandon()
                self.stats.abandoned += 1
                if self.trace is not None:
                    self._record(
                        trace_events.SESSION_ABANDON,
                        session=session,
                        video=video_id,
                        watched_s=view_for,
                    )
            else:
                self.stats.completed += 1
                if self.trace is not None:
                    self._record(
                        trace_events.SESSION_COMPLETE, session=session, video=video_id
                    )
        else:
            yield playback
            self.stats.completed += 1
            if self.trace is not None:
                self._record(
                    trace_events.SESSION_COMPLETE, session=session, video=video_id
                )
        batch.depart()
        return None

    def _acquire_stream(self, session: int, arrived: float, video_id: int):
        """Join or open a launch batch; None when the session gave up.

        Followers join an open window without touching the admission
        controller.  Leaders go through the classical bounded queue —
        except that a window opening for their title *while queued*
        converts the wait into a slot-free join (``queue_converts``).
        """
        env = self.env
        spec = self.spec
        admission = self.system.admission
        sharing = self._sharing
        batch = sharing.joinable_batch(video_id)
        if batch is not None:
            return (yield from self._join_batch(session, arrived, batch, None))
        if admission.would_queue and admission.queue_length >= spec.queue_limit:
            self.stats.balked += 1
            if self.trace is not None:
                self._record(
                    trace_events.SESSION_BALK,
                    session=session,
                    queue_length=admission.queue_length,
                )
            return None
        slot = admission.request_slot()
        if not slot.triggered:
            if self.trace is not None:
                self._record(
                    trace_events.QUEUE_ENTER,
                    session=session,
                    queue_length=admission.queue_length,
                )
            patience_expired = None
            if spec.mean_patience_s > 0:
                patience = self._patience_rng.exponential(spec.mean_patience_s)
                patience_expired = env.timeout(patience)
            while not slot.triggered:
                waits = [slot, sharing.window_opened(video_id)]
                if patience_expired is not None:
                    waits.append(patience_expired)
                yield env.any_of(waits)
                if slot.triggered:
                    break
                # NB: a Timeout is "triggered" from construction in this
                # kernel (its fire time is fixed at birth); whether it
                # has actually elapsed is ``processed``.
                if patience_expired is not None and patience_expired.processed:
                    admission.cancel(slot)
                    self.stats.reneged += 1
                    if self.trace is not None:
                        self._record(
                            trace_events.SESSION_RENEGE,
                            session=session,
                            waited_s=env.now - arrived,
                        )
                    return None
                batch = sharing.joinable_batch(video_id)
                if batch is not None:
                    # Queued-then-batched: leave the queue, ride the
                    # window instead of consuming a slot.
                    admission.cancel(slot)
                    sharing.stats.queue_converts += 1
                    return (
                        yield from self._join_batch(
                            session, arrived, batch, patience_expired
                        )
                    )
                # Window launched or filled before this wakeup: re-arm.
            if self.trace is not None:
                self._record(
                    trace_events.QUEUE_LEAVE,
                    session=session,
                    waited_s=env.now - arrived,
                )
        self.stats.admitted += 1
        if self.trace is not None:
            self._record(
                trace_events.SESSION_ADMIT,
                session=session,
                waited_s=env.now - arrived,
            )
        batch = sharing.open_batch(video_id, self.system.release_admission)
        yield batch.launch
        return batch

    def _join_batch(self, session: int, arrived: float, batch, patience_expired):
        """Ride an open window; None when patience ran out first.

        Joining is a commitment: like the piggyback window, the wait to
        launch is a service-side startup delay, not queue time, so a
        direct joiner never reneges inside it.  ``patience_expired``
        carries a *queued* customer's already-running patience timer
        into the window — only those can still give up mid-window.
        """
        env = self.env
        batch.join()
        if self.trace is not None:
            self._record(
                trace_events.BATCH_JOIN, session=session, video=batch.video_id
            )
        if patience_expired is not None:
            yield env.any_of([batch.launch, patience_expired])
            if not batch.launch.triggered:
                batch.withdraw()
                self._sharing.stats.batch_withdrawn += 1
                self.stats.reneged += 1
                if self.trace is not None:
                    self._record(
                        trace_events.SESSION_RENEGE,
                        session=session,
                        waited_s=env.now - arrived,
                    )
                return None
        else:
            yield batch.launch
        self.stats.admitted += 1
        if self.trace is not None:
            self._record(
                trace_events.SESSION_ADMIT,
                session=session,
                waited_s=env.now - arrived,
            )
        return batch

    def _spawn_terminal(self, session: int) -> Terminal:
        system = self.system
        config = system.config
        terminal = Terminal(
            env=self.env,
            terminal_id=session,
            fabric=system,
            access=system.access,
            rng=self._session_rng_root.spawn(f"session-{session}"),
            memory_bytes=config.terminal_memory_bytes,
            pause_model=config.pause_model,
        )
        system.adopt_terminal(terminal)
        return terminal

    def _record(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(kind, **fields)

    def reset_stats(self) -> None:
        self.stats.reset()
