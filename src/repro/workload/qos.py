"""Streaming QoS accounting: startup-latency percentiles and SLOs.

A :class:`QosMonitor` is attached to every terminal (closed or
session-spawned) by system assembly; terminals feed it one startup
latency per playback start.  It keeps P² quantile estimators
(:class:`repro.sim.stats.Quantile`) for p50/p95/p99 — O(1) memory, no
sample storage — plus the fraction of starts inside the configured SLO.
Recording touches no RNG and schedules no events, so attaching the
monitor leaves runs bit-identical.
"""

from __future__ import annotations

from repro.sim.stats import Quantile


class QosMonitor:
    """Percentiles and SLO attainment of playback startup latency."""

    def __init__(self, startup_slo_s: float) -> None:
        if startup_slo_s <= 0:
            raise ValueError(
                f"startup_slo_s must be positive, got {startup_slo_s}"
            )
        self.startup_slo_s = startup_slo_s
        self.reset()

    def reset(self, now: float | None = None) -> None:
        self.starts = 0
        self.within_slo = 0
        self._quantiles = {
            0.5: Quantile(0.5),
            0.95: Quantile(0.95),
            0.99: Quantile(0.99),
        }

    def record_startup(self, latency_s: float) -> None:
        self.starts += 1
        if latency_s <= self.startup_slo_s:
            self.within_slo += 1
        for quantile in self._quantiles.values():
            quantile.record(latency_s)

    def startup_quantile(self, p: float) -> float:
        """The current p-quantile estimate (0.0 before any start)."""
        return self._quantiles[p].value

    @property
    def slo_attainment(self) -> float:
        """Fraction of starts within the SLO (0.0 with no starts, so a
        run that never started a stream reads as zeros, not perfection)."""
        return self.within_slo / self.starts if self.starts else 0.0
