"""Time-varying video popularity for open-system workloads.

The paper's access models (:mod:`repro.media.access`) are static: rank
*r* is the same title for the whole run.  Real VoD catalogs churn — the
most-requested titles are this week's releases, and next week they are
different titles.  :class:`RotatingPopularity` keeps the *shape* of the
configured access model (Zipf or any registered model's weights) but
rotates which titles occupy the top ``hotset_size`` ranks every
``hotset_rotation_s`` simulated seconds.

Determinism: the rank→title mapping for rotation epoch *e* is derived
from a child RNG stream named by *e* alone (``hotset-{e}``), never from
how many samples were drawn before, so the catalog history is a pure
function of the seed.
"""

from __future__ import annotations

import typing

from repro.media.access import AccessModel
from repro.sim.rng import DiscreteSampler, RandomSource

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.workload.spec import ArrivalSpec


class RotatingPopularity:
    """Samples titles by rank popularity with a rotating hotset."""

    def __init__(
        self,
        model: AccessModel,
        spec: "ArrivalSpec",
        sample_rng: RandomSource,
        epoch_rng: RandomSource,
    ) -> None:
        self.video_count = model.video_count
        self.hotset_size = min(spec.hotset_size, model.video_count)
        self.rotation_s = spec.hotset_rotation_s
        self._sampler = DiscreteSampler(model.weights(), sample_rng)
        self._epoch_rng = epoch_rng
        self._epoch: int | None = None
        self._mapping: list[int] = list(range(model.video_count))

    def epoch_at(self, now: float) -> int:
        if self.rotation_s <= 0:
            return 0
        return int(now // self.rotation_s)

    def mapping_for(self, epoch: int) -> list[int]:
        """The rank→title mapping of one rotation epoch.

        The epoch's releases (the new hotset) are a seeded draw keyed by
        the epoch number; every title outside the hotset keeps its
        natural (id-ordered) relative ranking below them.
        """
        if self.hotset_size == 0:
            return list(range(self.video_count))
        ids = list(range(self.video_count))
        self._epoch_rng.spawn(f"hotset-{epoch}").shuffle(ids)
        hot = ids[: self.hotset_size]
        members = set(hot)
        return hot + [video for video in range(self.video_count) if video not in members]

    def select(self, now: float) -> int:
        """Pick the next title requested at time *now*."""
        rank = self._sampler.sample()
        if self.hotset_size == 0:
            return rank
        epoch = self.epoch_at(now)
        if epoch != self._epoch:
            self._epoch = epoch
            self._mapping = self.mapping_for(epoch)
        return self._mapping[rank]
