"""Saturation search: the maximum sustainable session arrival rate.

The open-system analogue of the paper's max-terminals methodology
(§7.1): instead of "how many looping terminals fit," it answers "how
much traffic can this server sustain under its SLOs?" — the question an
inference- or video-serving stack is actually benchmarked on.  A load
point is *sustainable* when the run stays inside every bound of the
:class:`SloPolicy` (zero glitches, p99 startup latency, rejection
rate); the search reuses the deterministic batch planner
(:func:`repro.experiments.search.plan_probes`), so the probe plan —
and therefore the result — is bit-identical under any executor, job
count, or cache state.

Rates are searched in integer **arrivals per minute** so the planner's
snap-to-granularity arithmetic stays exact.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.workload.spec import ArrivalSpec

if typing.TYPE_CHECKING:  # pragma: no cover
    # Imported lazily at runtime: this module is reachable from
    # ``SpiffiConfig`` (via the workload package), so importing the
    # config/experiments layers here would be circular.
    from repro.core.config import SpiffiConfig
    from repro.core.metrics import RunMetrics
    from repro.experiments.runner import Runner


@dataclasses.dataclass(frozen=True)
class SloPolicy:
    """What "sustainable" means for a saturation search."""

    #: p99 startup latency (arrival to first frame) must stay under this.
    max_p99_startup_s: float = 10.0
    #: (balked + reneged) / offered must stay under this.
    max_rejection_rate: float = 0.05
    #: Scheduling glitches allowed during the window (the paper's bound).
    max_glitches: int = 0

    def __post_init__(self) -> None:
        if self.max_p99_startup_s <= 0:
            raise ValueError(
                f"max_p99_startup_s must be positive, got {self.max_p99_startup_s}"
            )
        if not 0.0 <= self.max_rejection_rate <= 1.0:
            raise ValueError(
                f"max_rejection_rate must be in [0, 1], "
                f"got {self.max_rejection_rate}"
            )
        if self.max_glitches < 0:
            raise ValueError(
                f"max_glitches must be >= 0, got {self.max_glitches}"
            )

    def sustainable(self, metrics: "RunMetrics") -> bool:
        """Whether one run satisfied every SLO."""
        if metrics.glitches > self.max_glitches:
            return False
        if metrics.startup_p99_s > self.max_p99_startup_s:
            return False
        return metrics.rejection_rate <= self.max_rejection_rate


@dataclasses.dataclass(frozen=True)
class RateProbe:
    """One simulated load point of a saturation search."""

    rate_per_min: int
    seed: int
    metrics: "RunMetrics"
    sustainable: bool


@dataclasses.dataclass(frozen=True)
class SaturationResult:
    """Outcome of one max-sustainable-rate search."""

    max_rate_per_min: int
    granularity: int
    slo: SloPolicy
    probes: tuple[RateProbe, ...]

    @property
    def max_rate_per_s(self) -> float:
        return self.max_rate_per_min / 60.0

    @property
    def runs(self) -> int:
        return len(self.probes)

    def metrics_at_max(self) -> "RunMetrics | None":
        """Metrics of a sustainable run at the reported maximum rate."""
        for probe in self.probes:
            if probe.rate_per_min == self.max_rate_per_min and probe.sustainable:
                return probe.metrics
        return None


def find_max_rate(
    config: "SpiffiConfig",
    workload_for_rate: typing.Callable[[float], ArrivalSpec],
    slo: SloPolicy | None = None,
    hint: int = 60,
    granularity: int = 12,
    low: int = 12,
    high: int = 1200,
    replications: int = 1,
    runner: "Runner | None" = None,
    speculation: int | None = None,
    tag: str = "",
) -> SaturationResult:
    """Largest arrival rate (arrivals/min, a multiple of *granularity*)
    sustainable under *slo* across *replications* seeded runs.

    *workload_for_rate* maps a rate in sessions/second to the full
    :class:`ArrivalSpec` to probe (fixing the process, queue bound,
    patience, and SLO parameters); every probe runs ``config`` with only
    that spec (and the replication seed) changed.  Probes fan out
    through *runner* batch by batch exactly like
    :func:`repro.experiments.search.find_max_terminals`, so results are
    identical for any executor or job count and cache-hit on re-runs.
    """
    from repro.experiments.runner import RunRequest, default_runner
    from repro.experiments.search import SPECULATION, plan_probes

    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if speculation is None:
        speculation = SPECULATION
    slo = slo or SloPolicy()
    low = max(granularity, (low // granularity) * granularity)
    high = (high // granularity) * granularity
    if low > high:
        raise ValueError(f"empty search range [{low}, {high}]")
    runner = runner or default_runner()

    pivot = min(max((hint // granularity) * granularity, low), high)
    probes: list[RateProbe] = []
    plan = plan_probes(low, high, pivot, granularity, speculation)
    batch = next(plan)
    while True:
        seeds = [config.seed + replication for replication in range(replications)]
        requests = [
            RunRequest(
                config.replace(
                    workload=workload_for_rate(rate / 60.0), seed=seed
                ),
                tag=f"{tag or 'saturation'} rate={rate}/min seed={seed}",
            )
            for rate in batch
            for seed in seeds
        ]
        outcomes = iter(runner.run_batch(requests))
        verdicts: dict[int, bool] = {}
        for rate in batch:
            ok = True
            for seed in seeds:
                outcome = next(outcomes)
                if outcome.failed:
                    raise RuntimeError(
                        f"saturation probe {outcome.tag or rate} failed: "
                        f"{outcome.error}"
                    )
                metrics = outcome.metrics
                sustainable = slo.sustainable(metrics)
                probes.append(RateProbe(rate, seed, metrics, sustainable))
                if not sustainable:
                    ok = False
            verdicts[rate] = ok
        try:
            batch = plan.send(verdicts)
        except StopIteration as stop:
            return SaturationResult(stop.value, granularity, slo, tuple(probes))
