"""Open-system workload layer: arrival-driven load, session churn,
bounded admission queueing, and QoS accounting.

The subsystem is inert unless :class:`ArrivalSpec` on the run config
names an arrival process; the default (``closed``) spec builds the
paper's fixed terminal population and leaves every run bit-identical to
a build without this package.
"""

from repro.workload.arrivals import (
    CLOSED,
    ArrivalProcess,
    DiurnalArrivals,
    FlashArrivals,
    PoissonArrivals,
    arrival_process_names,
    make_arrival_process,
    register_arrival_process,
)
from repro.workload.generator import SessionGenerator, SessionStats
from repro.workload.popularity import RotatingPopularity
from repro.workload.qos import QosMonitor
from repro.workload.saturation import (
    RateProbe,
    SaturationResult,
    SloPolicy,
    find_max_rate,
)
from repro.workload.spec import ArrivalSpec

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "CLOSED",
    "DiurnalArrivals",
    "FlashArrivals",
    "PoissonArrivals",
    "QosMonitor",
    "RateProbe",
    "RotatingPopularity",
    "SaturationResult",
    "SessionGenerator",
    "SessionStats",
    "SloPolicy",
    "arrival_process_names",
    "find_max_rate",
    "make_arrival_process",
    "register_arrival_process",
]
