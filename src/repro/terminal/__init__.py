"""Video terminals: playback, priming, glitches, pauses, and seeks."""

from repro.terminal.pauses import PauseModel
from repro.terminal.search import SkimParameters, skim_search, version_search
from repro.terminal.terminal import Terminal, TerminalStats

__all__ = [
    "PauseModel",
    "SkimParameters",
    "Terminal",
    "TerminalStats",
    "skim_search",
    "version_search",
]
