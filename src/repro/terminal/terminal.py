"""The video terminal (paper §5.1).

A terminal primes its buffers, then displays the movie frame-by-frame
while concurrently requesting subsequent stripe blocks — always keeping
as many blocks buffered or on order as its memory allows.  If display
catches up with delivery, a *glitch* occurs: the terminal stops, counts
the glitch, re-primes its buffers, and resumes.

Playback is frame-accurate but event-batched: the display process wakes
only at block boundaries and stall points, computing everything between
from the video's precomputed frame schedule.
"""

from __future__ import annotations

import typing

from repro.media.access import BoundAccessModel
from repro.media.video import BlockSchedule, Video
from repro.sim.environment import Environment
from repro.sim.resources import Gate
from repro.sim.rng import RandomSource
from repro.sim.stats import Tally
from repro.terminal.pauses import PauseModel

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import ServerFabric


class TerminalStats:
    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.glitches = 0
        #: Glitches that began while an injected fault was active (or
        #: just after one ended) — see repro.faults.
        self.fault_glitches = 0
        self.glitch_durations = Tally()
        self.startup_latency = Tally()
        self.response_time = Tally()
        self.deadline_misses = 0
        self.blocks_received = 0
        self.videos_completed = 0
        self.pauses_taken = 0


class Terminal:
    def __init__(
        self,
        env: Environment,
        terminal_id: int,
        fabric: "ServerFabric",
        access: BoundAccessModel,
        rng: RandomSource,
        memory_bytes: int,
        pause_model: PauseModel | None = None,
        initial_position_fraction: float = 0.0,
    ) -> None:
        self.env = env
        self.terminal_id = terminal_id
        self.fabric = fabric
        # Replica-aware fabrics expose locate_block (routes to the
        # healthiest copy); plain fabrics fall back to the layout.
        # Resolved once — the per-block fetch path skips the getattr.
        self._locate_block = getattr(fabric, "locate_block", None)
        # Proxied fabrics expose a prefix-cache proxy serving each
        # title's head; None (the default) keeps the direct path.
        self._proxy = getattr(fabric, "proxy", None)
        # Stream-sharing fabrics expose a sharing runtime; the terminal
        # reports playback lifecycle events only when the policy merges
        # or chains streams, so everything else keeps the direct path.
        sharing = getattr(fabric, "sharing", None)
        self._sharing = (
            sharing if sharing is not None and sharing.tracks_streams else None
        )
        self.access = access
        self.rng = rng
        self.memory_bytes = memory_bytes
        self.block_size = fabric.block_size
        self.slots = memory_bytes // fabric.block_size
        if self.slots < 2:
            raise ValueError(
                f"terminal memory of {memory_bytes} bytes holds fewer than two "
                f"{fabric.block_size}-byte stripe blocks"
            )
        self.pause_model = pause_model or PauseModel()
        if not 0.0 <= initial_position_fraction <= 1.0:
            raise ValueError(
                f"initial_position_fraction must be in [0, 1], "
                f"got {initial_position_fraction}"
            )
        self.initial_position_fraction = initial_position_fraction
        self.stats = TerminalStats()
        #: When set (by the open-system session layer), the next
        #: playback's startup latency is measured from this instant —
        #: the customer's *arrival* — so admission-queue and piggyback
        #: waits count toward the startup SLO.  None measures from the
        #: play() call, the closed-system behaviour.
        self.startup_anchor: float | None = None
        #: Optional shared :class:`~repro.workload.qos.QosMonitor` fed
        #: one latency per playback start (set by system assembly).
        self.qos = None

        # Per-session playback state (reset by _reset_session).
        self._video: Video | None = None
        self._schedule: BlockSchedule | None = None
        self._epoch = 0
        self._delivered = bytearray()
        self._delivered_total = 0
        self._contig = 0
        self._freed = 0
        self._outstanding = 0
        self._next_request = 0
        self._next_frame = 0
        self._anchor = 0.0
        #: The display clock's effective frame rate.  Exactly
        #: ``video.fps`` except while an adaptive merge chases a leader
        #: (see :meth:`set_display_rate`), so the default arithmetic is
        #: bit-identical to reading ``video.fps`` directly.
        self._display_fps = 0.0
        self._playing = False

        self._slot_gate = Gate(env)
        self._data_gate = Gate(env)

    # ------------------------------------------------------------------
    # Main loop: pick a video, watch it, repeat (closed system, §6)
    # ------------------------------------------------------------------
    def start(self, initial_delay: float) -> None:
        self.env.process(self._run(initial_delay), name=f"terminal-{self.terminal_id}")

    def _run(self, initial_delay: float):
        yield self.env.timeout(initial_delay)
        first = True
        while True:
            # Admission control (a no-op unless the server enforces a
            # stream cap), then any piggyback launch batching.
            admission = getattr(self.fabric, "request_admission", None)
            if admission is not None:
                yield admission()
            video_id = self.access.select()
            launch = self.fabric.request_start(video_id)
            if launch is not None:
                yield launch
            start_frame = 0
            if first and self.initial_position_fraction > 0:
                # Join the first video mid-stream so that a short
                # measurement window sees terminals spread uniformly
                # through their videos, as a long-running closed system
                # would be.
                video = self.fabric.library[video_id]
                limit = int(video.frame_count * self.initial_position_fraction)
                if limit > 0:
                    start_frame = self.rng.randint(0, limit - 1)
            first = False
            yield from self.play(video_id, start_frame)
            release = getattr(self.fabric, "release_admission", None)
            if release is not None:
                release()

    # ------------------------------------------------------------------
    # One viewing
    # ------------------------------------------------------------------
    def play(self, video_id: int, start_frame: int = 0):
        """Generator: watch *video_id* from *start_frame* to the end."""
        video = self.fabric.library[video_id]
        self._begin_session(video, start_frame)
        epoch = self._epoch
        if self._sharing is not None:
            self._sharing.note_play_start(self, video_id)
        session_start = (
            self.env.now if self.startup_anchor is None else self.startup_anchor
        )
        self.startup_anchor = None
        self.env.process(
            self._requester(epoch), name=f"terminal-{self.terminal_id}-req"
        )
        pauses = self.pause_model.sample(self.rng, video.frame_count)
        if start_frame:
            # A mid-video join only experiences pauses still ahead.
            pauses = [pause for pause in pauses if pause[0] >= start_frame]

        # Prime, then display until the video ends.
        yield from self._wait_primed()
        startup_latency = self.env.now - session_start
        self.stats.startup_latency.record(startup_latency)
        if self.qos is not None:
            self.qos.record_startup(startup_latency)
        # The anchor is the (virtual) time frame 0 displayed; display of
        # frame f is due at anchor + f/fps, which makes the first frame
        # due right now even for a mid-video start.
        self._anchor = self.env.now - self._next_frame / self._display_fps
        self._playing = True
        yield from self._display(epoch, pauses)
        self._playing = False
        if self._epoch == epoch and self._next_frame >= video.frame_count:
            self.stats.videos_completed += 1
        if self._sharing is not None:
            self._sharing.note_play_end(self, video_id)
        return None

    def _begin_session(self, video: Video, start_frame: int = 0) -> None:
        if start_frame < 0 or start_frame >= video.frame_count:
            raise ValueError(
                f"start frame {start_frame} outside video of {video.frame_count} frames"
            )
        self._epoch += 1
        self._video = video
        schedule = video.schedule(self.block_size)
        self._schedule = schedule
        start_byte = video.sequence.cumulative_list[start_frame]
        start_block = min(start_byte // self.block_size, schedule.block_count - 1)
        self._delivered = bytearray(schedule.block_count)
        for early in range(start_block):
            self._delivered[early] = 1
        self._delivered_total = start_block
        self._contig = start_block
        self._freed = start_block
        self._outstanding = 0
        self._next_request = start_block
        self._next_frame = start_frame
        self._display_fps = video.fps
        self._playing = False

    # ------------------------------------------------------------------
    # Display process (runs inline in play())
    # ------------------------------------------------------------------
    def _display(self, epoch: int, pauses: list[tuple[int, float]]):
        env = self.env
        sequence = self._video.sequence
        schedule = self._schedule
        frame_count = self._video.frame_count
        pause_index = 0

        while self._next_frame < frame_count and self._epoch == epoch:
            # Take a pause exactly at its frame, before displaying it
            # (and before any glitch accounting — a paused viewer sees
            # no glitch; the terminal keeps filling its buffers).
            if pause_index < len(pauses) and pauses[pause_index][0] <= self._next_frame:
                duration = pauses[pause_index][1]
                pause_index += 1
                self.stats.pauses_taken += 1
                if self._sharing is not None:
                    self._sharing.note_pause(self)
                yield env.timeout(duration)
                self._anchor += duration
                continue

            displayable = sequence.frames_displayable(
                schedule.delivered_bytes(self._contig)
            )
            if displayable <= self._next_frame:
                # The frame due now has not fully arrived: glitch.
                yield from self._glitch()
                continue

            target = displayable
            if self._freed < schedule.block_count:
                target = min(target, schedule.last_frame[self._freed] + 1)
            if pause_index < len(pauses):
                # Stop at the next pause point; the branch above takes
                # the pause once display reaches it.
                target = min(target, pauses[pause_index][0])
            due = self._anchor + target / self._display_fps
            if due > env.now:
                yield env.timeout(due - env.now)
            if self._epoch != epoch:
                return None
            self._next_frame = target
            self._free_displayed_blocks()
        return None

    def _free_displayed_blocks(self) -> None:
        schedule = self._schedule
        freed_any = False
        while (
            self._freed < schedule.block_count
            and self._next_frame > schedule.last_frame[self._freed]
        ):
            self._freed += 1
            freed_any = True
        if freed_any:
            self._slot_gate.open()

    def _glitch(self):
        """Stall: count it, re-prime the buffers, restart display.

        Re-priming "increases the duration of the glitch but reduces the
        likelihood of a second glitch occurring immediately after the
        first" (§5.1).
        """
        started = self.env.now
        self.stats.glitches += 1
        attributable = getattr(self.fabric, "fault_attributable", None)
        if attributable is not None and attributable():
            self.stats.fault_glitches += 1
        # The requester may be asleep on a full buffer; the required
        # block count can have grown (oversized frame), so wake it.
        self._slot_gate.open()
        yield from self._wait_primed()
        self.stats.glitch_durations.record(self.env.now - started)
        self._anchor = self.env.now - self._next_frame / self._display_fps
        return None

    def _edge_frame_span_blocks(self) -> int:
        """Blocks spanned by the frame at the delivery edge.

        A frame spanning more blocks than the terminal has slots (a
        deep exponential-tail frame) could never become displayable
        inside the normal window; the terminal temporarily borrows
        decoder memory for it — the slot limit widens to the span —
        rather than stalling forever.  For ordinary frames the span is
        1-2 blocks and the normal slot window applies.
        """
        sequence = self._video.sequence
        edge = sequence.frames_displayable(
            self._schedule.delivered_bytes(self._contig)
        )
        if edge >= self._video.frame_count:
            return 1
        cumulative = sequence.cumulative_list
        first_block = cumulative[edge] // self.block_size
        last_block = (cumulative[edge + 1] - 1) // self.block_size
        return last_block - first_block + 1

    def _wait_primed(self):
        """Wait until the buffer is full (or the video fully delivered).

        "Full" always includes every block of the frame the display is
        stalled on, so waiting is guaranteed to cure the stall.
        """
        schedule = self._schedule
        while True:
            want = min(
                self._freed + max(self.slots, self._edge_frame_span_blocks()),
                schedule.block_count,
            )
            if self._contig >= want:
                return None
            yield self._data_gate.wait()

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------
    def _requester(self, epoch: int):
        env = self.env
        schedule = self._schedule
        while self._epoch == epoch and self._next_request < schedule.block_count:
            held = self._delivered_total - self._freed
            # A frame larger than the slot window raises the limit so
            # the display can eventually show it (borrowed memory).
            limit = max(self.slots, self._edge_frame_span_blocks())
            if held + self._outstanding >= limit:
                yield self._slot_gate.wait()
                continue
            block = self._next_request
            self._next_request += 1
            self._outstanding += 1
            env.process(self._fetch_block(block, epoch))
        return None

    def _request_deadline(self, block: int) -> float:
        """When the first frame needing *block* will be displayed.

        While priming (display stopped), assume display restarts right
        now — a pessimistic but safe deadline.
        """
        first_frame = self._schedule.first_frame[block]
        if self._playing:
            base = self._anchor
        else:
            base = self.env.now - self._next_frame / self._display_fps
        return base + first_frame / self._display_fps

    def _fetch_block(self, block: int, epoch: int):
        env = self.env
        fabric = self.fabric
        video_id = self._video.video_id
        size = self._schedule.block_bytes(block)
        deadline = self._request_deadline(block)
        locate = self._locate_block
        if locate is not None:
            placement = locate(video_id, block)
        else:
            placement = fabric.layout.locate(video_id, block)
        sent_at = env.now
        # Control message: terminal → server side (origin node, or the
        # proxy when the block falls inside a title's cached prefix).
        yield from fabric.bus.transfer(fabric.control_message_bytes)
        proxy = self._proxy
        if proxy is not None and proxy.serves(video_id, block):
            done = proxy.request_block(
                terminal_id=self.terminal_id,
                video_id=video_id,
                block=block,
                size=size,
                placement=placement,
                deadline=deadline,
            )
        else:
            done = fabric.node(placement.node).request_block(
                terminal_id=self.terminal_id,
                video_id=video_id,
                block=block,
                size=size,
                placement=placement,
                deadline=deadline,
            )
        yield done
        if self._epoch != epoch:
            return None  # Stale delivery from before a seek; discard.
        self._outstanding -= 1
        self._delivered[block] = 1
        self._delivered_total += 1
        count = self._schedule.block_count
        while self._contig < count and self._delivered[self._contig]:
            self._contig += 1
        self.stats.blocks_received += 1
        self.stats.response_time.record(env.now - sent_at)
        if env.now > deadline:
            self.stats.deadline_misses += 1
        self._data_gate.open()
        self._slot_gate.open()
        return None

    def abandon(self) -> None:
        """Stop the current viewing: the customer departs mid-video.

        Used by the open-system session layer when a viewer's time runs
        out (session churn).  Bumping the epoch makes the requester,
        display loop, and in-flight deliveries of this viewing retire at
        their next wakeup — exactly the mechanism :meth:`seek` uses to
        discard a stale stream — and the gates are opened so nothing
        sleeps through the epoch change.
        """
        if self._video is None:
            raise ValueError("abandon() with no active video")
        self._epoch += 1
        if self._sharing is not None:
            self._sharing.note_abandon(self)
        self._slot_gate.open()
        self._data_gate.open()

    def set_display_rate(self, scale: float) -> None:
        """Scale the display clock (adaptive piggyback merging).

        A trailing session chasing a leader displays at ``1 + delta``
        times nominal rate; on merge the rate snaps back to 1.  The
        clock is re-anchored so the current (continuous) position is
        preserved and only *future* frames come due at the new rate.
        The change takes effect at the display loop's next wakeup — a
        block-granular approximation, like the rest of playback.
        """
        if self._video is None:
            raise ValueError("set_display_rate() with no active video")
        nominal = self._video.fps
        # At scale 1.0 assign the video's fps *object* directly (never
        # multiply) so an unmerged run's float arithmetic stays
        # bit-identical to a build without the sharing subsystem.
        fps = nominal if scale == 1.0 else nominal * scale
        position = (self.env.now - self._anchor) * self._display_fps
        self._display_fps = fps
        if self._playing:
            self._anchor = self.env.now - position / fps

    # ------------------------------------------------------------------
    # Interactive controls (§8.1)
    # ------------------------------------------------------------------
    def seek(self, frame: int) -> None:
        """Jump to *frame* (rewind / fast-forward).

        Discards buffered and in-flight data, then re-primes from the
        new position; the display loop picks the session back up
        exactly as it does after a glitch, so "the procedure for the
        terminal is the same regardless of where in the video it begins
        playback".
        """
        if self._video is None:
            raise ValueError("seek() with no active video")
        if frame < 0 or frame >= self._video.frame_count:
            raise ValueError(
                f"frame {frame} outside video of {self._video.frame_count} frames"
            )
        schedule = self._schedule
        self._epoch += 1
        epoch = self._epoch
        if self._sharing is not None:
            self._sharing.note_seek(self)
        # A pending merge chase retires on the epoch change; the display
        # clock returns to nominal rate at the new position.
        self._display_fps = self._video.fps
        start_byte = self._video.sequence.cumulative_list[frame]
        block = min(start_byte // self.block_size, schedule.block_count - 1)
        self._delivered = bytearray(schedule.block_count)
        self._delivered_total = 0
        self._outstanding = 0
        # Treat everything before the seek point as already displayed so
        # priming and slot accounting restart cleanly at the new spot.
        self._contig = block
        for early in range(block):
            self._delivered[early] = 1
        self._delivered_total = block
        self._freed = block
        self._next_request = block
        self._next_frame = frame
        self.env.process(self._requester(epoch))

    def resume_display_after_seek(self, pauses: list[tuple[int, float]] | None = None):
        """Generator: re-prime at the seek position and play to the end."""
        epoch = self._epoch
        yield from self._wait_primed()
        self._anchor = self.env.now - self._next_frame / self._display_fps
        self._playing = True
        yield from self._display(epoch, pauses or [])
        self._playing = False
        if self._epoch == epoch and self._next_frame >= self._video.frame_count:
            self.stats.videos_completed += 1
        return None

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Terminal {self.terminal_id} slots={self.slots}>"
