"""The viewer pause model (paper Figure 19).

"Each terminal paused each video on average twice for an average of 2
minutes": per video we draw a Poisson-distributed pause count, uniform
pause positions (frames), and exponentially distributed durations.
"""

from __future__ import annotations

import dataclasses

from repro.sim.rng import RandomSource


@dataclasses.dataclass(frozen=True)
class PauseModel:
    enabled: bool = False
    mean_pauses_per_video: float = 2.0
    mean_pause_duration_s: float = 120.0

    def sample(self, rng: RandomSource, frame_count: int) -> list[tuple[int, float]]:
        """Pause plan for one viewing: sorted (frame, duration) pairs."""
        if not self.enabled or frame_count <= 1:
            return []
        count = rng.poisson(self.mean_pauses_per_video)
        pauses = [
            (rng.randint(0, frame_count - 1), rng.exponential(self.mean_pause_duration_s))
            for _ in range(count)
        ]
        pauses.sort()
        return pauses
