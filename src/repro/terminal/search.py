"""Visual search: fast-forward and rewind with picture (paper §8.1).

The paper outlines two schemes and this module implements both as
driver generators over a :class:`~repro.terminal.terminal.Terminal`:

* **skim search** — "the terminal can skip forward or backward through
  the movie showing one or two seconds out of every several seconds of
  video data.  Since the skipped video segments need not be read, this
  scheme will not significantly increase the load on the video server"
  — at the cost of a choppy picture;
* **version search** — switch to "a completely separate version of
  each movie ... for supporting rewind and fast-forward searches": a
  condensed copy (see ``VideoLibrary(search_speedup=...)``) that plays
  as a smooth, constant-rate stream at the cost of extra disk space.

Both return the frame of the *normal* video at which the viewer ends
up, so play can resume there.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.terminal.terminal import Terminal


@dataclasses.dataclass(frozen=True)
class SkimParameters:
    """How choppy the skip-based search is."""

    show_s: float = 1.0   # seconds of video displayed per hop
    skip_s: float = 8.0   # seconds of video skipped per hop

    def __post_init__(self) -> None:
        if self.show_s <= 0 or self.skip_s <= 0:
            raise ValueError("show_s and skip_s must be positive")


def skim_search(
    terminal: "Terminal",
    direction: int,
    duration_s: float,
    params: SkimParameters | None = None,
):
    """Generator: skip through the current video showing snippets.

    *direction* is +1 (fast-forward) or -1 (rewind); *duration_s* is
    how long the viewer holds the button.  Returns the final frame.
    """
    if direction not in (+1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    params = params or SkimParameters()
    env = terminal.env
    video = terminal._video
    if video is None:
        raise ValueError("skim_search with no active video")
    fps = video.fps
    show_frames = max(1, int(params.show_s * fps))
    hop_frames = direction * int((params.show_s + params.skip_s) * fps)
    deadline = env.now + duration_s

    frame = terminal._next_frame
    while env.now < deadline:
        target = frame + hop_frames
        if target <= 0 or target >= video.frame_count - show_frames:
            break
        terminal.seek(target)
        # Display one snippet from the new position.
        yield from terminal._wait_primed()
        terminal._anchor = env.now - terminal._next_frame / fps
        snippet_end = min(target + show_frames, video.frame_count)
        due = terminal._anchor + snippet_end / fps
        if due > env.now:
            yield env.timeout(due - env.now)
        terminal._next_frame = snippet_end
        frame = snippet_end
    return frame


def version_search(
    terminal: "Terminal",
    title_id: int,
    direction: int,
    duration_s: float,
):
    """Generator: smooth search using the title's condensed copy.

    Switches the terminal to the search version at the position
    corresponding to the viewer's place in the movie, plays it for up
    to *duration_s* (each second covering ``speedup`` seconds of
    content), then maps the position back and returns the equivalent
    frame of the normal video.  A rewind reads the same condensed
    stream — the server load is identical — with the position applied
    in the backward direction.
    """
    if direction not in (+1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    library = terminal.fabric.library
    speedup = library.search_speedup
    if speedup is None:
        raise ValueError("library stores no search versions")
    env = terminal.env
    normal = library[title_id]
    search = library[library.search_version_of(title_id)]

    # Map the current position into the search copy.
    start_fraction = terminal._next_frame / max(1, normal.frame_count)
    start = min(int(start_fraction * search.frame_count), search.frame_count - 1)
    session = env.process(terminal.play(search.video_id, start_frame=start))
    yield env.timeout(duration_s)
    if session.is_alive:
        # Viewer released the button: end the search playback the same
        # way a seek does — bump the session epoch and let it unwind.
        terminal._epoch += 1
        yield session

    watched_fraction = (terminal._next_frame - start) / max(1, search.frame_count)
    final_fraction = start_fraction + direction * watched_fraction
    final_fraction = min(max(final_fraction, 0.0), 1.0)
    final = min(int(final_fraction * normal.frame_count), normal.frame_count - 1)
    return final
