"""A node CPU: FCFS-scheduled, 40 MIPS (Table 1)."""

from __future__ import annotations

import typing

from repro.cpu.costs import CpuParameters
from repro.sim.environment import Environment
from repro.sim.resources import Resource


class Processor:
    """One node's CPU, executing bursts FCFS (Table 1: "CPU Scheduling
    FCFS")."""

    def __init__(self, env: Environment, params: CpuParameters, node: int) -> None:
        self.env = env
        self.params = params
        self.node = node
        self._resource = Resource(env, capacity=1)

    def execute(self, instructions: int) -> typing.Generator:
        """Generator (``yield from``): run a burst of instructions."""
        request = self._resource.request()
        yield request
        try:
            yield self.env.timeout(self.params.seconds(instructions))
        finally:
            self._resource.release(request)
        return None

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def utilization(self) -> float:
        return self._resource.utilization()

    def reset_stats(self) -> None:
        self._resource.reset_stats()
