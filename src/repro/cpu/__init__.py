"""CPU models: FCFS processors and Table 1 instruction costs."""

from repro.cpu.costs import CpuParameters, InstructionCosts
from repro.cpu.processor import Processor

__all__ = ["CpuParameters", "InstructionCosts", "Processor"]
