"""CPU instruction costs of I/O and messaging operations (Table 1)."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class InstructionCosts:
    """Instruction counts measured on the Intel Paragon (Table 1)."""

    start_io: int = 20_000
    send_message: int = 6_800
    receive_message: int = 2_200


@dataclasses.dataclass(frozen=True)
class CpuParameters:
    speed_mips: float = 40.0
    costs: InstructionCosts = dataclasses.field(default_factory=InstructionCosts)

    def seconds(self, instructions: int) -> float:
        """Wall-clock seconds to execute *instructions*."""
        if instructions < 0:
            raise ValueError(f"instructions must be >= 0, got {instructions}")
        return instructions / (self.speed_mips * 1e6)
