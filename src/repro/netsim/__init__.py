"""Interconnection network model: contention-free bus with wire delays."""

from repro.netsim.bus import NetworkBus, NetworkParameters

__all__ = ["NetworkBus", "NetworkParameters"]
