"""The interconnection network (paper §6.2).

"The network is modeled as a bus with unlimited aggregate bandwidth and
constant latency regardless of which terminal and node are
communicating" — so there is no contention resource, only a wire delay
of ``5 µs + 0.04 µs/byte`` and per-message CPU costs at the endpoints
(paid by the callers, since only server nodes have modelled CPUs).

The bus records every byte it carries in per-window totals so the
benchmark for Figure 18 (peak aggregate network bandwidth) can read the
peak off directly.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.environment import Environment
from repro.sim.stats import WindowedRate


@dataclasses.dataclass(frozen=True)
class NetworkParameters:
    fixed_delay_s: float = 5e-6
    per_byte_delay_s: float = 0.04e-6
    #: Window used for peak-bandwidth accounting.
    rate_window_s: float = 1.0

    def transit_time(self, size_bytes: int) -> float:
        if size_bytes < 0:
            raise ValueError(f"message size must be >= 0, got {size_bytes}")
        return self.fixed_delay_s + self.per_byte_delay_s * size_bytes


class NetworkBus:
    def __init__(self, env: Environment, params: NetworkParameters) -> None:
        self.env = env
        self.params = params
        self.traffic = WindowedRate(params.rate_window_s, env.now)
        self.messages = 0
        #: Bytes carried per traffic class (only tagged transfers are
        #: accounted; untagged foreground traffic stays out).
        self.kind_bytes: dict[str, int] = {}
        # Fault-injection state (see repro.faults); empty by default.
        self._degrade_multipliers: list[float] = []

    def degrade(self, multiplier: float) -> None:
        """Stretch every transit time by *multiplier* until restored."""
        if multiplier < 1.0:
            raise ValueError(f"degrade multiplier must be >= 1, got {multiplier}")
        self._degrade_multipliers.append(multiplier)

    def restore(self, multiplier: float) -> None:
        self._degrade_multipliers.remove(multiplier)

    @property
    def degraded(self) -> bool:
        return bool(self._degrade_multipliers)

    def transfer(self, size_bytes: int, kind: str | None = None) -> typing.Generator:
        """Generator (``yield from``): carry a message across the wire.

        *kind* tags the bytes into :attr:`kind_bytes` (e.g. the cluster
        charges ``"rebuild"`` and ``"resync"`` re-replication traffic),
        so background classes are separable from foreground totals.
        """
        self.messages += 1
        if kind is not None:
            self.kind_bytes[kind] = self.kind_bytes.get(kind, 0) + size_bytes
        self.traffic.record(self.env.now, size_bytes)
        transit = self.params.transit_time(size_bytes)
        for multiplier in self._degrade_multipliers:
            transit *= multiplier
        yield self.env.timeout(transit)
        return None

    @property
    def peak_bandwidth(self) -> float:
        """Largest bytes/second seen in any accounting window."""
        return self.traffic.peak_rate

    def mean_bandwidth(self) -> float:
        return self.traffic.mean_rate(self.env.now)

    def reset_stats(self) -> None:
        self.traffic.reset(self.env.now)
        self.messages = 0
        self.kind_bytes = {}
