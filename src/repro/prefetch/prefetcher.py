"""Per-disk prefetch queues and worker processes (paper §5.2.3).

Each disk has its own prefetch queue — FIFO for standard prefetching,
deadline-ordered for real-time/delayed prefetching — drained by a fixed
set of prefetch worker processes.  More workers mean more prefetch
requests concurrently in the disk queue, i.e. more aggressive
prefetching.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.bufferpool.pool import BufferPool
from repro.prefetch.spec import PrefetchSpec
from repro.sim.environment import Environment
from repro.sim.resources import Gate, PriorityStore, Store
from repro.storage.drive import DiskDrive
from repro.storage.request import NO_DEADLINE, DiskRequest

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.processor import Processor
    from repro.cpu.costs import CpuParameters

#: Pseudo terminal id carried by prefetch disk requests.
PREFETCH_TERMINAL = -1

_sequence = itertools.count()


@dataclasses.dataclass
class PrefetchOrder:
    """One queued prefetch: read (video, block) from this disk."""

    key: tuple[int, int]
    size: int
    byte_offset: int
    cylinder: int
    deadline: float  # estimated deadline of the anticipated true request

    def sort_item(self) -> tuple:
        return (self.deadline, next(_sequence), self)


class PrefetchStats:
    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.scheduled = 0
        self.deduplicated = 0
        self.already_resident = 0
        self.issued = 0
        self.completed = 0


class DiskPrefetcher:
    """Prefetch queue + workers for one disk."""

    def __init__(
        self,
        env: Environment,
        spec: PrefetchSpec,
        drive: DiskDrive,
        pool: BufferPool,
        cpu: "Processor",
        cpu_params: "CpuParameters",
    ) -> None:
        self.env = env
        self.spec = spec
        self.drive = drive
        self.pool = pool
        self.cpu = cpu
        self.cpu_params = cpu_params
        self.stats = PrefetchStats()
        self._pending_keys: set[tuple[int, int]] = set()
        self._arrival = Gate(env)
        if spec.mode == "none":
            self._queue = None
            return
        if spec.uses_deadlines:
            self._queue: Store | PriorityStore | None = PriorityStore(env)
        else:
            self._queue = Store(env)
        for worker in range(spec.processes_per_disk):
            env.process(
                self._worker(),
                name=f"prefetch-{drive.disk_id}-{worker}",
            )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, order: PrefetchOrder) -> bool:
        """Queue a prefetch unless disabled, duplicate, or resident."""
        if self._queue is None:
            return False
        if order.key in self._pending_keys:
            self.stats.deduplicated += 1
            return False
        if self.pool.lookup(order.key) is not None:
            self.stats.already_resident += 1
            return False
        self.stats.scheduled += 1
        self._pending_keys.add(order.key)
        if self.spec.uses_deadlines:
            self._queue.put(order.sort_item())
        else:
            self._queue.put(order)
        self._arrival.open()
        return True

    @property
    def queue_depth(self) -> int:
        return 0 if self._queue is None else len(self._queue)

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _worker(self):
        env = self.env
        while True:
            item = yield self._queue.get()
            order = item[-1] if self.spec.uses_deadlines else item
            if self.spec.mode == "delayed":
                order = yield from self._hold_back(order)
            yield from self._fetch(order)

    def _hold_back(self, order: PrefetchOrder):
        """Delay issuing until within the maximum advance prefetch time.

        While holding back, a more urgent prefetch may arrive; when it
        does, swap it for the held one so deadline order is preserved.
        """
        env = self.env
        while True:
            issue_at = order.deadline - self.spec.max_advance_s
            if env.now >= issue_at or order.deadline == NO_DEADLINE:
                return order
            # Sleep until issue time, but wake early if another order
            # arrives — it may be more urgent than the held one.
            yield env.any_of([env.timeout(issue_at - env.now), self._arrival.wait()])
            if len(self._queue) > 0:
                head = self._queue.peek()
                if head[0] < order.deadline:
                    self._queue.put(order.sort_item())
                    item = yield self._queue.get()
                    order = item[-1]

    def _fetch(self, order: PrefetchOrder):
        env = self.env
        self._pending_keys.discard(order.key)
        page = self.pool.try_acquire_for_prefetch(order.key, order.size)
        if page is None:
            # Already resident (raced with a real request or another
            # prefetcher) or no memory available without cannibalising
            # another prefetched page: skip this prefetch.
            return
        self.stats.issued += 1
        yield from self.cpu.execute(self.cpu_params.costs.start_io)
        request = DiskRequest(
            env,
            byte_offset=order.byte_offset,
            size=order.size,
            cylinder=order.cylinder,
            deadline=order.deadline if self.spec.uses_deadlines else NO_DEADLINE,
            is_prefetch=True,
            terminal_id=PREFETCH_TERMINAL,
        )
        request.tighten_deadline(page.deadline_hint)
        page.disk_request = request
        self.drive.submit(request)
        yield request.done
        if request.failed:
            # The drive died: drop the page so the block is re-read (and
            # failed over) when a terminal really asks for it.
            self.pool.discard_failed(page)
            return
        self.pool.finish_io(page)
        self.pool.unpin(page)
        self.stats.completed += 1

    def reset_stats(self) -> None:
        self.stats.reset()
