"""Prefetching: standard, real-time, and delayed (§5.2.3)."""

from repro.prefetch.prefetcher import (
    PREFETCH_TERMINAL,
    DiskPrefetcher,
    PrefetchOrder,
    PrefetchStats,
)
from repro.prefetch.spec import PREFETCH_MODES, PrefetchSpec

__all__ = [
    "DiskPrefetcher",
    "PREFETCH_MODES",
    "PREFETCH_TERMINAL",
    "PrefetchOrder",
    "PrefetchStats",
    "PrefetchSpec",
]
