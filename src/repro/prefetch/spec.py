"""Prefetching configuration (paper §5.2.3)."""

from __future__ import annotations

import dataclasses

PREFETCH_MODES = ("none", "standard", "realtime", "delayed")


@dataclasses.dataclass(frozen=True)
class PrefetchSpec:
    """How the server prefetches the next stripe block of each stream.

    * ``none`` — no prefetching at all;
    * ``standard`` — FIFO prefetch queue per disk, deadline-less disk
      requests (lowest possible priority under real-time scheduling);
    * ``realtime`` — prefetch queue ordered by the *estimated* deadline
      of the anticipated true request; disk requests carry that
      deadline, so an urgent prefetch can overtake a non-urgent real
      request;
    * ``delayed`` — real-time prefetching, but a prefetch is not issued
      until it is within ``max_advance_s`` ("maximum advance prefetch
      time") of its estimated deadline, bounding the memory that holds
      prefetched-but-unneeded data.

    Two knobs set prefetch "aggressiveness" (§5.2.3: "by varying the
    number of prefetch processes and, hence, the number of prefetch
    requests that are concurrently in the disk queue"):

    * ``processes_per_disk`` — how many prefetch requests can be at the
      disk concurrently;
    * ``depth`` — how many upcoming blocks of a stream (on the same
      disk) each real reference schedules; deeper lookahead keeps more
      prefetched pages resident awaiting their references, which is
      exactly the memory pressure the love-prefetch and delayed
      prefetching algorithms exist to manage.

    ``pool_share`` caps the fraction of buffer pool pages that may hold
    prefetched-but-not-yet-referenced data; prefetches beyond the cap
    are dropped rather than issued.  ``1.0`` is the paper's
    "unconstrained prefetching" (used with real-time scheduling);
    a smaller share is the "severely limited" prefetching that
    protects the non-real-time schedulers.
    """

    mode: str = "standard"
    processes_per_disk: int = 1
    max_advance_s: float = 8.0
    depth: int = 1
    pool_share: float = 0.75

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if not 0.0 < self.pool_share <= 1.0:
            raise ValueError(
                f"pool_share must be in (0, 1], got {self.pool_share}"
            )
        if self.mode not in PREFETCH_MODES:
            raise ValueError(
                f"unknown prefetch mode {self.mode!r}; choose from {PREFETCH_MODES}"
            )
        if self.processes_per_disk < 1:
            raise ValueError(
                f"processes_per_disk must be >= 1, got {self.processes_per_disk}"
            )
        if self.mode == "delayed" and self.max_advance_s <= 0:
            raise ValueError(
                f"max_advance_s must be positive, got {self.max_advance_s}"
            )

    @property
    def uses_deadlines(self) -> bool:
        return self.mode in ("realtime", "delayed")

    def label(self) -> str:
        if self.mode == "delayed":
            return f"delayed prefetching ({self.max_advance_s:g}s)"
        if self.mode == "realtime":
            return "real-time prefetching"
        return f"{self.mode} prefetching"
