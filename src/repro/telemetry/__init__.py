"""Observation layer: event tracing, periodic state sampling, and
per-run execution accounting."""

from repro.telemetry.runstats import RunStopwatch
from repro.telemetry.sampler import PeriodicSampler, standard_probes
from repro.telemetry.trace import TraceEvent, TraceRecorder

__all__ = [
    "PeriodicSampler",
    "RunStopwatch",
    "TraceEvent",
    "TraceRecorder",
    "standard_probes",
]
