"""Observation layer: event tracing and periodic state sampling."""

from repro.telemetry.sampler import PeriodicSampler, standard_probes
from repro.telemetry.trace import TraceEvent, TraceRecorder

__all__ = ["PeriodicSampler", "TraceEvent", "TraceRecorder", "standard_probes"]
