"""Periodic time-series sampling of live simulation state.

Attach named probes (zero-argument callables) and the sampler polls
them on a fixed simulated-time interval, building the time series
behind utilization-over-time plots — e.g. disk queue lengths, buffer
pool occupancy, glitch counts.
"""

from __future__ import annotations

import io
import typing

from repro.sim.environment import Environment


class PeriodicSampler:
    def __init__(
        self,
        env: Environment,
        interval_s: float,
        probes: dict[str, typing.Callable[[], float]],
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if not probes:
            raise ValueError("need at least one probe")
        self.env = env
        self.interval_s = interval_s
        self.probes = dict(probes)
        self.names = tuple(self.probes)
        #: Master switch: when False the sampler keeps its cadence but
        #: polls no probes and appends no rows, so a paused sampler
        #: costs one timeout per interval and nothing per probe.
        self.enabled = True
        #: Rows of (time, value-per-probe-in-names-order).
        self.rows: list[tuple] = []
        self._process = env.process(self._run(), name="telemetry-sampler")

    def _run(self):
        env = self.env
        while True:
            if self.enabled:
                self.rows.append(
                    (env.now,) + tuple(self.probes[name]() for name in self.names)
                )
            yield env.timeout(self.interval_s)

    def pause(self) -> None:
        """Stop sampling (the cadence is kept, so resume stays aligned)."""
        self.enabled = False

    def resume(self) -> None:
        """Start sampling again after :meth:`pause`."""
        self.enabled = True

    def series(self, name: str) -> list[tuple[float, float]]:
        """The (time, value) series of one probe."""
        index = self.names.index(name) + 1
        return [(row[0], row[index]) for row in self.rows]

    def latest(self) -> dict[str, float]:
        if not self.rows:
            return {}
        last = self.rows[-1]
        return {name: last[i + 1] for i, name in enumerate(self.names)}

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write("time," + ",".join(self.names) + "\n")
        for row in self.rows:
            out.write(",".join(f"{value:g}" for value in row) + "\n")
        return out.getvalue()


def standard_probes(system) -> dict[str, typing.Callable[[], float]]:
    """The probe set most analyses want, for a :class:`SpiffiSystem`."""
    env = system.env

    def mean_disk_queue() -> float:
        queues = [
            len(drive.scheduler) for node in system.nodes for drive in node.drives
        ]
        return sum(queues) / len(queues)

    def mean_pool_occupancy() -> float:
        pools = [node.pool for node in system.nodes]
        return sum(p.resident_pages / p.capacity_pages for p in pools) / len(pools)

    def prefetched_fraction() -> float:
        pools = [node.pool for node in system.nodes]
        return sum(
            p.prefetched_resident / p.capacity_pages for p in pools
        ) / len(pools)

    def total_glitches() -> float:
        return float(sum(t.stats.glitches for t in system.terminals))

    def admission_queue() -> float:
        return float(system.admission.queue_length)

    return {
        "disk_queue": mean_disk_queue,
        "pool_occupancy": mean_pool_occupancy,
        "prefetched_fraction": prefetched_fraction,
        "glitches": total_glitches,
        "admission_queue": admission_queue,
    }
