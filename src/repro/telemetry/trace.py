"""Structured event tracing for simulation debugging and analysis.

A :class:`TraceRecorder` collects typed, timestamped events from
anywhere in the simulator (bounded, so hour-long simulations cannot
exhaust memory), supports filtering at record time, and summarises by
event kind.  Nothing in the simulator *requires* tracing — it is an
observation layer.
"""

from __future__ import annotations

import typing
from collections import Counter, deque

from repro.sim.environment import Environment

#: Event kinds emitted by the fault-injection subsystem.
FAULT_START = "fault.start"
FAULT_END = "fault.end"
FAULT_RETRY = "fault.retry"

#: Event kinds emitted by the replication & recovery subsystem.
FAILOVER_READ = "failover.read"
HEALTH_CHANGE = "health.change"
REBUILD_START = "rebuild.start"
REBUILD_BLOCK = "rebuild.block"
REBUILD_END = "rebuild.end"

#: Event kinds emitted by the open-system workload subsystem.
SESSION_ARRIVE = "session.arrive"
SESSION_ADMIT = "session.admit"
SESSION_BALK = "session.balk"
SESSION_RENEGE = "session.renege"
SESSION_COMPLETE = "session.complete"
SESSION_ABANDON = "session.abandon"
QUEUE_ENTER = "queue.enter"
QUEUE_LEAVE = "queue.leave"

#: Event kinds emitted by the proxy/edge prefix-cache tier.
PROXY_HIT = "proxy.hit"
PROXY_MISS = "proxy.miss"
PROXY_FILL = "proxy.fill"

#: Event kinds emitted by the stream-sharing subsystem.
BATCH_OPEN = "batch.open"
BATCH_JOIN = "batch.join"
BATCH_LAUNCH = "batch.launch"
MERGE_START = "merge.start"
MERGE_DONE = "merge.done"
MERGE_ABORT = "merge.abort"
CHAIN_FORM = "chain.form"
CHAIN_BREAK = "chain.break"

#: Event kinds emitted by the cluster self-healing layer.
CLUSTER_REBUILD_START = "cluster.rebuild.start"
CLUSTER_REBUILD_TITLE = "cluster.rebuild.title"
CLUSTER_REBUILD_END = "cluster.rebuild.end"
CLUSTER_REJOIN_START = "cluster.rejoin.start"
CLUSTER_REJOIN_END = "cluster.rejoin.end"


class TraceEvent(typing.NamedTuple):
    time: float
    kind: str
    fields: dict


class TraceRecorder:
    __slots__ = ("env", "capacity", "kinds", "enabled", "_events", "counts", "dropped")

    def __init__(
        self,
        env: Environment,
        capacity: int = 100_000,
        kinds: typing.Collection[str] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: When set, only these event kinds are recorded.
        self.kinds = set(kinds) if kinds is not None else None
        #: Master switch: when False, :meth:`record` returns immediately.
        #: Emitting subsystems additionally skip building the field dict
        #: when no recorder is attached at all, so a simulation that
        #: never enables tracing pays ~zero per event.
        self.enabled = True
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self.dropped = 0

    def record(self, kind: str, **fields) -> None:
        """Record one event (cheap no-op when disabled or filtered)."""
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.counts[kind] += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self.env.now, kind, fields))

    def pause(self) -> None:
        """Stop recording (e.g. outside the measurement window)."""
        self.enabled = False

    def resume(self) -> None:
        """Start recording again after :meth:`pause`."""
        self.enabled = True

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Recorded events, optionally restricted to one kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with start <= time < end."""
        return [event for event in self._events if start <= event.time < end]

    def summary(self) -> dict[str, int]:
        return dict(self.counts)

    def clear(self) -> None:
        self._events.clear()
        self.counts.clear()
        self.dropped = 0
