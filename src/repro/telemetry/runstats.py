"""Per-run execution accounting: wall time and simulator event counts.

The paper reports up to 10 hours of simulation per 64-disk
configuration; our reproduction tracks how long each run really takes
(host wall time) and how much work the discrete-event kernel did
(events processed), so experiment drivers can report throughput and the
parallel runner can show per-run progress.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.metrics import RunMetrics
from repro.sim.environment import Environment


class RunStopwatch:
    """Context manager measuring one simulation's execution.

    Captures host wall time across the ``with`` block and the number of
    simulator events the :class:`Environment` processed inside it.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.wall_time_s = 0.0
        self.events_processed = 0

    def __enter__(self) -> "RunStopwatch":
        self._events_at_start = self.env.events_processed
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.wall_time_s = time.perf_counter() - self._started
        self.events_processed = self.env.events_processed - self._events_at_start

    @property
    def events_per_second(self) -> float:
        """Kernel throughput over the measured block (0.0 before exit)."""
        return (
            self.events_processed / self.wall_time_s if self.wall_time_s > 0 else 0.0
        )

    def stamp(self, metrics: RunMetrics) -> RunMetrics:
        """The metrics with this stopwatch's accounting filled in."""
        return dataclasses.replace(
            metrics,
            wall_time_s=self.wall_time_s,
            events_processed=self.events_processed,
        )
