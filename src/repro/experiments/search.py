"""The paper's primary methodology: finding the maximum number of
terminals a configuration supports glitch-free (§7.1, Figure 9).

"This value is obtained by increasing the number of terminals until the
number of glitches becomes non-zero."  We bracket the glitch boundary
starting from a hint, then bisect down to a configurable granularity
(the paper worked to about 10 terminals / 5%).  Optional replications
re-run boundary points with different seeds, mirroring the paper's
confidence procedure.

The search is split in two for parallel execution:

* :func:`plan_probes` — a *pure* planner: a generator that yields
  batches of terminal counts to probe and receives their glitch-free
  verdicts.  Batches arise from speculation (the bracketing ladder
  probes several doubling steps at once; bisection probes several
  candidate midpoints per round), so a parallel executor can fan a
  whole batch out at once.  The plan depends only on the verdicts —
  never on execution order or job count — so results are bit-identical
  under any executor.
* :func:`find_max_terminals` — drives the planner through a
  :class:`~repro.experiments.runner.Runner`, fanning all replications
  of every batch point out together.  The *full* planned batch is
  always executed and recorded, so the probe evidence is
  order-independent (a glitching replication no longer truncates the
  record for its point).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.config import SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.experiments.runner import Runner, RunRequest, default_runner


@dataclasses.dataclass(frozen=True)
class Probe:
    terminals: int
    seed: int
    metrics: RunMetrics

    @property
    def glitch_free(self) -> bool:
        return self.metrics.glitches == 0


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Outcome of one max-terminals search."""

    max_terminals: int
    granularity: int
    probes: tuple[Probe, ...]

    @property
    def runs(self) -> int:
        return len(self.probes)

    def metrics_at_max(self) -> RunMetrics | None:
        """Metrics of a glitch-free run at the reported maximum."""
        for probe in self.probes:
            if probe.terminals == self.max_terminals and probe.glitch_free:
                return probe.metrics
        return None


#: How many points a single planner round may speculate on: ladder
#: steps while bracketing, candidate midpoints while bisecting.  Fixed
#: (never derived from the executor's job count) so the probe plan is
#: identical no matter how the search is executed.
SPECULATION = 2


def plan_probes(
    low: int,
    high: int,
    pivot: int,
    granularity: int,
    speculation: int = SPECULATION,
) -> typing.Generator[tuple[int, ...], dict[int, bool], int]:
    """Pure max-terminals probe planner.

    Yields batches (tuples of terminal counts, every one a multiple of
    *granularity* within [low, high]) and expects ``send()`` of a
    ``{terminals: glitch_free}`` mapping covering the batch.  Returns
    (via ``StopIteration.value``) the largest glitch-free count, or 0
    if even *low* glitches.  Never asks about the same count twice.
    """
    if speculation < 1:
        raise ValueError(f"speculation must be >= 1, got {speculation}")
    verdicts: dict[int, bool] = {}

    got = yield (pivot,)
    verdicts.update(got)

    # --- bracket the boundary ------------------------------------------
    if verdicts[pivot]:
        best, fail = pivot, None
        step = granularity
        while best < high:
            # Speculative ladder: the next `speculation` doubling steps,
            # assuming each one passes.
            ladder: list[int] = []
            point, size = best, step
            for _ in range(speculation):
                point = min(_snap(point + size, granularity), high)
                if point <= (ladder[-1] if ladder else best):
                    break
                ladder.append(point)
                size *= 2
            if not ladder:
                break
            fresh = tuple(p for p in ladder if p not in verdicts)
            if fresh:
                got = yield fresh
                verdicts.update(got)
            for p in ladder:
                if verdicts[p]:
                    best = p
                else:
                    fail = p
                    break
            if fail is not None:
                break
            step = size
        if fail is None:
            return best
    else:
        fail, best = pivot, None
        step = granularity
        while best is None and fail > low:
            ladder = []
            point, size = fail, step
            for _ in range(speculation):
                point = max(_snap(point - size, granularity), low)
                if point >= (ladder[-1] if ladder else fail):
                    break
                ladder.append(point)
                size *= 2
            if not ladder:
                break
            fresh = tuple(p for p in ladder if p not in verdicts)
            if fresh:
                got = yield fresh
                verdicts.update(got)
            for p in ladder:
                if verdicts[p]:
                    best = p
                    break
                fail = p
            step = size
        if best is None:
            # Even the smallest load glitches: report zero capacity.
            return 0

    # --- bisect between best (glitch-free) and fail ---------------------
    # Several candidate midpoints per round: with k candidates known,
    # the bracket shrinks to ~1/(k+1) of its span every round whichever
    # way the verdicts fall.
    while fail - best > granularity:
        span = fail - best
        k = max(1, min(speculation, span // granularity - 1))
        candidates: list[int] = []
        for i in range(1, k + 1):
            candidate = _snap(best + span * i // (k + 1), granularity)
            if best < candidate < fail and (
                not candidates or candidate > candidates[-1]
            ):
                candidates.append(candidate)
        if not candidates:
            break
        fresh = tuple(c for c in candidates if c not in verdicts)
        if fresh:
            got = yield fresh
            verdicts.update(got)
        for candidate in candidates:
            if verdicts[candidate]:
                best = candidate
            else:
                fail = candidate
                break
    return best


def find_max_terminals(
    config: SpiffiConfig,
    hint: int = 200,
    granularity: int = 10,
    low: int = 10,
    high: int = 4000,
    replications: int = 1,
    runner: Runner | None = None,
    speculation: int = SPECULATION,
    tag: str = "",
) -> SearchResult:
    """Largest terminal count (multiple of *granularity*) with zero
    glitches across *replications* seeded runs.

    *hint* seeds the bracketing phase; a good hint (e.g. the paper's own
    number) keeps the search to a handful of simulation runs.  Probes
    are fanned out through *runner* (the ambient default when omitted)
    batch by batch: all replications of every batch point run together,
    and the result is identical for any executor or job count.
    """
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    low = max(granularity, _snap(low, granularity))
    high = _snap(high, granularity)
    if low > high:
        raise ValueError(f"empty search range [{low}, {high}]")
    runner = runner or default_runner()

    pivot = min(max(_snap(hint, granularity), low), high)
    probes: list[Probe] = []
    plan = plan_probes(low, high, pivot, granularity, speculation)
    batch = next(plan)
    while True:
        seeds = [config.seed + replication for replication in range(replications)]
        requests = [
            RunRequest(
                config.replace(terminals=terminals, seed=seed),
                tag=f"{tag or 'search'} t={terminals} seed={seed}",
            )
            for terminals in batch
            for seed in seeds
        ]
        outcomes = iter(runner.run_batch(requests))
        verdicts: dict[int, bool] = {}
        for terminals in batch:
            ok = True
            for seed in seeds:
                outcome = next(outcomes)
                if outcome.failed:
                    # A probe that errored (after the executor's retries)
                    # cannot yield a verdict either way; aborting keeps the
                    # search's determinism contract honest.
                    raise RuntimeError(
                        f"search probe {outcome.tag or terminals} failed: "
                        f"{outcome.error}"
                    )
                metrics = outcome.metrics
                probes.append(Probe(terminals, seed, metrics))
                if metrics.glitches > 0:
                    ok = False
            verdicts[terminals] = ok
        try:
            batch = plan.send(verdicts)
        except StopIteration as stop:
            return SearchResult(stop.value, granularity, tuple(probes))


def _snap(value: int, granularity: int) -> int:
    return (value // granularity) * granularity
