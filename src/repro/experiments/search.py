"""The paper's primary methodology: finding the maximum number of
terminals a configuration supports glitch-free (§7.1, Figure 9).

"This value is obtained by increasing the number of terminals until the
number of glitches becomes non-zero."  We bracket the glitch boundary
starting from a hint, then bisect down to a configurable granularity
(the paper worked to about 10 terminals / 5%).  Optional replications
re-run boundary points with different seeds, mirroring the paper's
confidence procedure.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.core.system import run_simulation


@dataclasses.dataclass(frozen=True)
class Probe:
    terminals: int
    seed: int
    metrics: RunMetrics

    @property
    def glitch_free(self) -> bool:
        return self.metrics.glitches == 0


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Outcome of one max-terminals search."""

    max_terminals: int
    granularity: int
    probes: tuple[Probe, ...]

    @property
    def runs(self) -> int:
        return len(self.probes)

    def metrics_at_max(self) -> RunMetrics | None:
        """Metrics of a glitch-free run at the reported maximum."""
        for probe in self.probes:
            if probe.terminals == self.max_terminals and probe.glitch_free:
                return probe.metrics
        return None


def find_max_terminals(
    config: SpiffiConfig,
    hint: int = 200,
    granularity: int = 10,
    low: int = 10,
    high: int = 4000,
    replications: int = 1,
) -> SearchResult:
    """Largest terminal count (multiple of *granularity*) with zero
    glitches across *replications* seeded runs.

    *hint* seeds the bracketing phase; a good hint (e.g. the paper's own
    number) keeps the search to a handful of simulation runs.
    """
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    low = max(granularity, _snap(low, granularity))
    high = _snap(high, granularity)
    if low > high:
        raise ValueError(f"empty search range [{low}, {high}]")

    probes: list[Probe] = []
    verdicts: dict[int, bool] = {}

    def glitch_free(terminals: int) -> bool:
        if terminals in verdicts:
            return verdicts[terminals]
        ok = True
        for replication in range(replications):
            seed = config.seed + replication
            metrics = run_simulation(
                config.replace(terminals=terminals, seed=seed)
            )
            probes.append(Probe(terminals, seed, metrics))
            if metrics.glitches > 0:
                ok = False
                break
        verdicts[terminals] = ok
        return ok

    # --- bracket the boundary ------------------------------------------
    pivot = min(max(_snap(hint, granularity), low), high)
    step = granularity
    if glitch_free(pivot):
        best, fail = pivot, None
        while best < high:
            probe_at = min(_snap(best + step, granularity), high)
            if probe_at <= best:
                break
            if glitch_free(probe_at):
                best = probe_at
            else:
                fail = probe_at
                break
            step *= 2
        if fail is None:
            return SearchResult(best, granularity, tuple(probes))
    else:
        fail, best = pivot, None
        while fail > low:
            probe_at = max(_snap(fail - step, granularity), low)
            if probe_at >= fail:
                break
            if glitch_free(probe_at):
                best = probe_at
                break
            fail = probe_at
            step *= 2
        if best is None:
            # Even the smallest load glitches: report zero capacity.
            return SearchResult(0, granularity, tuple(probes))

    # --- bisect between best (glitch-free) and fail ---------------------
    while fail - best > granularity:
        middle = _snap(best + (fail - best) // 2, granularity)
        if middle in (best, fail):
            break
        if glitch_free(middle):
            best = middle
        else:
            fail = middle
    return SearchResult(best, granularity, tuple(probes))


def _snap(value: int, granularity: int) -> int:
    return (value // granularity) * granularity
