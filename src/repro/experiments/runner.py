"""The parallel experiment engine: executors, caching, and grids.

The paper's methodology is thousands of *independent* simulation runs
(every point of Figs. 9-19 and Tables 2-3 is a max-terminal search of
many runs; the original authors burned up to 10 hours per 64-disk
configuration).  Every config type executes through the unified
:func:`repro.runnable.run` registry, and each registered run is pure
and seed-deterministic, so this module fans runs out across processes
without changing any result:

* :class:`RunRequest` / :class:`RunOutcome` — one simulation in, one
  set of metrics (plus wall time) out;
* :class:`SerialExecutor` / :class:`ProcessExecutor` — the
  :class:`Executor` protocol, in-process or on a
  ``concurrent.futures.ProcessPoolExecutor``.  Worker processes are
  reused across runs, so the process-wide frame-sequence memoisation in
  ``repro.media.library`` (keyed by media parameters) amortises video
  generation across every run a worker executes;
* :class:`Runner` — an executor plus an optional on-disk
  :class:`~repro.experiments.results.RunCache` and a per-run progress
  callback;
* :func:`run_grid` / :func:`search_grid` — drivers declare their grid
  of independent cells (scheduler x stripe size, memory sweep points,
  scaleup configs) and submit it here instead of looping.

Determinism contract: outcomes are returned in request order, probes
are planned identically regardless of job count, and every simulation
is a pure function of its config — so tables are bit-identical for any
executor, job count, or submission order.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import threading
import typing
from concurrent.futures.process import BrokenProcessPool

from repro.core.config import SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.experiments.results import RunCache
from repro.runnable import RunnableConfig, run

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.search import SearchResult


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """One simulation to execute: a full config plus a display tag.

    ``max_wall_s`` is a per-run watchdog enforced by
    :class:`ProcessExecutor`: a worker that has not returned within the
    budget is presumed hung, its pool is recycled, and the run is
    retried once before being reported as an error outcome.  ``None``
    disables the watchdog (the default).
    """

    config: RunnableConfig
    tag: str = ""
    max_wall_s: float | None = None


@dataclasses.dataclass(frozen=True)
class RunOutcome:
    """One finished simulation: its metrics and how long it took.

    A run that crashed its worker or exceeded its watchdog (after one
    retry) carries ``metrics=None`` and a diagnostic in ``error``
    instead of aborting the whole batch; grid drivers surface these via
    :func:`run_grid`, which raises after the batch completes.
    """

    tag: str
    config: RunnableConfig
    metrics: RunMetrics | None
    wall_time_s: float
    cached: bool = False
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def execute_request(request: RunRequest) -> RunOutcome:
    """Run one request in this process (also the pool worker body).

    Dispatch is the :func:`repro.runnable.run` registry: any config
    type registered via :func:`repro.api.register_runnable` executes
    here — in-process or in a pool worker — without this module naming
    it.  (Workers learn of a type by unpickling its config, which
    imports its defining module, which registers it.)
    """
    metrics = run(request.config)
    return RunOutcome(
        tag=request.tag,
        config=request.config,
        metrics=metrics,
        wall_time_s=getattr(metrics, "wall_time_s", 0.0),
    )


def _error_outcome(request: RunRequest, exc: BaseException) -> RunOutcome:
    return RunOutcome(
        tag=request.tag,
        config=request.config,
        metrics=None,
        wall_time_s=0.0,
        error=f"{type(exc).__name__}: {exc}",
    )


def _execute_with_retry(request: RunRequest) -> RunOutcome:
    """In-process execution with one retry, never raising."""
    try:
        return execute_request(request)
    except Exception:
        try:
            return execute_request(request)
        except Exception as exc:
            return _error_outcome(request, exc)


class Executor(typing.Protocol):
    """Anything that can execute a batch of independent runs."""

    jobs: int

    def run_batch(
        self, requests: typing.Sequence[RunRequest]
    ) -> list[RunOutcome]:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class SerialExecutor:
    """Runs every request in the calling process, in order.

    A run that raises is retried once and then reported as an error
    outcome, matching :class:`ProcessExecutor`'s crash handling.  The
    ``max_wall_s`` watchdog needs process isolation and is therefore
    enforced only by :class:`ProcessExecutor`.
    """

    jobs = 1

    def run_batch(self, requests: typing.Sequence[RunRequest]) -> list[RunOutcome]:
        return [_execute_with_retry(request) for request in requests]

    def close(self) -> None:
        pass


class ProcessExecutor:
    """Fans batches out over a pool of worker processes.

    Workers receive picklable :class:`SpiffiConfig`s and return
    picklable :class:`RunMetrics`.  The pool is created lazily and
    reused for every batch, so each worker's frame-sequence cache keeps
    paying off across runs.  ``run_batch`` is thread-safe: concurrent
    searches may share one pool.

    Failure containment (one run can never sink the sweep):

    * a worker that raises gets one in-process retry; a second failure
      becomes an error outcome;
    * a broken pool (worker killed mid-run) is rebuilt, pending runs
      are resubmitted, and the victim run is retried in-process;
    * a run exceeding its ``max_wall_s`` watchdog has its pool recycled
      (``shutdown(wait=False)``; a truly hung worker process is
      orphaned rather than joined) and is resubmitted once with the
      same budget before becoming an error outcome.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.jobs
                )
            return self._pool

    def _recycle_pool(self) -> None:
        """Abandon the current pool (hung or broken) and start fresh."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def run_batch(self, requests: typing.Sequence[RunRequest]) -> list[RunOutcome]:
        requests = list(requests)
        pool = self._ensure_pool()
        futures = [pool.submit(execute_request, request) for request in requests]
        return [
            self._collect(futures, requests, index)
            for index in range(len(requests))
        ]

    def _collect(
        self,
        futures: list[concurrent.futures.Future],
        requests: list[RunRequest],
        index: int,
    ) -> RunOutcome:
        request = requests[index]
        try:
            return futures[index].result(timeout=request.max_wall_s)
        except concurrent.futures.TimeoutError:
            # Watchdog expiry: the worker is presumed hung.  Recycle the
            # pool, resubmit everything still pending, and give this run
            # one more attempt under the same budget.
            self._recycle_pool()
            self._resubmit_pending(futures, requests, index)
            try:
                retry = self._ensure_pool().submit(execute_request, request)
                return retry.result(timeout=request.max_wall_s)
            except concurrent.futures.TimeoutError:
                self._recycle_pool()
                self._resubmit_pending(futures, requests, index)
                return _error_outcome(
                    request,
                    TimeoutError(
                        f"run exceeded max_wall_s={request.max_wall_s}s twice"
                    ),
                )
            except Exception as exc:
                return _error_outcome(request, exc)
        except BrokenProcessPool:
            # A worker died (OOM-kill, segfault): the pool is unusable.
            self._recycle_pool()
            self._resubmit_pending(futures, requests, index)
            return _execute_with_retry(request)
        except Exception:
            # The run itself raised in the worker: one in-process retry,
            # then an error outcome.
            return _execute_with_retry(request)

    def _resubmit_pending(
        self,
        futures: list[concurrent.futures.Future],
        requests: list[RunRequest],
        index: int,
    ) -> None:
        """Requeue later requests whose futures died with the old pool."""
        pool = self._ensure_pool()
        for later in range(index + 1, len(requests)):
            future = futures[later]
            if future.done() and future.exception() is None:
                continue
            future.cancel()
            futures[later] = pool.submit(execute_request, requests[later])

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Runner:
    """An executor with an optional result cache and progress reporting.

    ``run_batch`` checks each request against the cache, executes only
    the misses, stores fresh outcomes, and returns everything in
    request order; *progress* (if set) is called once per outcome.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        cache: RunCache | None = None,
        progress: typing.Callable[[RunOutcome], None] | None = None,
    ) -> None:
        self.executor = executor or SerialExecutor()
        self.cache = cache
        self.progress = progress
        self._cache_lock = threading.Lock()

    @property
    def jobs(self) -> int:
        return getattr(self.executor, "jobs", 1)

    def run_batch(
        self, requests: typing.Sequence[RunRequest]
    ) -> list[RunOutcome]:
        requests = list(requests)
        outcomes: dict[int, RunOutcome] = {}
        fresh: list[tuple[int, RunRequest]] = []
        if self.cache is None:
            fresh = list(enumerate(requests))
        else:
            for index, request in enumerate(requests):
                with self._cache_lock:
                    metrics = self.cache.load(request.config)
                if metrics is None:
                    fresh.append((index, request))
                else:
                    outcomes[index] = RunOutcome(
                        tag=request.tag,
                        config=request.config,
                        metrics=metrics,
                        wall_time_s=getattr(metrics, "wall_time_s", 0.0),
                        cached=True,
                    )
        if fresh:
            executed = self.executor.run_batch([request for _, request in fresh])
            for (index, request), outcome in zip(fresh, executed):
                # Error outcomes are never cached: the next invocation
                # should retry the run, not replay the failure.
                if self.cache is not None and outcome.metrics is not None:
                    with self._cache_lock:
                        self.cache.store(request.config, outcome.metrics)
                outcomes[index] = outcome
        ordered = [outcomes[index] for index in range(len(requests))]
        if self.progress is not None:
            for outcome in ordered:
                self.progress(outcome)
        return ordered

    def run(self, request: RunRequest) -> RunOutcome:
        return self.run_batch([request])[0]

    def map_cells(
        self, fn: typing.Callable, cells: typing.Sequence
    ) -> list:
        """Apply *fn* to each independent cell, results in cell order.

        With a parallel executor the cells are driven concurrently by
        threads (each cell's simulations still execute in the shared
        process pool); with a serial executor this is a plain loop.
        Cells must be independent — results never depend on the order
        cells happen to finish in.
        """
        cells = list(cells)
        if self.jobs <= 1 or len(cells) <= 1:
            return [fn(cell) for cell in cells]
        workers = min(len(cells), self.jobs)
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, cell) for cell in cells]
            return [future.result() for future in futures]

    def close(self) -> None:
        self.executor.close()


# ---------------------------------------------------------------------------
# The ambient runner used by drivers unless one is passed explicitly
# ---------------------------------------------------------------------------

_DEFAULT_RUNNER: Runner | None = None
_FALLBACK_RUNNER: Runner | None = None


def default_runner() -> Runner:
    """The installed runner, or an uncached serial one."""
    global _FALLBACK_RUNNER
    if _DEFAULT_RUNNER is not None:
        return _DEFAULT_RUNNER
    if _FALLBACK_RUNNER is None:
        _FALLBACK_RUNNER = Runner(SerialExecutor())
    return _FALLBACK_RUNNER


def set_default_runner(runner: Runner | None) -> None:
    """Install (or with None, clear) the process-wide default runner."""
    global _DEFAULT_RUNNER
    _DEFAULT_RUNNER = runner


@contextlib.contextmanager
def using_runner(runner: Runner):
    """Temporarily install *runner* as the default."""
    previous = _DEFAULT_RUNNER
    set_default_runner(runner)
    try:
        yield runner
    finally:
        set_default_runner(previous)


# ---------------------------------------------------------------------------
# Grids: how drivers declare their independent cells
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SearchCell:
    """One independent max-terminals search in a driver's grid."""

    tag: str
    config: SpiffiConfig
    hint: int
    granularity: int = 10
    replications: int = 1


def run_grid(
    cells: typing.Sequence[tuple[str, SpiffiConfig]],
    runner: Runner | None = None,
    max_wall_s: float | None = None,
) -> list[RunMetrics]:
    """Execute one simulation per (tag, config) cell, in cell order.

    Error outcomes (crashed or hung runs that survived their retries)
    are collected and raised *after* the whole batch completes, so one
    bad cell never discards its siblings' finished work.
    """
    runner = runner or default_runner()
    outcomes = runner.run_batch(
        [RunRequest(config, tag, max_wall_s=max_wall_s) for tag, config in cells]
    )
    errors = [outcome for outcome in outcomes if outcome.failed]
    if errors:
        detail = "; ".join(
            f"{outcome.tag or 'run'}: {outcome.error}" for outcome in errors[:5]
        )
        raise RuntimeError(
            f"{len(errors)} of {len(outcomes)} grid runs failed: {detail}"
        )
    return [outcome.metrics for outcome in outcomes]


def search_grid(
    cells: typing.Sequence[SearchCell],
    runner: Runner | None = None,
) -> list["SearchResult"]:
    """Run one max-terminals search per cell, results in cell order."""
    from repro.experiments.search import find_max_terminals

    runner = runner or default_runner()

    def one(cell: SearchCell) -> "SearchResult":
        return find_max_terminals(
            cell.config,
            hint=cell.hint,
            granularity=cell.granularity,
            replications=cell.replications,
            runner=runner,
            tag=cell.tag,
        )

    return runner.map_cells(one, cells)
