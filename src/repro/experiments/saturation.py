"""Saturation: max sustainable arrival rate per admission policy.

The open-system counterpart of the capacity searches: instead of the
largest *fixed population* that never glitches, each cell reports the
largest *session arrival rate* (arrivals/minute) the server sustains
inside its SLOs — zero glitches, bounded p99 startup latency, and a
bounded rejection (balk + renege) rate.

The sweep crosses arrival processes with admission policies to expose
the admission-control trade-off the closed model cannot show: with the
door open (``none``) nothing is ever rejected, so the binding SLO is
glitches/startup once the disks saturate; with bandwidth admission the
streams that *are* admitted stay clean, so the binding SLO becomes the
rejection rate.  A small array with little server memory and a flat
popularity skew keeps the disks the bottleneck, so the wall sits inside
the searched range at every bench scale.

Each cell is one deterministic :func:`repro.workload.find_max_rate`
search; probes fan out through the ambient runner batch by batch, so
results are bit-identical at any ``--jobs`` and cache-hit on re-runs.
"""

from __future__ import annotations

from repro.core.config import MB, SpiffiConfig
from repro.experiments.presets import bench_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import default_runner
from repro.server.admission import AdmissionSpec
from repro.workload import ArrivalSpec, SloPolicy, find_max_rate

#: (row label, admission spec) per policy swept.
POLICIES = (
    ("none", AdmissionSpec()),
    ("bandwidth h=0.7", AdmissionSpec("bandwidth", headroom=0.7)),
)

#: Arrival processes swept (each cell fixes everything but the rate).
PROCESSES = ("poisson", "diurnal")

#: Search coarseness (arrivals/minute) per bench scale.
GRANULARITY = {"quick": 60, "default": 30, "full": 12}

SLO = SloPolicy(max_p99_startup_s=10.0, max_rejection_rate=0.05, max_glitches=0)


def saturation_config() -> SpiffiConfig:
    """The small, disk-bound array every saturation probe runs on."""
    scale = bench_scale()
    return SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=1,  # ignored: the open workload spawns sessions
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=64 * MB,
        zipf_skew=0.2,
        start_spread_s=scale.start_spread_s,
        warmup_grace_s=scale.warmup_grace_s,
        measure_s=scale.measure_s,
    )


def workload_for(process: str):
    """rate (sessions/s) -> the ArrivalSpec probed at that rate."""

    def make(rate_per_s: float) -> ArrivalSpec:
        return ArrivalSpec(
            process=process,
            rate_per_s=rate_per_s,
            mean_view_duration_s=30.0,
            queue_limit=16,
            mean_patience_s=10.0,
            diurnal_period_s=120.0,
            diurnal_amplitude=0.5,
            startup_slo_s=SLO.max_p99_startup_s,
        )

    return make


def saturation() -> ExperimentResult:
    """Max sustainable arrival rate: arrival process x admission policy."""
    scale = bench_scale()
    granularity = GRANULARITY[scale.name]
    base = saturation_config()
    runner = default_runner()

    rows = []
    total_runs = 0
    for process in PROCESSES:
        for label, admission in POLICIES:
            result = find_max_rate(
                base.replace(admission=admission),
                workload_for(process),
                slo=SLO,
                hint=240,
                granularity=granularity,
                low=granularity,
                high=960,
                replications=scale.replications,
                runner=runner,
                tag=f"saturation {process} {label}",
            )
            total_runs += result.runs
            at = result.metrics_at_max()
            rows.append(
                (
                    process,
                    label,
                    result.max_rate_per_min,
                    f"{result.max_rate_per_s:.2f}",
                    at.admitted_sessions if at else 0,
                    f"{at.rejection_rate:.1%}" if at else "-",
                    f"{at.startup_p99_s:.2f}" if at else "-",
                    at.glitches if at else 0,
                    f"{at.admission_queue_len_mean:.2f}" if at else "-",
                    f"{at.events_per_second / 1e3:.0f}k" if at else "-",
                    f"{at.network_mean_bytes_per_s / MB:.1f}" if at else "-",
                    result.runs,
                )
            )
    return ExperimentResult(
        name="saturation",
        title="Saturation: max sustainable arrival rate per admission policy",
        headers=(
            "process",
            "admission",
            "max rate/min",
            "rate/s",
            "admitted",
            "rejected",
            "p99 startup",
            "glitches",
            "queue mean",
            "ev/s",
            "net MB/s",
            "runs",
        ),
        rows=tuple(rows),
        notes=(
            "(2x2 disks, 64MB server memory, zipf skew 0.2, 30s mean "
            "view time, queue limit 16, 10s mean patience; sustainable = "
            f"zero glitches, p99 startup <= {SLO.max_p99_startup_s:g}s, "
            f"rejections <= {SLO.max_rejection_rate:.0%}; searched in "
            f"{granularity}/min steps up to 960/min; detail columns "
            "describe a sustainable run at the reported maximum (ev/s = "
            "simulator events per wall second, net MB/s = mean delivered "
            "bandwidth over the window); "
            f"{total_runs} probe runs, measure window "
            f"{scale.measure_s:g}s)"
        ),
    )
