"""Drivers regenerating the paper's Tables 2 and 3.

Like the figure drivers, each table declares its grid of independent
search cells (configuration x scale factor) and submits the whole grid
through the experiment runner; hints are static per cell so results
never depend on execution order.
"""

from __future__ import annotations

from repro.bufferpool.registry import ReplacementSpec
from repro.core.config import MB, SpiffiConfig
from repro.experiments.presets import (
    HINTS,
    bench_scale,
    elevator_bundle,
    paper_config,
    realtime_bundle,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import SearchCell, search_grid

#: The four base configurations of Table 2 (16 disks each).  Memory and
#: videos scale with the disk count; CPUs stay at 4.
TABLE2_CONFIGS = (
    ("Elevator / 2MB term / 128MB", dict(
        terminal_memory_bytes=2 * MB,
        server_memory_bytes=128 * MB,
        replacement_policy=ReplacementSpec("love_prefetch"),
        **elevator_bundle(),
    )),
    ("Elevator / 2.5MB term / 128MB", dict(
        terminal_memory_bytes=int(2.5 * MB),
        server_memory_bytes=128 * MB,
        replacement_policy=ReplacementSpec("love_prefetch"),
        **elevator_bundle(),
    )),
    ("Elevator / 2MB term / 512MB", dict(
        terminal_memory_bytes=2 * MB,
        server_memory_bytes=512 * MB,
        replacement_policy=ReplacementSpec("love_prefetch"),
        **elevator_bundle(),
    )),
    ("Real-time / 2MB term / 512MB", dict(
        terminal_memory_bytes=2 * MB,
        server_memory_bytes=512 * MB,
        replacement_policy=ReplacementSpec("love_prefetch"),
        **realtime_bundle(prefetch_mode="delayed", max_advance_s=8.0),
    )),
)

SCALE_FACTORS = (1, 2, 4)


def _scale_config(base_overrides: dict, factor: int) -> SpiffiConfig:
    overrides = dict(base_overrides)
    overrides["server_memory_bytes"] = overrides["server_memory_bytes"] * factor
    overrides["disks_per_node"] = 4 * factor
    return paper_config(**overrides)


def _table_cell(tag: str, config: SpiffiConfig, hint: int) -> SearchCell:
    scale = bench_scale()
    return SearchCell(
        tag=tag,
        config=config,
        hint=hint,
        granularity=scale.granularity * (2 if config.disk_count > 16 else 1),
        replications=scale.replications,
    )


def table2_scaleup() -> ExperimentResult:
    """Max terminals at x1/x2/x4 scale and the resulting scaleup ratio.

    The paper's headline: elevator requires more terminal memory to
    scale, while real-time scheduling scales nearly linearly.
    """
    headers = (
        "configuration",
        "base disks", "base terms",
        "x2 disks", "x2 terms", "x2 ratio",
        "x4 disks", "x4 terms", "x4 ratio",
    )
    cells = []
    configs = {}
    for label, overrides in TABLE2_CONFIGS:
        for factor in SCALE_FACTORS:
            config = _scale_config(overrides, factor)
            configs[(label, factor)] = config
            cells.append(_table_cell(
                f"table2 {label} x{factor}",
                config,
                HINTS["elevator_512k_bigmem"] * factor,
            ))
    found = iter(search_grid(cells))
    capacities = {
        key: search.max_terminals
        for key, search in zip(configs, found)
    }
    rows = []
    for label, _ in TABLE2_CONFIGS:
        base_terms = max(capacities[(label, 1)], 1)
        row: list = [label]
        for factor in SCALE_FACTORS:
            config = configs[(label, factor)]
            terminals = capacities[(label, factor)]
            if factor == 1:
                row.extend([config.disk_count, terminals])
            else:
                ratio = terminals / (base_terms * factor)
                row.extend([config.disk_count, terminals, f"({ratio:.2f})"])
        rows.append(tuple(row))
    return ExperimentResult(
        name="table2",
        title="Table 2: scaleup (max glitch-free terminals; parenthesised "
        "value = scaleup ratio vs perfectly linear)",
        headers=headers,
        rows=tuple(rows),
        notes="(4 CPUs throughout; server memory and videos scale with disks)",
    )


#: 1995 street prices used by the paper's Table 3.
TABLE3_DISK_OPTIONS = (
    # (disks, capacity GB, $/disk)
    (16, 9.0, 4000),
    (32, 4.5, 2500),
    (64, 2.2, 1500),
)


def table3_disk_cost(measured_terminals: dict[int, int] | None = None) -> ExperimentResult:
    """Disk cost per supported terminal for three ways to hold 64 videos.

    Combines the 1995 disk prices with measured max terminals for
    16/32/64-disk servers (re-searched here unless supplied), showing
    that minimising cost per Mbyte does not minimise cost per terminal.
    """
    scale = bench_scale()
    if measured_terminals is None:
        cells = []
        for disks, _, _ in TABLE3_DISK_OPTIONS:
            factor = disks // 16
            overrides = dict(TABLE2_CONFIGS[3][1])
            overrides["server_memory_bytes"] *= factor
            overrides["disks_per_node"] = disks // 4
            # Table 3 holds the library at 64 videos regardless of disks.
            overrides["videos_per_disk"] = max(1, 64 // disks)
            cells.append(_table_cell(
                f"table3 {disks} disks",
                paper_config(**overrides),
                HINTS["elevator_512k_bigmem"] * factor,
            ))
        measured_terminals = {
            disks: search.max_terminals
            for (disks, _, _), search in zip(TABLE3_DISK_OPTIONS, search_grid(cells))
        }
    rows = []
    for disks, capacity_gb, dollars in TABLE3_DISK_OPTIONS:
        terminals = measured_terminals[disks]
        total = disks * dollars
        per_mbyte = dollars / (capacity_gb * 1024)
        per_terminal = total / terminals if terminals else float("inf")
        rows.append(
            (
                disks,
                f"{capacity_gb:g} GB",
                f"${dollars:,}",
                f"${per_mbyte:.2f}",
                f"${total:,}",
                terminals,
                f"${per_terminal:,.0f}",
            )
        )
    return ExperimentResult(
        name="table3",
        title="Table 3: disk cost per terminal (64 videos)",
        headers=(
            "disks", "capacity", "cost/disk", "cost/Mbyte",
            "total cost", "terminals", "cost/terminal",
        ),
        rows=tuple(rows),
        notes="(1995 prices; real-time scheduling configuration of Table 2; "
        f"granularity {scale.granularity})",
    )
