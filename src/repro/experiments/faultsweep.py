"""Capacity under injected hardware faults (fault-sweep experiment).

Not a figure from the paper — SPIFFI's evaluation assumed fault-free
hardware — but the natural question its capacity methodology raises:
how many of a loaded server's glitches are the *scheduler's* fault once
disks start misbehaving?  The sweep runs a grid of (disk fault rate x
terminal load) cells on the paper's hardware and reports glitches split
by attribution, alongside the degraded-mode activity (retries,
abandoned and failed reads) that kept streams alive.

Like every driver in this package the grid cells are independent and
statically declared, so the parallel runner can fan the whole sweep out
at once and results are bit-identical at any ``--jobs``.
"""

from __future__ import annotations

from repro.experiments.presets import HINTS, bench_scale, elevator_bundle, paper_config
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_grid
from repro.faults.spec import FaultSpec

#: Disk fault rates swept, in faults per disk-hour.  Zero anchors the
#: sweep at the fault-free baseline (bit-identical to the non-fault
#: build); the top rate is hostile enough to dominate glitch counts.
FAULT_RATES = (0.0, 6.0, 30.0, 120.0)


def _fault_spec(rate: float) -> FaultSpec:
    if rate == 0.0:
        return FaultSpec()
    return FaultSpec(
        disk_fault_rate_per_hour=rate,
        slow_weight=3.0,
        outage_weight=1.0,
        fail_weight=0.0,
        request_timeout_s=1.0,
    )


def faultsweep() -> ExperimentResult:
    """Glitch attribution across disk fault rates and terminal loads."""
    scale = bench_scale()
    base = paper_config(**elevator_bundle())
    hint = HINTS["elevator_512k_bigmem"]
    loads = (hint - 60, hint - 30, hint)
    grid = []
    cells = []
    for rate in FAULT_RATES:
        for terminals in loads:
            config = base.replace(terminals=terminals, faults=_fault_spec(rate))
            cells.append((rate, terminals))
            grid.append((f"faults r={rate:g}/h t={terminals}", config))
    rows = []
    for (rate, terminals), metrics in zip(cells, run_grid(grid)):
        rows.append(
            (
                f"{rate:g}",
                terminals,
                metrics.glitches,
                metrics.fault_glitches,
                metrics.scheduling_glitches,
                metrics.fault_events_injected,
                metrics.fault_retries,
                metrics.fault_abandoned_reads,
                metrics.blocks_delivered,
            )
        )
    return ExperimentResult(
        name="faultsweep",
        title="Fault sweep: glitch attribution vs disk fault rate",
        headers=(
            "faults/disk-h",
            "terminals",
            "glitches",
            "fault glitches",
            "sched glitches",
            "fault events",
            "retries",
            "abandoned",
            "blocks",
        ),
        rows=tuple(rows),
        notes=(
            "(elevator, 512KB stripes, 4GB server memory; slow-I/O and "
            "outage faults at 3:1 weight, 1s request timeout; measure "
            f"window {scale.measure_s:g}s)"
        ),
    )
