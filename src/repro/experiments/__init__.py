"""Experiment harness: max-terminal search, presets, figure and table
drivers, and report formatting."""

from repro.experiments.presets import (
    HINTS,
    BenchScale,
    bench_scale,
    elevator_bundle,
    paper_config,
    realtime_bundle,
)
from repro.experiments.report import format_table, publish
from repro.experiments.results import ExperimentResult
from repro.experiments.search import Probe, SearchResult, find_max_terminals

__all__ = [
    "BenchScale",
    "ExperimentResult",
    "HINTS",
    "Probe",
    "SearchResult",
    "bench_scale",
    "elevator_bundle",
    "find_max_terminals",
    "format_table",
    "paper_config",
    "publish",
    "realtime_bundle",
]
