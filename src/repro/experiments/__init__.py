"""Experiment harness: max-terminal search, presets, figure and table
drivers, the parallel run executor, and report formatting."""

from repro.experiments.catalog import (
    EXPERIMENTS,
    experiment_names,
    run_experiment,
)
from repro.experiments.presets import (
    HINTS,
    BenchScale,
    bench_scale,
    elevator_bundle,
    paper_config,
    realtime_bundle,
    set_bench_scale,
)
from repro.experiments.report import format_table, publish
from repro.experiments.results import (
    ExperimentResult,
    RunCache,
    config_digest,
)
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunOutcome,
    RunRequest,
    SearchCell,
    SerialExecutor,
    default_runner,
    run_grid,
    search_grid,
    set_default_runner,
    using_runner,
)
from repro.experiments.search import (
    Probe,
    SearchResult,
    find_max_terminals,
    plan_probes,
)

__all__ = [
    "BenchScale",
    "EXPERIMENTS",
    "ExperimentResult",
    "HINTS",
    "Probe",
    "ProcessExecutor",
    "RunCache",
    "RunOutcome",
    "RunRequest",
    "Runner",
    "SearchCell",
    "SearchResult",
    "SerialExecutor",
    "bench_scale",
    "config_digest",
    "default_runner",
    "elevator_bundle",
    "experiment_names",
    "find_max_terminals",
    "format_table",
    "paper_config",
    "plan_probes",
    "publish",
    "realtime_bundle",
    "run_experiment",
    "run_grid",
    "search_grid",
    "set_bench_scale",
    "set_default_runner",
    "using_runner",
]
