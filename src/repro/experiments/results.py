"""Structured results of experiment drivers."""

from __future__ import annotations

import dataclasses
import typing

from repro.experiments.report import format_table


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table or figure, as paper-style text rows."""

    name: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""

    def table(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n\n" + self.notes
        return text

    def column(self, header: str) -> list:
        """All values of one column, by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def cell(self, row: int, header: str) -> typing.Any:
        return self.rows[row][self.headers.index(header)]
