"""Structured results of experiment drivers, their JSON serialization,
and the content-addressed on-disk cache of individual simulation runs.

Serialization has two layers:

* :class:`ExperimentResult` round-trips through JSON so published
  tables are machine-readable, diffable artifacts;
* :class:`RunCache` memoises single ``run_simulation`` outcomes on
  disk, keyed by a content hash of the full :class:`SpiffiConfig`.
  Because every simulation is pure and seed-deterministic, a cache hit
  is indistinguishable from a re-run — re-invoking an experiment
  replays its (deterministic) probe plan against the cache and
  completes without simulating anything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import typing

from repro.core.config import SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.experiments.report import format_table, results_dir
from repro.runnable import runnable_cache_dict

#: Bump when the meaning of cached entries changes (config or metrics
#: schema, simulator semantics) to invalidate every existing entry.
CACHE_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table or figure, as paper-style text rows."""

    name: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""

    def table(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n\n" + self.notes
        return text

    def column(self, header: str) -> list:
        """All values of one column, by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def cell(self, row: int, header: str) -> typing.Any:
        return self.rows[row][self.headers.index(header)]

    # --- serialization --------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        """A stable JSON document holding every field."""
        return json.dumps(
            {
                "name": self.name,
                "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "notes": self.notes,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        data = json.loads(text)
        return cls(
            name=data["name"],
            title=data["title"],
            headers=tuple(data["headers"]),
            rows=tuple(tuple(row) for row in data["rows"]),
            notes=data.get("notes", ""),
        )


# ---------------------------------------------------------------------------
# Config / metrics serialization primitives
# ---------------------------------------------------------------------------

def config_to_dict(config) -> dict:
    """The full configuration as plain JSON-serializable values.

    Delegates to the canonical form each config type declared when it
    registered with :func:`repro.runnable.register_runnable`: component
    specs that carry only a name serialize as the bare name string, and
    default (inert) subsystem specs are omitted entirely — so a config
    expressible before a subsystem existed serializes, and therefore
    hashes, exactly as it always did.  Cluster configs namespace their
    form so cluster and single-system digests can never collide.
    """
    return runnable_cache_dict(config)


def config_digest(config: SpiffiConfig) -> str:
    """Content hash identifying one exact simulation input.

    Every field of :class:`SpiffiConfig` (including nested parameter
    dataclasses) participates, so any change to the simulated scenario
    changes the digest.  The cache schema version participates too, so
    bumping it invalidates all prior entries at once.
    """
    payload = json.dumps(
        {"version": CACHE_SCHEMA_VERSION, "config": config_to_dict(config)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def metrics_to_dict(metrics: RunMetrics) -> dict:
    return dataclasses.asdict(metrics)


def metrics_from_dict(data: dict) -> RunMetrics:
    return RunMetrics(**data)


# ---------------------------------------------------------------------------
# The on-disk run cache
# ---------------------------------------------------------------------------

def default_cache_root() -> str:
    """Where run outcomes are cached: ``benchmarks/results/.runcache``
    (override with the ``REPRO_RUN_CACHE`` environment variable)."""
    return os.environ.get(
        "REPRO_RUN_CACHE", os.path.join(results_dir(), ".runcache")
    )


class RunCache:
    """Content-hash-keyed store of completed simulation runs.

    One JSON file per run under *root*, named by the config digest.
    Writes are atomic (temp file + rename) so concurrent workers can
    share a cache directory safely; whoever wins the rename wins, and
    both wrote identical metrics anyway.
    """

    def __init__(self, root: str | None = None) -> None:
        self.root = root or default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def load(self, config: SpiffiConfig) -> RunMetrics | None:
        """The cached metrics for *config*, or None on a miss."""
        path = self._path(config_digest(config))
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            metrics = metrics_from_dict(data["metrics"])
        except (KeyError, TypeError):
            # Entry written by an incompatible schema: treat as a miss.
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def store(self, config: SpiffiConfig, metrics: RunMetrics) -> str:
        """Persist one finished run; returns the entry's path."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(config_digest(config))
        payload = {
            "version": CACHE_SCHEMA_VERSION,
            "description": config.describe(),
            "config": config_to_dict(config),
            "metrics": metrics_to_dict(metrics),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path
