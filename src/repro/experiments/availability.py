"""Capacity under permanent disk failure across replication schemes.

SPIFFI's evaluation assumed disks never die; this sweep asks what its
capacity methodology says when they do.  For each replication scheme
(unreplicated striping, mirrored striping, chained declustering) and
each number of simultaneously failed disks, a ladder of terminal loads
runs with the failures injected during warmup — so the entire
measurement window observes the degraded system — and the *sustained
capacity* is the largest load that stays **clean**: zero glitches *and*
zero lost reads.  A read "served" by error concealment after every
copy is gone (a failed or abandoned read) is data loss, not delivery,
so it disqualifies a load even when buffering hides the glitch.

The expected shape, after Hsiao & DeWitt: unreplicated striping loses
data at any load once a disk dies (capacity 0); mirroring survives but
concentrates the dead disk's reads plus rebuild traffic on the single
mirror partner, halving degraded capacity; chained declustering spreads
that load over the whole array and sustains markedly more.

Like every driver here the grid is statically declared, so the parallel
runner fans the whole sweep out at once and results are bit-identical
at any ``--jobs``.
"""

from __future__ import annotations

from repro.core.config import SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.experiments.presets import HINTS, bench_scale, elevator_bundle, paper_config
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_grid
from repro.faults.spec import FaultSpec
from repro.layout.registry import LayoutSpec
from repro.replication.spec import ReplicationSpec

#: (row label, layout name, replication factor) per scheme swept.
SCHEMES = (
    ("striped r=1", "striped", 1),
    ("mirrored r=2", "mirrored", 2),
    ("chained r=2", "chained", 2),
)

#: Numbers of simultaneously failed disks swept.  The failed disks are
#: chosen ``0, 2, 4, ...`` so no two are replica partners under either
#: mirrored striping (partner = d + D/2) or chained declustering
#: (partner = d ± 1) — the failures are survivable by design.
FAILURE_COUNTS = (0, 1, 2)


def _fault_spec(failed: int) -> FaultSpec:
    if failed == 0:
        return FaultSpec()
    return FaultSpec(
        fail_disk_ids=tuple(range(0, 2 * failed, 2)),
        fail_at_s=1.0,
        request_timeout_s=1.0,
    )


def _config(base: SpiffiConfig, layout: str, factor: int, failed: int, terminals: int):
    return base.replace(
        terminals=terminals,
        layout=LayoutSpec(layout),
        replication=ReplicationSpec(factor=factor),
        faults=_fault_spec(failed),
    )


def _lost(metrics: RunMetrics) -> int:
    return metrics.fault_failed_reads + metrics.fault_abandoned_reads


def _clean(metrics: RunMetrics) -> bool:
    return metrics.glitches == 0 and _lost(metrics) == 0


def availability() -> ExperimentResult:
    """Sustained clean capacity vs failed disks x replication scheme."""
    scale = bench_scale()
    base = paper_config(**elevator_bundle())
    hint = HINTS["elevator_512k_bigmem"]
    loads = tuple(hint * step // 4 for step in (1, 2, 3, 4))

    grid = []
    cells = []
    for label, layout, factor in SCHEMES:
        for failed in FAILURE_COUNTS:
            for terminals in loads:
                cells.append((label, layout, factor, failed, terminals))
                grid.append(
                    (
                        f"avail {label} f={failed} t={terminals}",
                        _config(base, layout, factor, failed, terminals),
                    )
                )

    by_cell = {
        cell: metrics for cell, metrics in zip(cells, run_grid(grid))
    }
    rows = []
    for label, layout, factor, failed in (
        (label, layout, factor, failed)
        for label, layout, factor in SCHEMES
        for failed in FAILURE_COUNTS
    ):
        ladder = [
            (terminals, by_cell[(label, layout, factor, failed, terminals)])
            for terminals in loads
        ]
        clean = [(terminals, m) for terminals, m in ladder if _clean(m)]
        if clean:
            capacity, at = clean[-1][0], clean[-1][1]
        else:
            # Nothing clean: report 0 and show why at the lightest load.
            capacity, at = 0, ladder[0][1]
        rows.append(
            (
                label,
                failed,
                capacity,
                at.glitches,
                _lost(at),
                at.failover_reads,
                at.rebuild_blocks,
                at.rebuilds_completed,
                at.blocks_delivered,
            )
        )
    return ExperimentResult(
        name="availability",
        title="Availability: sustained capacity vs failed disks",
        headers=(
            "scheme",
            "failed disks",
            "capacity",
            "glitches",
            "lost reads",
            "failover reads",
            "rebuilt blocks",
            "rebuilds done",
            "blocks",
        ),
        rows=tuple(rows),
        notes=(
            "(elevator, 512KB stripes, 4GB server memory; capacity = "
            f"largest of loads {loads} with zero glitches and zero lost "
            "reads; failures injected 1s into warmup, 1s request "
            "timeout; detail columns describe the run at the capacity "
            "load, or the lightest load when capacity is 0; measure "
            f"window {scale.measure_s:g}s)"
        ),
    )
