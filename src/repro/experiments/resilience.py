"""Resilience: cluster self-healing around scripted node outages.

Not a figure from the paper — SPIFFI's evaluation stopped at fault-free
single servers — but the question its cluster generalisation raises:
when a member node dies, how fast must the survivors re-replicate its
catalog before a *second* failure turns degraded service into lost
customers?  The grid crosses outage shape (none, one permanent outage,
a staggered double outage, outage + recovery) with the self-heal spec
(rebuild off, rebuild at two bandwidth caps, placement-aware spill) and
placement scheme (chained-declustered vs partitioned) on one fixed
arrival rate, and reports the session damage (lost, failed-over,
balked, spilled), the p99 startup latency while rebuild traffic
competes with serving, and the time to restored replication degree next
to the bandwidth-cap prediction ``moved bytes / cap``.

The headline comparisons the table exists to show:

* *rebuild vs not, double outage*: the staggered second failure kills
  every title whose only remaining copy it held — unless the rebuild
  finished re-replicating them inside the stagger window, in which case
  strictly fewer sessions are lost;
* *cap sweep*: time-to-restored-degree tracks ``moved bytes / cap``
  while the cap, not the copy path, is the bottleneck;
* *placement*: partitioned placement leaves the rebuild no surviving
  source, so the same spec that heals the chained cluster can only
  count its titles unrecoverable.

Like every driver in this package the cells are independent and
statically declared, so the parallel runner fans the whole grid out at
once and results are bit-identical at any ``--jobs``.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, PlacementSpec, RouterSpec, SelfHealSpec
from repro.core.config import MB, SpiffiConfig
from repro.experiments.presets import bench_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_grid
from repro.faults.spec import FaultSpec
from repro.server.admission import AdmissionSpec
from repro.workload import ArrivalSpec

#: Cluster-wide arrival rate (sessions/s): light enough that the
#: healthy cluster never queues, heavy enough that outage survivors do
#: — which is what gives the placement-aware spill something to dodge.
RATE_PER_S = 12.0

#: Rebuild bandwidth caps swept (moved read+write bytes per second).
#: Both sit below the serial copy path's own throughput, so the cap —
#: not the disks — is the binding constraint and restore time is
#: predictable from it.
CAPS = (2 * MB, 4 * MB)


def member_config() -> SpiffiConfig:
    """One cluster member: the saturation experiment's small disk-bound
    array with a short catalog, so a full node rebuild fits inside the
    bench measurement window at every scale."""
    scale = bench_scale()
    return SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=1,  # ignored: the cluster workload spawns sessions
        videos_per_disk=2,
        video_length_s=4.0 if scale.name == "quick" else 8.0,
        server_memory_bytes=64 * MB,
        # Skewed popularity + tight admission headroom: outage
        # survivors queue on their hottest primaries, so spill has an
        # imbalance to exploit.
        zipf_skew=0.9,
        admission=AdmissionSpec("bandwidth", headroom=0.5),
        start_spread_s=scale.start_spread_s,
        warmup_grace_s=scale.warmup_grace_s,
        measure_s=scale.measure_s,
    )


def workload() -> ArrivalSpec:
    return ArrivalSpec(
        process="poisson",
        rate_per_s=RATE_PER_S,
        mean_view_duration_s=30.0,
        queue_limit=4,
        mean_patience_s=10.0,
        startup_slo_s=10.0,
    )


def resilience() -> ExperimentResult:
    """Session damage and time-to-restored-degree across outage shapes,
    rebuild caps, and placement schemes."""
    scale = bench_scale()
    node = member_config()
    chained = PlacementSpec("chained-declustered", replicas=2)
    partitioned = PlacementSpec("partitioned")
    routing = RouterSpec("locality")
    # Outage timing scales with the window: the first failure lands a
    # fifth of the way into measurement, the staggered second failure a
    # quarter-window later, recovery (where scripted) after 0.3 windows.
    fail_at = node.warmup_s + 0.2 * scale.measure_s
    stagger = 0.25 * scale.measure_s
    single = FaultSpec(fail_node_ids=(1,), fail_nodes_at_s=fail_at)
    double = FaultSpec(
        fail_node_ids=(1, 2),
        fail_nodes_at_s=fail_at,
        fail_node_stagger_s=stagger,
    )
    recovering = FaultSpec(
        fail_node_ids=(1,),
        fail_nodes_at_s=fail_at,
        node_recover_after_s=0.3 * scale.measure_s,
    )

    def heal(cap: float, **extra) -> SelfHealSpec:
        return SelfHealSpec(
            rebuild=True, rebuild_bandwidth_bytes_per_s=cap, **extra
        )

    caps = CAPS[1:] if scale.name == "quick" else CAPS
    cells: list[tuple[str, str, PlacementSpec, ClusterConfig]] = []

    def cell(label, placement, faults, self_heal):
        config = ClusterConfig(
            node=node,
            nodes=3,
            placement=placement,
            routing=routing,
            workload=workload(),
            faults=faults,
            self_heal=self_heal,
        )
        cells.append((label, self_heal.label(), placement, config))

    cell("no outage", chained, FaultSpec(), SelfHealSpec())
    cell("1-node outage", chained, single, SelfHealSpec())
    for cap in caps:
        cell("1-node outage", chained, single, heal(cap))
    cell("double outage", chained, double, SelfHealSpec())
    cell("double outage", chained, double, heal(CAPS[-1]))
    cell("double outage", chained, double,
         heal(CAPS[-1], placement_aware_admission=True))
    cell("1-node outage", partitioned, single, heal(CAPS[-1]))
    cell("outage+recovery", chained, recovering,
         heal(CAPS[-1], rejoin_resync_fraction=0.05))

    grid = [
        (f"resilience {label} {placement.label()} {heal_label}", config)
        for label, heal_label, placement, config in cells
    ]
    rows = []
    for (label, heal_label, placement, config), metrics in zip(
        cells, run_grid(grid)
    ):
        cap = config.self_heal.rebuild_bandwidth_bytes_per_s
        predicted = (
            metrics.node_rebuild_bytes / cap
            if config.self_heal.rebuild and metrics.node_rebuild_bytes
            else 0.0
        )
        rows.append(
            (
                label,
                placement.label(),
                heal_label,
                metrics.lost_sessions,
                metrics.failed_over_sessions,
                metrics.balked_sessions,
                metrics.spilled_sessions,
                f"{metrics.startup_p99_s:.2f}",
                metrics.glitches,
                metrics.node_titles_rebuilt,
                metrics.node_titles_unrecoverable,
                (
                    f"{metrics.replication_restore_s:.1f}"
                    if metrics.replication_restore_s
                    else "-"
                ),
                f"{predicted:.1f}" if predicted else "-",
                metrics.rejoin_resyncs,
            )
        )
    return ExperimentResult(
        name="resilience",
        title="Resilience: self-healing vs outage shape, cap, and placement",
        headers=(
            "scenario",
            "placement",
            "self-heal",
            "lost",
            "failed over",
            "balked",
            "spilled",
            "p99 startup",
            "glitches",
            "rebuilt",
            "unrecov",
            "restore s",
            "bytes/cap s",
            "rejoins",
        ),
        rows=tuple(rows),
        notes=(
            "(3-node cluster, locality routing, poisson arrivals "
            f"{RATE_PER_S:g}/s, 30s mean view, queue limit 4; each member "
            "the 2x2-disk saturation array with a "
            f"{member_config().video_length_s:g}s-video catalog, zipf "
            "skew 0.9, bandwidth admission h=0.5; first outage at "
            f"{fail_at:g}s, double-outage stagger {stagger:g}s, recovery "
            "after 0.3 windows; 'restore s' is seconds from first outage "
            "to the last planned re-replica going live, 'bytes/cap s' the "
            "pacer-predicted floor moved-bytes/cap; partitioned placement "
            "leaves rebuild no surviving source, so its titles count "
            "unrecoverable; measure window "
            f"{scale.measure_s:g}s)"
        ),
    )
