"""Drivers regenerating every figure in the paper's evaluation (§7, §8).

Each ``figNN_*`` function runs the simulations behind one figure and
returns an :class:`ExperimentResult` holding the same series the paper
plots.  Absolute numbers depend on the (scaled) measurement windows —
see EXPERIMENTS.md — but the shapes are the reproduction target.
"""

from __future__ import annotations

from repro.core.config import GB, MB, SpiffiConfig
from repro.core.system import run_simulation
from repro.experiments.presets import (
    HINTS,
    bench_scale,
    elevator_bundle,
    paper_config,
    realtime_bundle,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.search import find_max_terminals
from repro.media.access import UniformAccess, ZipfianAccess
from repro.sched.registry import SchedulerSpec

KB = 1024


def _search(config: SpiffiConfig, hint: int) -> int:
    scale = bench_scale()
    return find_max_terminals(
        config,
        hint=hint,
        granularity=scale.granularity,
        replications=scale.replications,
    ).max_terminals


# ---------------------------------------------------------------------------
# Figure 8 — the Zipfian access distribution (analytic)
# ---------------------------------------------------------------------------

def fig08_zipf(video_count: int = 64) -> ExperimentResult:
    """Access probability by video rank for the paper's z values."""
    models = [
        ("uniform", UniformAccess(video_count)),
        ("z=0.5", ZipfianAccess(video_count, 0.5)),
        ("z=1.0", ZipfianAccess(video_count, 1.0)),
        ("z=1.5", ZipfianAccess(video_count, 1.5)),
    ]
    ranks = [1, 2, 4, 8, 16, 32, 64]
    ranks = [rank for rank in ranks if rank <= video_count]
    headers = ("rank",) + tuple(label for label, _ in models)
    rows = []
    for rank in ranks:
        row = [rank]
        for _, model in models:
            row.append(round(model.weights()[rank - 1], 4))
        rows.append(tuple(row))
    return ExperimentResult(
        name="fig08",
        title=f"Figure 8: Zipfian access frequencies over {video_count} videos",
        headers=headers,
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Figure 9 — glitches vs terminals (the search procedure, illustrated)
# ---------------------------------------------------------------------------

def fig09_glitch_curve() -> ExperimentResult:
    """Glitch count as the number of terminals increases."""
    scale = bench_scale()
    base = paper_config(**elevator_bundle())
    hint = HINTS["elevator_512k_bigmem"]
    counts = [hint - 60, hint - 30, hint - 10, hint, hint + 10, hint + 30, hint + 60]
    rows = []
    for terminals in counts:
        metrics = run_simulation(base.replace(terminals=terminals))
        rows.append((terminals, metrics.glitches, metrics.glitching_terminals))
    return ExperimentResult(
        name="fig09",
        title="Figure 9: finding the maximum number of terminals without glitches",
        headers=("terminals", "glitches", "glitching terminals"),
        rows=tuple(rows),
        notes=f"(elevator, 512KB stripes, 4GB server memory; "
        f"measure window {scale.measure_s:g}s)",
    )


# ---------------------------------------------------------------------------
# Figure 10 — disk scheduling algorithms x stripe sizes
# ---------------------------------------------------------------------------

#: Rough expected capacity by stripe size, used to seed searches.
_STRIPE_HINT_FACTOR = {
    128 * KB: 0.78,
    256 * KB: 0.90,
    512 * KB: 1.0,
    1024 * KB: 0.70,
}


def fig10_sched_stripe() -> ExperimentResult:
    """Max glitch-free terminals per scheduler per stripe size."""
    scale = bench_scale()
    schedulers = [
        ("elevator", elevator_bundle()),
        ("GSS (1 group)", dict(
            scheduler=SchedulerSpec("gss", gss_groups=1),
            prefetch=elevator_bundle()["prefetch"],
        )),
        ("round-robin", dict(
            scheduler=SchedulerSpec("round_robin"),
            prefetch=elevator_bundle()["prefetch"],
        )),
        ("real-time 2/4s", realtime_bundle(priority_classes=2)),
        ("real-time 3/4s", realtime_bundle(priority_classes=3)),
    ]
    base_hint = HINTS["elevator_512k_bigmem"]
    headers = ("stripe KB",) + tuple(label for label, _ in schedulers)
    rows = []
    for stripe in scale.stripe_points:
        row = [stripe // KB]
        for label, bundle in schedulers:
            hint = int(base_hint * _STRIPE_HINT_FACTOR.get(stripe, 0.8))
            if label == "round-robin":
                hint = int(hint * 0.7)
            config = paper_config(stripe_bytes=stripe, **bundle)
            row.append(_search(config, hint))
        rows.append(tuple(row))
    return ExperimentResult(
        name="fig10",
        title="Figure 10: disk scheduling algorithms and stripe sizes "
        "(max glitch-free terminals)",
        headers=headers,
        rows=tuple(rows),
        notes="(4GB server memory, global LRU, 2MB terminals)",
    )


# ---------------------------------------------------------------------------
# Figures 11/12 — server memory requirements
# ---------------------------------------------------------------------------

def _memory_sweep(variants, hint_key: str = "lowmem") -> ExperimentResult | tuple:
    scale = bench_scale()
    headers = ("server MB",) + tuple(label for label, _ in variants)
    rows = []
    hints = {label: HINTS["elevator_512k_bigmem"] for label, _ in variants}
    for memory in scale.memory_points:
        row = [memory // MB]
        for label, overrides in variants:
            config = paper_config(server_memory_bytes=memory, **overrides)
            found = _search(config, hints[label])
            # The capacity at the previous (smaller) memory point is a
            # good starting hint for the next.
            hints[label] = max(found, scale.granularity)
            row.append(found)
        rows.append(tuple(row))
    return headers, tuple(rows)


def fig11_memory_elevator() -> ExperimentResult:
    """Global LRU vs love prefetch under elevator scheduling."""
    bundle = elevator_bundle()
    variants = [
        ("global LRU", dict(replacement_policy="global_lru", **bundle)),
        ("love prefetch", dict(replacement_policy="love_prefetch", **bundle)),
    ]
    headers, rows = _memory_sweep(variants)
    return ExperimentResult(
        name="fig11",
        title="Figure 11: reducing server memory requirements "
        "(elevator disk scheduling; max glitch-free terminals)",
        headers=headers,
        rows=rows,
        notes="(512KB stripes, 2MB terminals)",
    )


def fig12_memory_realtime() -> ExperimentResult:
    """Replacement/prefetching algorithms under real-time scheduling."""
    variants = [
        ("global LRU", dict(
            replacement_policy="global_lru", **realtime_bundle())),
        ("love prefetch", dict(
            replacement_policy="love_prefetch", **realtime_bundle())),
        ("love + delayed 8s", dict(
            replacement_policy="love_prefetch",
            **realtime_bundle(prefetch_mode="delayed", max_advance_s=8.0))),
        ("love + delayed 4s", dict(
            replacement_policy="love_prefetch",
            **realtime_bundle(prefetch_mode="delayed", max_advance_s=4.0))),
    ]
    headers, rows = _memory_sweep(variants)
    return ExperimentResult(
        name="fig12",
        title="Figure 12: reducing server memory requirements "
        "(real-time disk scheduling; max glitch-free terminals)",
        headers=headers,
        rows=rows,
        notes="(512KB stripes, 3 priority classes / 4s spacing, "
        "aggressive real-time prefetching)",
    )


# ---------------------------------------------------------------------------
# Figures 13/14 — striped vs non-striped layout
# ---------------------------------------------------------------------------

def fig13_striping() -> ExperimentResult:
    """Striped vs non-striped layouts under Zipf and uniform access."""
    scale = bench_scale()
    bundle = dict(replacement_policy="love_prefetch", **elevator_bundle())
    variants = [
        ("striped/zipf", dict(layout="striped", access_model="zipf", **bundle),
         HINTS["striped"]),
        ("striped/uniform", dict(layout="striped", access_model="uniform", **bundle),
         HINTS["striped"]),
        ("non-striped/zipf", dict(layout="nonstriped", access_model="zipf", **bundle),
         HINTS["nonstriped_zipf"]),
        ("non-striped/uniform",
         dict(layout="nonstriped", access_model="uniform", **bundle),
         HINTS["nonstriped_uniform"]),
    ]
    headers = ("server MB",) + tuple(label for label, _, _ in variants)
    hints = {label: hint for label, _, hint in variants}
    rows = []
    for memory in scale.memory_points:
        row = [memory // MB]
        for label, overrides, _ in variants:
            config = paper_config(server_memory_bytes=memory, **overrides)
            found = _search(config, hints[label])
            hints[label] = max(found, scale.granularity)
            row.append(found)
        rows.append(tuple(row))
    return ExperimentResult(
        name="fig13",
        title="Figure 13: striped vs non-striped layouts "
        "(max glitch-free terminals)",
        headers=headers,
        rows=tuple(rows),
        notes="(512KB stripes/reads, love prefetch, elevator)",
    )


def fig14_disk_utilization() -> ExperimentResult:
    """Average disk utilization at each layout's own maximum load."""
    bundle = dict(
        replacement_policy="love_prefetch",
        server_memory_bytes=512 * MB,
        **elevator_bundle(),
    )
    variants = [
        ("striped/zipf", dict(layout="striped", access_model="zipf"),
         HINTS["striped"]),
        ("non-striped/zipf", dict(layout="nonstriped", access_model="zipf"),
         HINTS["nonstriped_zipf"]),
        ("non-striped/uniform", dict(layout="nonstriped", access_model="uniform"),
         HINTS["nonstriped_uniform"]),
    ]
    rows = []
    for label, overrides, hint in variants:
        config = paper_config(**bundle, **overrides)
        capacity = _search(config, hint)
        at_capacity = run_simulation(config.replace(terminals=max(capacity, 10)))
        rows.append(
            (
                label,
                max(capacity, 10),
                round(at_capacity.disk_utilization_mean, 3),
                round(at_capacity.disk_utilization_min, 3),
                round(at_capacity.disk_utilization_max, 3),
            )
        )
    return ExperimentResult(
        name="fig14",
        title="Figure 14: average disk utilization, striped vs non-striped "
        "(at each layout's max terminals)",
        headers=("layout/access", "terminals", "mean util", "min util", "max util"),
        rows=tuple(rows),
        notes="(512MB server memory, love prefetch, elevator)",
    )


# ---------------------------------------------------------------------------
# Figures 15/16 — movie access frequencies
# ---------------------------------------------------------------------------

_ACCESS_VARIANTS = (
    ("uniform", dict(access_model="uniform")),
    ("zipf z=0.5", dict(access_model="zipf", zipf_skew=0.5)),
    ("zipf z=1.0", dict(access_model="zipf", zipf_skew=1.0)),
    ("zipf z=1.5", dict(access_model="zipf", zipf_skew=1.5)),
)


def fig15_access_frequencies() -> ExperimentResult:
    """Max terminals vs memory for different access skews."""
    scale = bench_scale()
    bundle = dict(replacement_policy="love_prefetch", **elevator_bundle())
    headers = ("server MB",) + tuple(label for label, _ in _ACCESS_VARIANTS)
    hints = {label: HINTS["striped"] for label, _ in _ACCESS_VARIANTS}
    rows = []
    for memory in scale.memory_points:
        row = [memory // MB]
        for label, overrides in _ACCESS_VARIANTS:
            config = paper_config(
                server_memory_bytes=memory, **bundle, **overrides
            )
            found = _search(config, hints[label])
            hints[label] = max(found, scale.granularity)
            row.append(found)
        rows.append(tuple(row))
    return ExperimentResult(
        name="fig15",
        title="Figure 15: movie access frequencies "
        "(max glitch-free terminals vs server memory)",
        headers=headers,
        rows=rows,
        notes="(512KB stripes, love prefetch, elevator)",
    )


def fig16_rereference_rate(terminals: int = 150) -> ExperimentResult:
    """Share of buffer references previously referenced by another
    terminal, vs memory, per access skew (fixed load)."""
    scale = bench_scale()
    bundle = dict(replacement_policy="love_prefetch", **elevator_bundle())
    headers = ("server MB",) + tuple(label for label, _ in _ACCESS_VARIANTS)
    rows = []
    for memory in scale.memory_points:
        row = [memory // MB]
        for _, overrides in _ACCESS_VARIANTS:
            metrics = run_simulation(
                paper_config(
                    terminals=terminals,
                    server_memory_bytes=memory,
                    **bundle,
                    **overrides,
                )
            )
            row.append(round(100.0 * metrics.rereference_rate, 1))
        rows.append(tuple(row))
    return ExperimentResult(
        name="fig16",
        title="Figure 16: % of buffer pool references previously referenced "
        "by another terminal",
        headers=headers,
        rows=tuple(rows),
        notes=f"(fixed load of {terminals} terminals, love prefetch, elevator)",
    )


# ---------------------------------------------------------------------------
# Figures 17/18 — scaleup utilizations (companions to Table 2)
# ---------------------------------------------------------------------------

_SCALEUP_POINTS = (
    (1, HINTS["elevator_512k_bigmem"]),
    (2, HINTS["scaleup_x2"]),
    (4, HINTS["scaleup_x4"]),
)


def _scaled_config(factor: int, terminals: int) -> SpiffiConfig:
    """The paper's scaleup rule: disks, memory, and videos grow with the
    factor; CPUs stay at 4 (disks_per_node grows)."""
    return paper_config(
        disks_per_node=4 * factor,
        server_memory_bytes=512 * MB * factor,
        terminals=terminals,
        replacement_policy="love_prefetch",
        **realtime_bundle(prefetch_mode="delayed", max_advance_s=8.0),
    )


def fig17_cpu_utilization() -> ExperimentResult:
    """CPU utilization as the system scales (4 CPUs throughout)."""
    rows = []
    for factor, terminals in _SCALEUP_POINTS:
        metrics = run_simulation(_scaled_config(factor, terminals))
        rows.append(
            (
                16 * factor,
                terminals,
                round(metrics.cpu_utilization_mean, 3),
                round(metrics.disk_utilization_mean, 3),
            )
        )
    return ExperimentResult(
        name="fig17",
        title="Figure 17: CPU utilization under scaleup (4 CPUs)",
        headers=("disks", "terminals", "cpu util", "disk util"),
        rows=tuple(rows),
        notes="(real-time scheduling, love prefetch, delayed prefetching 8s)",
    )


def fig18_network_bandwidth() -> ExperimentResult:
    """Peak aggregate network bandwidth as the system scales."""
    rows = []
    for factor, terminals in _SCALEUP_POINTS:
        metrics = run_simulation(_scaled_config(factor, terminals))
        per_terminal_mbits = (
            metrics.network_peak_bytes_per_s * 8 / 1e6 / terminals
        )
        rows.append(
            (
                16 * factor,
                terminals,
                round(metrics.network_peak_mbytes_per_s, 1),
                round(per_terminal_mbits, 2),
            )
        )
    return ExperimentResult(
        name="fig18",
        title="Figure 18: peak aggregate network bandwidth requirements",
        headers=("disks", "terminals", "peak MB/s", "Mbit/s per terminal"),
        rows=tuple(rows),
        notes="(real-time scheduling, love prefetch, delayed prefetching 8s)",
    )


# ---------------------------------------------------------------------------
# Figure 19 — pausing
# ---------------------------------------------------------------------------

def fig19_pause() -> ExperimentResult:
    """Effect of viewers pausing twice per video for ~2 minutes."""
    from repro.terminal.pauses import PauseModel

    bundle = dict(
        replacement_policy="love_prefetch",
        server_memory_bytes=512 * MB,
        **elevator_bundle(),
    )
    rows = []
    for label, model in (
        ("no pauses", PauseModel(enabled=False)),
        ("2 pauses x 2min avg", PauseModel(enabled=True, mean_pauses_per_video=2.0,
                                           mean_pause_duration_s=120.0)),
    ):
        config = paper_config(pause_model=model, **bundle)
        rows.append((label, _search(config, HINTS["striped"])))
    return ExperimentResult(
        name="fig19",
        title="Figure 19: effect of pausing (max glitch-free terminals)",
        headers=("pause behaviour", "max terminals"),
        rows=tuple(rows),
        notes="(512MB server memory, love prefetch, elevator)",
    )


# ---------------------------------------------------------------------------
# §8.2 — piggybacking
# ---------------------------------------------------------------------------

def sec82_piggyback(window_s: float | None = None) -> ExperimentResult:
    """Delayed-start piggybacking of same-video terminals.

    The paper's example delay is 5 minutes; the quick bench scale uses
    a 2-minute window to bound the (long) warmup these runs need.
    """
    scale = bench_scale()
    if window_s is None:
        window_s = 120.0 if scale.name == "quick" else 300.0
    spread = max(window_s * 1.5, scale.start_spread_s)
    bundle = dict(
        replacement_policy="love_prefetch",
        server_memory_bytes=512 * MB,
        initial_position_fraction=0.0,
        start_spread_s=spread,
        **elevator_bundle(),
    )
    rows = []
    for label, window in (("no piggybacking", 0.0), (f"{window_s:g}s delay", window_s)):
        config = paper_config(**bundle).replace(
            piggyback_window_s=window,
            warmup_grace_s=window + scale.warmup_grace_s,
        )
        rows.append((label, _search(config, HINTS["striped"])))
    return ExperimentResult(
        name="sec82",
        title="Section 8.2: piggybacking terminals "
        "(max glitch-free terminals)",
        headers=("start policy", "max terminals"),
        rows=tuple(rows),
        notes="(Zipf z=1; terminals start videos over a "
        f"{spread:g}s window; 512MB memory, love prefetch, elevator)",
    )
