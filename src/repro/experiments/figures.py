"""Drivers regenerating every figure in the paper's evaluation (§7, §8).

Each ``figNN_*`` function runs the simulations behind one figure and
returns an :class:`ExperimentResult` holding the same series the paper
plots.  Absolute numbers depend on the (scaled) measurement windows —
see EXPERIMENTS.md — but the shapes are the reproduction target.

Every driver declares its grid of *independent* cells (scheduler x
stripe size, memory sweep points, scaleup configs, ...) and submits the
whole grid through the experiment runner (`repro.experiments.runner`)
rather than looping over simulations itself, so a parallel runner can
fan the entire figure out at once.  Cell hints are static — never
derived from other cells' results — which keeps every cell independent
and every table bit-identical no matter how it was executed.
"""

from __future__ import annotations

from repro.core.config import MB, SpiffiConfig
from repro.experiments.presets import (
    HINTS,
    bench_scale,
    elevator_bundle,
    paper_config,
    realtime_bundle,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import SearchCell, run_grid, search_grid
from repro.bufferpool.registry import ReplacementSpec
from repro.layout.registry import LayoutSpec
from repro.media.access import UniformAccess, ZipfianAccess
from repro.sched.registry import SchedulerSpec

KB = 1024


def _cell(tag: str, config: SpiffiConfig, hint: int) -> SearchCell:
    """One max-terminals search at the active bench scale."""
    scale = bench_scale()
    return SearchCell(
        tag=tag,
        config=config,
        hint=hint,
        granularity=scale.granularity,
        replications=scale.replications,
    )


# ---------------------------------------------------------------------------
# Figure 8 — the Zipfian access distribution (analytic)
# ---------------------------------------------------------------------------

def fig08_zipf(video_count: int = 64) -> ExperimentResult:
    """Access probability by video rank for the paper's z values."""
    models = [
        ("uniform", UniformAccess(video_count)),
        ("z=0.5", ZipfianAccess(video_count, 0.5)),
        ("z=1.0", ZipfianAccess(video_count, 1.0)),
        ("z=1.5", ZipfianAccess(video_count, 1.5)),
    ]
    ranks = [1, 2, 4, 8, 16, 32, 64]
    ranks = [rank for rank in ranks if rank <= video_count]
    headers = ("rank",) + tuple(label for label, _ in models)
    rows = []
    for rank in ranks:
        row = [rank]
        for _, model in models:
            row.append(round(model.weights()[rank - 1], 4))
        rows.append(tuple(row))
    return ExperimentResult(
        name="fig08",
        title=f"Figure 8: Zipfian access frequencies over {video_count} videos",
        headers=headers,
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Figure 9 — glitches vs terminals (the search procedure, illustrated)
# ---------------------------------------------------------------------------

def fig09_glitch_curve() -> ExperimentResult:
    """Glitch count as the number of terminals increases."""
    scale = bench_scale()
    base = paper_config(**elevator_bundle())
    hint = HINTS["elevator_512k_bigmem"]
    counts = [hint - 60, hint - 30, hint - 10, hint, hint + 10, hint + 30, hint + 60]
    grid = [
        (f"fig09 t={terminals}", base.replace(terminals=terminals))
        for terminals in counts
    ]
    rows = [
        (terminals, metrics.glitches, metrics.glitching_terminals)
        for terminals, metrics in zip(counts, run_grid(grid))
    ]
    return ExperimentResult(
        name="fig09",
        title="Figure 9: finding the maximum number of terminals without glitches",
        headers=("terminals", "glitches", "glitching terminals"),
        rows=tuple(rows),
        notes=f"(elevator, 512KB stripes, 4GB server memory; "
        f"measure window {scale.measure_s:g}s)",
    )


# ---------------------------------------------------------------------------
# Figure 10 — disk scheduling algorithms x stripe sizes
# ---------------------------------------------------------------------------

#: Rough expected capacity by stripe size, used to seed searches.
_STRIPE_HINT_FACTOR = {
    128 * KB: 0.78,
    256 * KB: 0.90,
    512 * KB: 1.0,
    1024 * KB: 0.70,
}


def fig10_sched_stripe() -> ExperimentResult:
    """Max glitch-free terminals per scheduler per stripe size."""
    scale = bench_scale()
    schedulers = [
        ("elevator", elevator_bundle()),
        ("GSS (1 group)", dict(
            scheduler=SchedulerSpec("gss", gss_groups=1),
            prefetch=elevator_bundle()["prefetch"],
        )),
        ("round-robin", dict(
            scheduler=SchedulerSpec("round_robin"),
            prefetch=elevator_bundle()["prefetch"],
        )),
        ("real-time 2/4s", realtime_bundle(priority_classes=2)),
        ("real-time 3/4s", realtime_bundle(priority_classes=3)),
    ]
    base_hint = HINTS["elevator_512k_bigmem"]
    cells = []
    for stripe in scale.stripe_points:
        for label, bundle in schedulers:
            hint = int(base_hint * _STRIPE_HINT_FACTOR.get(stripe, 0.8))
            if label == "round-robin":
                hint = int(hint * 0.7)
            cells.append(_cell(
                f"fig10 {stripe // KB}KB {label}",
                paper_config(stripe_bytes=stripe, **bundle),
                hint,
            ))
    found = iter(search_grid(cells))
    headers = ("stripe KB",) + tuple(label for label, _ in schedulers)
    rows = [
        tuple([stripe // KB] + [next(found).max_terminals for _ in schedulers])
        for stripe in scale.stripe_points
    ]
    return ExperimentResult(
        name="fig10",
        title="Figure 10: disk scheduling algorithms and stripe sizes "
        "(max glitch-free terminals)",
        headers=headers,
        rows=tuple(rows),
        notes="(4GB server memory, global LRU, 2MB terminals)",
    )


# ---------------------------------------------------------------------------
# Figures 11/12 — server memory requirements
# ---------------------------------------------------------------------------

def _memory_sweep(name: str, variants) -> tuple:
    """Search every (memory point x variant) cell of a memory figure."""
    scale = bench_scale()
    hint = HINTS["elevator_512k_bigmem"]
    cells = [
        _cell(
            f"{name} {memory // MB}MB {label}",
            paper_config(server_memory_bytes=memory, **overrides),
            hint,
        )
        for memory in scale.memory_points
        for label, overrides in variants
    ]
    found = iter(search_grid(cells))
    headers = ("server MB",) + tuple(label for label, _ in variants)
    rows = tuple(
        tuple([memory // MB] + [next(found).max_terminals for _ in variants])
        for memory in scale.memory_points
    )
    return headers, rows


def fig11_memory_elevator() -> ExperimentResult:
    """Global LRU vs love prefetch under elevator scheduling."""
    bundle = elevator_bundle()
    variants = [
        ("global LRU", dict(replacement_policy=ReplacementSpec("global_lru"), **bundle)),
        ("love prefetch", dict(replacement_policy=ReplacementSpec("love_prefetch"), **bundle)),
    ]
    headers, rows = _memory_sweep("fig11", variants)
    return ExperimentResult(
        name="fig11",
        title="Figure 11: reducing server memory requirements "
        "(elevator disk scheduling; max glitch-free terminals)",
        headers=headers,
        rows=rows,
        notes="(512KB stripes, 2MB terminals)",
    )


def fig12_memory_realtime() -> ExperimentResult:
    """Replacement/prefetching algorithms under real-time scheduling."""
    variants = [
        ("global LRU", dict(
            replacement_policy=ReplacementSpec("global_lru"), **realtime_bundle())),
        ("love prefetch", dict(
            replacement_policy=ReplacementSpec("love_prefetch"), **realtime_bundle())),
        ("love + delayed 8s", dict(
            replacement_policy=ReplacementSpec("love_prefetch"),
            **realtime_bundle(prefetch_mode="delayed", max_advance_s=8.0))),
        ("love + delayed 4s", dict(
            replacement_policy=ReplacementSpec("love_prefetch"),
            **realtime_bundle(prefetch_mode="delayed", max_advance_s=4.0))),
    ]
    headers, rows = _memory_sweep("fig12", variants)
    return ExperimentResult(
        name="fig12",
        title="Figure 12: reducing server memory requirements "
        "(real-time disk scheduling; max glitch-free terminals)",
        headers=headers,
        rows=rows,
        notes="(512KB stripes, 3 priority classes / 4s spacing, "
        "aggressive real-time prefetching)",
    )


# ---------------------------------------------------------------------------
# Figures 13/14 — striped vs non-striped layout
# ---------------------------------------------------------------------------

def fig13_striping() -> ExperimentResult:
    """Striped vs non-striped layouts under Zipf and uniform access."""
    scale = bench_scale()
    bundle = dict(replacement_policy=ReplacementSpec("love_prefetch"), **elevator_bundle())
    variants = [
        ("striped/zipf", dict(layout=LayoutSpec("striped"), access_model="zipf", **bundle),
         HINTS["striped"]),
        ("striped/uniform", dict(layout=LayoutSpec("striped"), access_model="uniform", **bundle),
         HINTS["striped"]),
        ("non-striped/zipf", dict(layout=LayoutSpec("nonstriped"), access_model="zipf", **bundle),
         HINTS["nonstriped_zipf"]),
        ("non-striped/uniform",
         dict(layout=LayoutSpec("nonstriped"), access_model="uniform", **bundle),
         HINTS["nonstriped_uniform"]),
    ]
    cells = [
        _cell(
            f"fig13 {memory // MB}MB {label}",
            paper_config(server_memory_bytes=memory, **overrides),
            hint,
        )
        for memory in scale.memory_points
        for label, overrides, hint in variants
    ]
    found = iter(search_grid(cells))
    headers = ("server MB",) + tuple(label for label, _, _ in variants)
    rows = [
        tuple([memory // MB] + [next(found).max_terminals for _ in variants])
        for memory in scale.memory_points
    ]
    return ExperimentResult(
        name="fig13",
        title="Figure 13: striped vs non-striped layouts "
        "(max glitch-free terminals)",
        headers=headers,
        rows=tuple(rows),
        notes="(512KB stripes/reads, love prefetch, elevator)",
    )


def fig14_disk_utilization() -> ExperimentResult:
    """Average disk utilization at each layout's own maximum load."""
    bundle = dict(
        replacement_policy=ReplacementSpec("love_prefetch"),
        server_memory_bytes=512 * MB,
        **elevator_bundle(),
    )
    variants = [
        ("striped/zipf", dict(layout=LayoutSpec("striped"), access_model="zipf"),
         HINTS["striped"]),
        ("non-striped/zipf", dict(layout=LayoutSpec("nonstriped"), access_model="zipf"),
         HINTS["nonstriped_zipf"]),
        ("non-striped/uniform", dict(layout=LayoutSpec("nonstriped"), access_model="uniform"),
         HINTS["nonstriped_uniform"]),
    ]
    configs = [
        paper_config(**bundle, **overrides) for _, overrides, _ in variants
    ]
    searches = search_grid([
        _cell(f"fig14 {label}", config, hint)
        for (label, _, hint), config in zip(variants, configs)
    ])
    capacities = [max(found.max_terminals, 10) for found in searches]
    at_capacity = run_grid([
        (f"fig14 {label} at capacity", config.replace(terminals=capacity))
        for (label, _, _), config, capacity in zip(variants, configs, capacities)
    ])
    rows = [
        (
            label,
            capacity,
            round(metrics.disk_utilization_mean, 3),
            round(metrics.disk_utilization_min, 3),
            round(metrics.disk_utilization_max, 3),
        )
        for (label, _, _), capacity, metrics in zip(variants, capacities, at_capacity)
    ]
    return ExperimentResult(
        name="fig14",
        title="Figure 14: average disk utilization, striped vs non-striped "
        "(at each layout's max terminals)",
        headers=("layout/access", "terminals", "mean util", "min util", "max util"),
        rows=tuple(rows),
        notes="(512MB server memory, love prefetch, elevator)",
    )


# ---------------------------------------------------------------------------
# Figures 15/16 — movie access frequencies
# ---------------------------------------------------------------------------

_ACCESS_VARIANTS = (
    ("uniform", dict(access_model="uniform")),
    ("zipf z=0.5", dict(access_model="zipf", zipf_skew=0.5)),
    ("zipf z=1.0", dict(access_model="zipf", zipf_skew=1.0)),
    ("zipf z=1.5", dict(access_model="zipf", zipf_skew=1.5)),
)


def fig15_access_frequencies() -> ExperimentResult:
    """Max terminals vs memory for different access skews."""
    scale = bench_scale()
    bundle = dict(replacement_policy=ReplacementSpec("love_prefetch"), **elevator_bundle())
    cells = [
        _cell(
            f"fig15 {memory // MB}MB {label}",
            paper_config(server_memory_bytes=memory, **bundle, **overrides),
            HINTS["striped"],
        )
        for memory in scale.memory_points
        for label, overrides in _ACCESS_VARIANTS
    ]
    found = iter(search_grid(cells))
    headers = ("server MB",) + tuple(label for label, _ in _ACCESS_VARIANTS)
    rows = tuple(
        tuple([memory // MB] + [next(found).max_terminals for _ in _ACCESS_VARIANTS])
        for memory in scale.memory_points
    )
    return ExperimentResult(
        name="fig15",
        title="Figure 15: movie access frequencies "
        "(max glitch-free terminals vs server memory)",
        headers=headers,
        rows=rows,
        notes="(512KB stripes, love prefetch, elevator)",
    )


def fig16_rereference_rate(terminals: int = 150) -> ExperimentResult:
    """Share of buffer references previously referenced by another
    terminal, vs memory, per access skew (fixed load)."""
    scale = bench_scale()
    bundle = dict(replacement_policy=ReplacementSpec("love_prefetch"), **elevator_bundle())
    grid = [
        (
            f"fig16 {memory // MB}MB {label}",
            paper_config(
                terminals=terminals,
                server_memory_bytes=memory,
                **bundle,
                **overrides,
            ),
        )
        for memory in scale.memory_points
        for label, overrides in _ACCESS_VARIANTS
    ]
    metrics = iter(run_grid(grid))
    headers = ("server MB",) + tuple(label for label, _ in _ACCESS_VARIANTS)
    rows = [
        tuple(
            [memory // MB]
            + [
                round(100.0 * next(metrics).rereference_rate, 1)
                for _ in _ACCESS_VARIANTS
            ]
        )
        for memory in scale.memory_points
    ]
    return ExperimentResult(
        name="fig16",
        title="Figure 16: % of buffer pool references previously referenced "
        "by another terminal",
        headers=headers,
        rows=tuple(rows),
        notes=f"(fixed load of {terminals} terminals, love prefetch, elevator)",
    )


# ---------------------------------------------------------------------------
# Figures 17/18 — scaleup utilizations (companions to Table 2)
# ---------------------------------------------------------------------------

_SCALEUP_POINTS = (
    (1, HINTS["elevator_512k_bigmem"]),
    (2, HINTS["scaleup_x2"]),
    (4, HINTS["scaleup_x4"]),
)


def _scaled_config(factor: int, terminals: int) -> SpiffiConfig:
    """The paper's scaleup rule: disks, memory, and videos grow with the
    factor; CPUs stay at 4 (disks_per_node grows)."""
    return paper_config(
        disks_per_node=4 * factor,
        server_memory_bytes=512 * MB * factor,
        terminals=terminals,
        replacement_policy=ReplacementSpec("love_prefetch"),
        **realtime_bundle(prefetch_mode="delayed", max_advance_s=8.0),
    )


def _scaleup_grid(name: str) -> list:
    return run_grid([
        (f"{name} x{factor}", _scaled_config(factor, terminals))
        for factor, terminals in _SCALEUP_POINTS
    ])


def fig17_cpu_utilization() -> ExperimentResult:
    """CPU utilization as the system scales (4 CPUs throughout)."""
    rows = [
        (
            16 * factor,
            terminals,
            round(metrics.cpu_utilization_mean, 3),
            round(metrics.disk_utilization_mean, 3),
        )
        for (factor, terminals), metrics in zip(
            _SCALEUP_POINTS, _scaleup_grid("fig17")
        )
    ]
    return ExperimentResult(
        name="fig17",
        title="Figure 17: CPU utilization under scaleup (4 CPUs)",
        headers=("disks", "terminals", "cpu util", "disk util"),
        rows=tuple(rows),
        notes="(real-time scheduling, love prefetch, delayed prefetching 8s)",
    )


def fig18_network_bandwidth() -> ExperimentResult:
    """Peak aggregate network bandwidth as the system scales."""
    rows = []
    for (factor, terminals), metrics in zip(
        _SCALEUP_POINTS, _scaleup_grid("fig18")
    ):
        per_terminal_mbits = (
            metrics.network_peak_bytes_per_s * 8 / 1e6 / terminals
        )
        rows.append(
            (
                16 * factor,
                terminals,
                round(metrics.network_peak_mbytes_per_s, 1),
                round(per_terminal_mbits, 2),
            )
        )
    return ExperimentResult(
        name="fig18",
        title="Figure 18: peak aggregate network bandwidth requirements",
        headers=("disks", "terminals", "peak MB/s", "Mbit/s per terminal"),
        rows=tuple(rows),
        notes="(real-time scheduling, love prefetch, delayed prefetching 8s)",
    )


# ---------------------------------------------------------------------------
# Figure 19 — pausing
# ---------------------------------------------------------------------------

def fig19_pause() -> ExperimentResult:
    """Effect of viewers pausing twice per video for ~2 minutes."""
    from repro.terminal.pauses import PauseModel

    bundle = dict(
        replacement_policy=ReplacementSpec("love_prefetch"),
        server_memory_bytes=512 * MB,
        **elevator_bundle(),
    )
    variants = [
        ("no pauses", PauseModel(enabled=False)),
        ("2 pauses x 2min avg", PauseModel(enabled=True, mean_pauses_per_video=2.0,
                                           mean_pause_duration_s=120.0)),
    ]
    searches = search_grid([
        _cell(f"fig19 {label}", paper_config(pause_model=model, **bundle),
              HINTS["striped"])
        for label, model in variants
    ])
    rows = [
        (label, found.max_terminals)
        for (label, _), found in zip(variants, searches)
    ]
    return ExperimentResult(
        name="fig19",
        title="Figure 19: effect of pausing (max glitch-free terminals)",
        headers=("pause behaviour", "max terminals"),
        rows=tuple(rows),
        notes="(512MB server memory, love prefetch, elevator)",
    )


# ---------------------------------------------------------------------------
# §8.2 — piggybacking
# ---------------------------------------------------------------------------

def sec82_piggyback(window_s: float | None = None) -> ExperimentResult:
    """Delayed-start piggybacking of same-video terminals.

    The paper's example delay is 5 minutes; the quick bench scale uses
    a 2-minute window to bound the (long) warmup these runs need.
    """
    scale = bench_scale()
    if window_s is None:
        window_s = 120.0 if scale.name == "quick" else 300.0
    spread = max(window_s * 1.5, scale.start_spread_s)
    bundle = dict(
        replacement_policy=ReplacementSpec("love_prefetch"),
        server_memory_bytes=512 * MB,
        initial_position_fraction=0.0,
        start_spread_s=spread,
        **elevator_bundle(),
    )
    variants = [("no piggybacking", 0.0), (f"{window_s:g}s delay", window_s)]
    searches = search_grid([
        _cell(
            f"sec82 {label}",
            paper_config(**bundle).replace(
                piggyback_window_s=window,
                warmup_grace_s=window + scale.warmup_grace_s,
            ),
            HINTS["striped"],
        )
        for label, window in variants
    ])
    rows = [
        (label, found.max_terminals)
        for (label, _), found in zip(variants, searches)
    ]
    return ExperimentResult(
        name="sec82",
        title="Section 8.2: piggybacking terminals "
        "(max glitch-free terminals)",
        headers=("start policy", "max terminals"),
        rows=tuple(rows),
        notes="(Zipf z=1; terminals start videos over a "
        f"{spread:g}s window; 512MB memory, love prefetch, elevator)",
    )
