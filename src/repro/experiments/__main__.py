"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig10 fig11
    python -m repro.experiments all --scale quick --jobs 4
    python -m repro.experiments table2 --no-cache

``--jobs N`` fans simulation runs out over N worker processes; results
are bit-identical to a serial run.  Completed runs are cached on disk
(keyed by a content hash of the full configuration), so re-running an
experiment replays its probe plan against the cache and finishes
without simulating; ``--no-cache`` forces recomputation.  ``--scale``
selects the bench scale (quick/default/full; ``paper`` = ``full``),
falling back to the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.experiments.catalog import EXPERIMENTS
from repro.experiments.presets import bench_scale, set_bench_scale
from repro.experiments.report import publish
from repro.experiments.results import RunCache, default_cache_root
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunOutcome,
    SerialExecutor,
    using_runner,
)

class _ProgressPrinter:
    """Thread-safe per-run progress lines for the experiment runner."""

    def __init__(self, stream=None) -> None:
        self.stream = stream or sys.stderr
        self.runs = 0
        self.cached = 0
        self._lock = threading.Lock()

    def __call__(self, outcome: RunOutcome) -> None:
        metrics = outcome.metrics
        events = getattr(metrics, "events_processed", 0)
        with self._lock:
            self.runs += 1
            self.cached += 1 if outcome.cached else 0
            if outcome.failed:
                print(
                    f"  [error ] {outcome.tag or 'run'}: {outcome.error}",
                    file=self.stream,
                )
                return
            status = "cache" if outcome.cached else f"{outcome.wall_time_s:6.2f}s"
            rate = getattr(metrics, "events_per_second", 0.0)
            rate_text = f" ({rate / 1000.0:,.0f}k ev/s)" if rate else ""
            print(
                f"  [{status}] {outcome.tag or 'run'}: "
                f"terminals={metrics.terminals} glitches={metrics.glitches} "
                f"events={events}{rate_text}",
                file=self.stream,
            )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="experiment",
        help="experiment ids (fig08..fig19, table2, table3, sec82, "
        "faultsweep, availability, saturation, cluster, prefixsweep, "
        "resilience), 'all', or 'list'",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation runs (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the on-disk run cache",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "full", "paper"),
        default=None,
        help="bench scale (default: $REPRO_BENCH_SCALE or 'default'); "
        "'paper' is an alias for 'full'",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-run progress lines",
    )
    return parser


def _list() -> int:
    print(__doc__)
    print("Available experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    return 0


def main(argv: list[str]) -> int:
    args = _parser().parse_args(argv)
    if not args.names or args.names == ["list"]:
        return _list()
    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    set_bench_scale(args.scale)
    try:
        scale = bench_scale()
        progress = None if args.quiet else _ProgressPrinter()
        executor = ProcessExecutor(args.jobs) if args.jobs > 1 else SerialExecutor()
        cache = None if args.no_cache else RunCache()
        runner = Runner(executor=executor, cache=cache, progress=progress)
        print(
            f"scale={scale.name} jobs={args.jobs} "
            f"cache={'off' if cache is None else default_cache_root()}",
            file=sys.stderr,
        )
        try:
            with using_runner(runner):
                for name in names:
                    started = time.perf_counter()
                    result = EXPERIMENTS[name]()
                    elapsed = time.perf_counter() - started
                    publish(result.name, result.table())
                    print(f"[{name}] finished in {elapsed:.1f}s", file=sys.stderr)
        finally:
            runner.close()
        if progress is not None and progress.runs:
            print(
                f"{progress.runs} runs total, {progress.cached} from cache",
                file=sys.stderr,
            )
    finally:
        set_bench_scale(None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
