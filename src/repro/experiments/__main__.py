"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig10 fig11
    REPRO_BENCH_SCALE=quick python -m repro.experiments all
"""

from __future__ import annotations

import sys

from repro.experiments import figures, tables
from repro.experiments.report import publish

EXPERIMENTS = {
    "fig08": figures.fig08_zipf,
    "fig09": figures.fig09_glitch_curve,
    "fig10": figures.fig10_sched_stripe,
    "fig11": figures.fig11_memory_elevator,
    "fig12": figures.fig12_memory_realtime,
    "fig13": figures.fig13_striping,
    "fig14": figures.fig14_disk_utilization,
    "fig15": figures.fig15_access_frequencies,
    "fig16": figures.fig16_rereference_rate,
    "fig17": figures.fig17_cpu_utilization,
    "fig18": figures.fig18_network_bandwidth,
    "fig19": figures.fig19_pause,
    "table2": tables.table2_scaleup,
    "table3": tables.table3_disk_cost,
    "sec82": figures.sec82_piggyback,
}


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("Available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0
    names = list(EXPERIMENTS) if argv == ["all"] else argv
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        result = EXPERIMENTS[name]()
        publish(result.name, result.table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
