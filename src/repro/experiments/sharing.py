"""Stream sharing: max sustainable flash-crowd rate per sharing policy.

The capacity question behind the sharing subsystem: when a flash crowd
piles onto a skewed catalog, how much higher an arrival rate can the
same disks sustain if near-simultaneous same-title sessions share
streams?  The sweep crosses sharing policies with Zipf skews under
flash arrivals (a mid-window burst at several times the base rate) and
reports the largest rate each combination sustains inside the
saturation SLOs — zero glitches, bounded p99 startup, bounded
rejections.

The expected shape: at flat skew (0.2) same-title collisions are rare
and every policy saturates at about the same rate; at skew 1.0 the head
titles dominate the flash crowd, so batched admission collapses bursts
onto shared streams — and buffer chaining additionally serves staggered
followers from the leader's still-resident pages — pushing the wall
measurably past the no-sharing baseline.

Each cell is one deterministic :func:`repro.workload.find_max_rate`
search; probes fan out through the ambient runner batch by batch, so
results are bit-identical at any ``--jobs`` and cache-hit on re-runs.
"""

from __future__ import annotations

from repro.core.config import MB, SpiffiConfig
from repro.experiments.presets import bench_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import default_runner
from repro.sharing.spec import SharingSpec
from repro.workload import ArrivalSpec, SloPolicy, find_max_rate

#: (row label, sharing spec) per policy swept.  The batch window stays
#: well inside the 10s startup SLO.
POLICIES = (
    ("no-sharing", SharingSpec()),
    ("batch", SharingSpec(policy="batch", window_s=2.0)),
    ("batch+chain", SharingSpec(policy="batch+chain", window_s=2.0)),
)

#: Popularity skews swept (flat vs. the paper's head-heavy default).
SKEWS = (0.2, 1.0)

#: Search coarseness (arrivals/minute) per bench scale.
GRANULARITY = {"quick": 60, "default": 30, "full": 12}

SLO = SloPolicy(max_p99_startup_s=10.0, max_rejection_rate=0.05, max_glitches=0)


def sharing_config(skew: float, spec: SharingSpec) -> SpiffiConfig:
    """The small, disk-bound array every sharing probe runs on."""
    scale = bench_scale()
    return SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=1,  # ignored: the open workload spawns sessions
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=64 * MB,
        zipf_skew=skew,
        sharing=spec,
        start_spread_s=scale.start_spread_s,
        warmup_grace_s=scale.warmup_grace_s,
        measure_s=scale.measure_s,
    )


def flash_workload_for(config: SpiffiConfig):
    """rate (sessions/s) -> the flash-crowd ArrivalSpec at that rate.

    The burst starts a quarter into the measurement window and spans
    another quarter of it, at three times the base rate — so every
    probe's window sees steady load, the crowd, and the recovery.
    """
    flash_at = config.warmup_s + 0.25 * config.measure_s

    def make(rate_per_s: float) -> ArrivalSpec:
        return ArrivalSpec(
            process="flash",
            rate_per_s=rate_per_s,
            mean_view_duration_s=30.0,
            queue_limit=16,
            mean_patience_s=10.0,
            flash_at_s=flash_at,
            flash_duration_s=0.25 * config.measure_s,
            flash_multiplier=3.0,
            startup_slo_s=SLO.max_p99_startup_s,
        )

    return make


def sharing() -> ExperimentResult:
    """Max sustainable flash-crowd rate: sharing policy x Zipf skew."""
    scale = bench_scale()
    granularity = GRANULARITY[scale.name]
    runner = default_runner()

    rows = []
    total_runs = 0
    for skew in SKEWS:
        for label, spec in POLICIES:
            base = sharing_config(skew, spec)
            result = find_max_rate(
                base,
                flash_workload_for(base),
                slo=SLO,
                hint=240,
                granularity=granularity,
                low=granularity,
                high=960,
                replications=scale.replications,
                runner=runner,
                tag=f"sharing z={skew:g} {label}",
            )
            total_runs += result.runs
            at = result.metrics_at_max()
            rows.append(
                (
                    f"{skew:g}",
                    label,
                    result.max_rate_per_min,
                    f"{result.max_rate_per_s:.2f}",
                    at.admitted_sessions if at else 0,
                    at.shared_streams if at else 0,
                    f"{at.sharing_fraction:.2f}" if at else "-",
                    at.chain_reads if at else 0,
                    f"{at.rejection_rate:.1%}" if at else "-",
                    f"{at.startup_p99_s:.2f}" if at else "-",
                    at.glitches if at else 0,
                    result.runs,
                )
            )
    return ExperimentResult(
        name="sharing",
        title="Stream sharing: max sustainable flash-crowd rate per policy",
        headers=(
            "zipf",
            "policy",
            "max rate/min",
            "rate/s",
            "admitted",
            "shared",
            "share frac",
            "chain reads",
            "rejected",
            "p99 startup",
            "glitches",
            "runs",
        ),
        rows=tuple(rows),
        notes=(
            "(2x2 disks, 64MB server memory, 8 titles, flash arrivals "
            "bursting to 3x the base rate for a quarter of the window, "
            "30s mean view time, queue limit 16, 10s mean patience; "
            "sharing policies use a 2s batch window and 30s chain lag "
            "bound; sustainable = zero glitches, p99 startup <= "
            f"{SLO.max_p99_startup_s:g}s, rejections <= "
            f"{SLO.max_rejection_rate:.0%}; searched in "
            f"{granularity}/min steps up to 960/min; detail columns "
            "describe a sustainable run at the reported maximum; "
            f"{total_runs} probe runs, measure window "
            f"{scale.measure_s:g}s)"
        ),
    )
