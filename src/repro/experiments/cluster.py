"""Cluster scaling: max sustainable arrival rate vs node count.

The multi-node counterpart of :mod:`~repro.experiments.saturation`,
and the reproduction of the INRIA-bound comparison: a video server
built from N independent nodes should sustain N times the single-node
arrival rate as long as placement spreads the load and routing keeps
every member busy.  Each cell grids node count x (placement, routing)
and searches for the largest cluster-wide arrival rate that stays
inside the saturation SLOs, then reports it next to the *theoretical
bound* — the aggregate-disk-bandwidth capacity through Little's law:

    bound(N) = N x (disks x transfer rate / stream rate) / mean view

Measured/bound is the scaling efficiency: how much of the ideal linear
speedup the placement+routing combination delivers (cache effects can
push it past 1.0 at small N; routing imbalance pulls it below).

Each member node is the saturation experiment's small disk-bound array,
so the wall sits inside the searched range at every bench scale, and
every probe is a deterministic :func:`repro.workload.find_max_rate`
search over :class:`~repro.cluster.ClusterConfig` runs — bit-identical
at any ``--jobs`` and cache-hit on re-runs.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, PlacementSpec, RouterSpec
from repro.core.metrics import MB
from repro.experiments.presets import bench_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import default_runner
from repro.experiments.saturation import (
    GRANULARITY,
    SLO,
    saturation_config,
    workload_for,
)
from repro.workload import find_max_rate

#: (placement spec, router spec) combinations gridded per node count.
COMBOS = (
    (PlacementSpec("partitioned"), RouterSpec("locality")),
    (PlacementSpec("replicated"), RouterSpec("least-loaded")),
)

#: Mean viewing time (the Little's-law residence time W).
MEAN_VIEW_S = 30.0


def node_counts() -> tuple[int, ...]:
    """Cluster sizes gridded at the current bench scale."""
    return (1, 2) if bench_scale().name == "quick" else (1, 2, 4)


def theoretical_bound_per_min(node, members: int) -> float:
    """The INRIA-style linear bound: aggregate disk bandwidth through
    Little's law, in arrivals/minute."""
    stream_bytes_per_s = node.video_bit_rate_bps / 8.0
    streams_per_member = (
        node.disk_count * node.drive.transfer_rate_bytes / stream_bytes_per_s
    )
    return members * streams_per_member / MEAN_VIEW_S * 60.0


def cluster() -> ExperimentResult:
    """Max sustainable arrival rate: node count x placement x routing."""
    scale = bench_scale()
    granularity = GRANULARITY[scale.name]
    node = saturation_config()
    runner = default_runner()

    rows = []
    total_runs = 0
    for members in node_counts():
        bound = theoretical_bound_per_min(node, members)
        for placement, routing in COMBOS:
            # The search replaces ``workload`` per probe; seed the base
            # config with the hint-rate workload so it validates (a
            # multi-node cluster rejects the default closed workload).
            config = ClusterConfig(
                node=node,
                nodes=members,
                placement=placement,
                routing=routing,
                workload=workload_for("poisson")(240 * members / 60.0),
            )
            result = find_max_rate(
                config,
                workload_for("poisson"),
                slo=SLO,
                hint=240 * members,
                granularity=granularity,
                low=granularity,
                high=960 * members,
                replications=scale.replications,
                runner=runner,
                tag=(
                    f"cluster n={members} {placement.label()} "
                    f"{routing.label()}"
                ),
            )
            total_runs += result.runs
            at = result.metrics_at_max()
            rows.append(
                (
                    members,
                    placement.label(),
                    routing.label(),
                    result.max_rate_per_min,
                    f"{bound:.0f}",
                    f"{result.max_rate_per_min / bound:.2f}",
                    at.admitted_sessions if at else 0,
                    f"{at.rejection_rate:.1%}" if at else "-",
                    f"{at.startup_p99_s:.2f}" if at else "-",
                    f"{at.events_per_second / 1e3:.0f}k" if at else "-",
                    f"{at.network_mean_bytes_per_s / MB:.1f}" if at else "-",
                    result.runs,
                )
            )
    return ExperimentResult(
        name="cluster",
        title="Cluster scaling: max sustainable arrival rate vs node count",
        headers=(
            "nodes",
            "placement",
            "routing",
            "max rate/min",
            "bound/min",
            "ratio",
            "admitted",
            "rejected",
            "p99 startup",
            "ev/s",
            "net MB/s",
            "runs",
        ),
        rows=tuple(rows),
        notes=(
            "(each member is the saturation array: 2x2 disks, 64MB server "
            "memory, zipf skew 0.2; poisson arrivals, 30s mean view time, "
            "queue limit 16, 10s mean patience; sustainable = zero "
            f"glitches, p99 startup <= {SLO.max_p99_startup_s:g}s, "
            f"rejections <= {SLO.max_rejection_rate:.0%}; bound = "
            "aggregate disk bandwidth / stream rate / mean view (Little's "
            "law), ratio = measured/bound; net MB/s sums the member buses "
            "plus the interconnect (mean over the window); searched in "
            f"{granularity}/min steps up to 960/min per node; "
            f"{total_runs} probe runs, measure window {scale.measure_s:g}s)"
        ),
    )
