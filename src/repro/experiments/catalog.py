"""The registry of named experiments (figures, tables, extra sweeps).

Lives apart from the CLI (``repro.experiments.__main__``) so library
callers — notably :func:`repro.api.run_experiment` — can resolve and
run experiments by name without importing argument-parsing machinery.
"""

from __future__ import annotations

import typing

from repro.experiments import figures, tables
from repro.experiments.availability import availability
from repro.experiments.cluster import cluster
from repro.experiments.faultsweep import faultsweep
from repro.experiments.prefixsweep import prefixsweep
from repro.experiments.resilience import resilience
from repro.experiments.results import ExperimentResult
from repro.experiments.saturation import saturation
from repro.experiments.sharing import sharing

EXPERIMENTS: dict[str, typing.Callable[[], ExperimentResult]] = {
    "fig08": figures.fig08_zipf,
    "fig09": figures.fig09_glitch_curve,
    "fig10": figures.fig10_sched_stripe,
    "fig11": figures.fig11_memory_elevator,
    "fig12": figures.fig12_memory_realtime,
    "fig13": figures.fig13_striping,
    "fig14": figures.fig14_disk_utilization,
    "fig15": figures.fig15_access_frequencies,
    "fig16": figures.fig16_rereference_rate,
    "fig17": figures.fig17_cpu_utilization,
    "fig18": figures.fig18_network_bandwidth,
    "fig19": figures.fig19_pause,
    "table2": tables.table2_scaleup,
    "table3": tables.table3_disk_cost,
    "sec82": figures.sec82_piggyback,
    "faultsweep": faultsweep,
    "availability": availability,
    "saturation": saturation,
    "sharing": sharing,
    "cluster": cluster,
    "prefixsweep": prefixsweep,
    "resilience": resilience,
}


def experiment_names() -> tuple[str, ...]:
    """Every runnable experiment id, in catalog order."""
    return tuple(EXPERIMENTS)


def run_experiment(name: str) -> ExperimentResult:
    """Run one named experiment with the ambient runner and scale.

    Wrap the call in :func:`repro.experiments.runner.using_runner` to
    control caching/parallelism, and :func:`set_bench_scale` (or
    ``REPRO_BENCH_SCALE``) to pick the scale; the defaults are a serial,
    cached run at the default scale.
    """
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {experiment_names()}"
        ) from None
    return driver()
