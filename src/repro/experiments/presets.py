"""Experiment presets: paper-scale and bench-scale configurations.

The original simulator needed up to 10 hours per 64-disk run on a
SPARCstation 10; ours is far faster, but a full max-terminal search per
figure point still adds up.  The bench harness therefore runs, by
default, the paper's exact hardware (Table 1) with a shortened
measurement window and a coarser terminal-count granularity.  Scale is
selected with the ``REPRO_BENCH_SCALE`` environment variable:

* ``quick``   — smallest windows, coarse granularity (smoke-test scale);
* ``default`` — minutes per figure, paper-shaped results;
* ``full``    — the paper's measurement windows and 5-terminal
  granularity (slow; use for final reproduction runs).
"""

from __future__ import annotations

import dataclasses
import os

from repro.core.config import GB, MB, SpiffiConfig
from repro.prefetch.spec import PrefetchSpec
from repro.sched.registry import SchedulerSpec

SCALES = ("quick", "default", "full")


@dataclasses.dataclass(frozen=True)
class BenchScale:
    name: str
    measure_s: float
    start_spread_s: float
    warmup_grace_s: float
    granularity: int
    replications: int
    #: Memory sweep points (aggregate server bytes) for Figures 11-16.
    memory_points: tuple[int, ...]
    #: Stripe-size sweep points (bytes) for Figure 10.
    stripe_points: tuple[int, ...]


_SCALES = {
    "quick": BenchScale(
        name="quick",
        measure_s=20.0,
        start_spread_s=8.0,
        warmup_grace_s=8.0,
        granularity=25,
        replications=1,
        memory_points=(128 * MB, 512 * MB, 4 * GB),
        stripe_points=(256 * 1024, 512 * 1024, 1024 * 1024),
    ),
    "default": BenchScale(
        name="default",
        measure_s=60.0,
        start_spread_s=15.0,
        warmup_grace_s=15.0,
        granularity=10,
        replications=1,
        memory_points=(128 * MB, 256 * MB, 512 * MB, 1 * GB, 2 * GB, 4 * GB),
        stripe_points=(128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024),
    ),
    "full": BenchScale(
        name="full",
        measure_s=300.0,
        start_spread_s=30.0,
        warmup_grace_s=30.0,
        granularity=5,
        replications=2,
        memory_points=(128 * MB, 256 * MB, 512 * MB, 1 * GB, 2 * GB, 4 * GB),
        stripe_points=(128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024),
    ),
}


#: Process-wide scale override installed by ``--scale`` (takes
#: precedence over the ``REPRO_BENCH_SCALE`` environment fallback).
_SCALE_OVERRIDE: str | None = None

#: Accepted spellings: ``paper`` is an alias for ``full`` (the paper's
#: own measurement windows).
SCALE_ALIASES = {"paper": "full"}


def set_bench_scale(name: str | None) -> None:
    """Install (or with None, clear) the active scale, overriding the
    ``REPRO_BENCH_SCALE`` environment variable."""
    global _SCALE_OVERRIDE
    if name is not None:
        name = SCALE_ALIASES.get(name, name)
        if name not in _SCALES:
            raise ValueError(f"scale {name!r} not recognised; choose from {SCALES}")
    _SCALE_OVERRIDE = name


def bench_scale() -> BenchScale:
    """The active scale: the :func:`set_bench_scale` override if
    installed, else ``REPRO_BENCH_SCALE`` (default "default")."""
    if _SCALE_OVERRIDE is not None:
        return _SCALES[_SCALE_OVERRIDE]
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    name = SCALE_ALIASES.get(name, name)
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r} not recognised; choose from {SCALES}"
        )
    return _SCALES[name]


def paper_config(**overrides) -> SpiffiConfig:
    """The paper's base configuration (Table 1) with bench-scale
    simulation windows applied, overridable per experiment."""
    scale = bench_scale()
    defaults = dict(
        measure_s=scale.measure_s,
        start_spread_s=scale.start_spread_s,
        warmup_grace_s=scale.warmup_grace_s,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


# ---------------------------------------------------------------------------
# Canonical algorithm bundles used across the evaluation section
# ---------------------------------------------------------------------------

def elevator_bundle() -> dict:
    """Elevator scheduling with the limited prefetching that suits it.

    §5.2.3: non-real-time schedulers are hurt by aggressive prefetching
    because they cannot distinguish urgent from non-urgent requests, so
    "prefetching is severely limited" with elevator.
    """
    return dict(
        scheduler=SchedulerSpec("elevator"),
        prefetch=PrefetchSpec(
            "standard", processes_per_disk=1, depth=1, pool_share=0.5
        ),
    )


def realtime_bundle(
    priority_classes: int = 3,
    priority_spacing_s: float = 4.0,
    prefetch_mode: str = "realtime",
    max_advance_s: float = 8.0,
) -> dict:
    """Real-time scheduling with the aggressive prefetching it enables.

    Real-time scheduling "can identify and skip prefetches if necessary
    and, therefore, benefits from aggressive prefetching"; real-time
    prefetching "always benefits the real-time disk scheduling algorithm
    and, therefore, these two algorithms are always used together".
    """
    return dict(
        scheduler=SchedulerSpec(
            "realtime",
            priority_classes=priority_classes,
            priority_spacing_s=priority_spacing_s,
        ),
        prefetch=PrefetchSpec(
            prefetch_mode,
            processes_per_disk=4,
            depth=3,
            max_advance_s=max_advance_s,
            # "Unconstrained prefetching" (§7.3): the real-time
            # scheduler can skip prefetches itself, so no pool cap.
            pool_share=1.0,
        ),
    )


# ---------------------------------------------------------------------------
# Search hints: expected max-terminal neighbourhoods (our calibration,
# informed by the paper's numbers) used to seed the boundary search.
# ---------------------------------------------------------------------------

HINTS = {
    "elevator_512k_bigmem": 240,
    "elevator_128k": 180,
    "round_robin": 160,
    "gss_512k": 240,
    "realtime_512k_bigmem": 240,
    "lowmem": 150,
    "nonstriped_zipf": 40,
    "nonstriped_uniform": 90,
    "striped": 220,
    "scaleup_x2": 480,
    "scaleup_x4": 950,
}
