"""Plain-text tables for experiment results (paper-style rows/series)."""

from __future__ import annotations

import os
import typing


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def line(values: typing.Sequence[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths))

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def results_dir() -> str:
    """Directory where benchmark harnesses drop their result tables."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def publish(name: str, text: str) -> str:
    """Print a result table and persist it under benchmarks/results/.

    A scale footer is appended so result files are self-describing:
    the same figure at ``quick`` and ``full`` scale differs materially.
    """
    from repro.experiments.presets import bench_scale

    text = f"{text}\n\n[scale: {bench_scale().name}]"
    print()
    print(text)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
