"""Prefix-cache proxy sweep: prefix length x proxy memory x Zipf skew.

The tentpole question for the proxy tier: how much startup latency
does an edge prefix cache buy, and does offloading startup reads lift
the server's saturation wall?  Each cell runs the saturation array
behind one proxy shape twice over:

* a **reference run** at a fixed arrival rate well under the wall,
  reporting the p99 startup latency and the proxy hit rate customers
  see on an unsaturated system;
* a :func:`repro.workload.find_max_rate` **search** for the largest
  arrival rate the system sustains inside the saturation SLOs.

The grid crosses Zipf skew (flat vs steep popularity) with the proxy
shape: none (the baseline), a shallow 10 s prefix that fits every
title's head in memory, and a deep 60 s prefix that oversubscribes the
budget — once under plain LRU and once under love-prefetch, whose
protection of untouched pre-loaded prefixes is a free ablation of the
server-memory result at the proxy tier.

Every probe is a deterministic run of a pure config, so the sweep is
bit-identical at any ``--jobs`` and cache-hits on re-runs.
"""

from __future__ import annotations

from repro.bufferpool.registry import ReplacementSpec
from repro.core.config import MB
from repro.experiments.presets import bench_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import default_runner, run_grid
from repro.experiments.saturation import (
    GRANULARITY,
    SLO,
    saturation_config,
    workload_for,
)
from repro.proxy import ProxySpec
from repro.workload import find_max_rate

#: Zipf skews gridded: the saturation array's flat default and a steep
#: head-heavy catalog where a popularity-aware pre-load shines.
SKEWS = (0.2, 1.0)

#: Proxy memory budget: 96 stripe blocks — every 10 s prefix of the
#: 8-title catalog fits (80 blocks), a 60 s prefix grid (480) does not.
PROXY_MEMORY = 48 * MB

#: (row label, proxy spec) per shape swept.
PROXIES = (
    ("no-proxy", ProxySpec()),
    ("10s/lru", ProxySpec(prefix_s=10.0, memory_bytes=PROXY_MEMORY)),
    ("60s/lru", ProxySpec(prefix_s=60.0, memory_bytes=PROXY_MEMORY)),
    (
        "60s/love",
        ProxySpec(
            prefix_s=60.0,
            memory_bytes=PROXY_MEMORY,
            replacement=ReplacementSpec("love_prefetch"),
        ),
    ),
)

#: Fixed arrival rate (per minute) of the reference runs: well under
#: the no-proxy wall, so p99 startup reflects the request path, not
#: queueing collapse.
REFERENCE_RATE_PER_MIN = 120.0


def prefixsweep() -> ExperimentResult:
    """Startup latency and saturation shift: proxy shape x Zipf skew."""
    scale = bench_scale()
    granularity = GRANULARITY[scale.name]
    runner = default_runner()
    poisson = workload_for("poisson")

    cells = [
        (skew, label, saturation_config().replace(zipf_skew=skew, proxy=spec))
        for skew in SKEWS
        for label, spec in PROXIES
    ]

    # One batch for every reference run: full executor parallelism.
    reference = run_grid(
        [
            (
                f"prefixsweep ref z={skew} {label}",
                config.replace(
                    workload=poisson(REFERENCE_RATE_PER_MIN / 60.0)
                ),
            )
            for skew, label, config in cells
        ],
        runner=runner,
    )

    rows = []
    total_runs = len(reference)
    baseline_rate: dict[float, float] = {}
    for (skew, label, config), ref in zip(cells, reference):
        result = find_max_rate(
            config.replace(workload=poisson(REFERENCE_RATE_PER_MIN / 60.0)),
            poisson,
            slo=SLO,
            hint=240,
            granularity=granularity,
            low=granularity,
            high=960,
            replications=scale.replications,
            runner=runner,
            tag=f"prefixsweep z={skew} {label}",
        )
        total_runs += result.runs
        if label == "no-proxy":
            baseline_rate[skew] = result.max_rate_per_min
        gain = result.max_rate_per_min / baseline_rate[skew] - 1.0
        rows.append(
            (
                f"{skew:g}",
                label,
                f"{ref.startup_p99_s:.3f}",
                f"{ref.mean_startup_latency_s * 1000:.0f}",
                f"{ref.proxy_hit_rate:.1%}" if ref.proxy_requests else "-",
                f"{ref.proxy_served_bytes / MB:.0f}" if ref.proxy_requests else "-",
                result.max_rate_per_min,
                f"{gain:+.0%}",
                result.runs,
            )
        )

    return ExperimentResult(
        name="prefixsweep",
        title="Proxy prefix cache: startup latency and saturation shift",
        headers=(
            "zipf",
            "proxy",
            "p99 startup",
            "mean ms",
            "hit rate",
            "proxy MB",
            "max rate/min",
            "vs none",
            "runs",
        ),
        rows=tuple(rows),
        notes=(
            "(saturation array — 2x2 disks, 64MB server memory, 8x600s "
            "titles — behind one edge proxy with a 48MB block budget; "
            "reference columns measured at a fixed "
            f"{REFERENCE_RATE_PER_MIN:g}/min poisson workload, 30s mean "
            "views; 10s prefixes all fit the budget, 60s prefixes "
            "oversubscribe it so the pre-load policy and the proxy's "
            "replacement policy (lru vs love-prefetch) decide what stays "
            "resident; sustainable = zero glitches, p99 startup <= "
            f"{SLO.max_p99_startup_s:g}s, rejections <= "
            f"{SLO.max_rejection_rate:.0%}, searched in {granularity}/min "
            f"steps; {total_runs} runs, measure window "
            f"{scale.measure_s:g}s)"
        ),
    )
