"""Shared replication state: the replica directory and read router.

:class:`ReplicationRuntime` is the blackboard the server nodes, the
terminal-facing router, and the rebuild manager all consult:

* *placements* — the layout's static replica placements, overlaid with
  the mutable directory of copies the rebuild manager has moved onto
  surviving disks;
* *routing* — which copy a read should go to.  The router keeps
  **primary affinity**: as long as the primary copy's disk is healthy,
  reads go there, preserving the sequential fragment access that the
  drive read-ahead cache and the prefetcher depend on.  Only when the
  primary's disk is suspect/down/failed does it re-route, to the copy
  with the best (health rank, queue length, disk index) key — no
  randomness, so routing is deterministic;
* *stats* — resettable failover/rebuild counters for metrics.
"""

from __future__ import annotations

import typing

from repro.sim.stats import Tally
from repro.telemetry.trace import FAILOVER_READ

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.layout.base import Layout, Placement
    from repro.replication.health import HealthMonitor
    from repro.replication.spec import ReplicationSpec
    from repro.sim.environment import Environment
    from repro.storage.drive import DiskDrive
    from repro.telemetry.trace import TraceRecorder


class ReplicationStats:
    """Resettable replication accounting for the measurement window."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.failover_reads = 0
        self.remote_replica_reads = 0
        self.rebuild_reads = 0
        self.rebuild_blocks = 0
        self.rebuild_bytes = 0
        self.rebuilds_completed = 0
        self.rebuild_durations = Tally()


class ReplicationRuntime:
    def __init__(
        self,
        env: "Environment",
        spec: "ReplicationSpec",
        layout: "Layout",
        drives: typing.Sequence["DiskDrive"],
        health: "HealthMonitor",
    ) -> None:
        self.env = env
        self.spec = spec
        self.layout = layout
        #: All drives in the fabric, indexed by global disk id.
        self.drives = list(drives)
        self.health = health
        self.stats = ReplicationStats()
        #: Optional :class:`~repro.telemetry.trace.TraceRecorder`.
        self.trace: "TraceRecorder | None" = None
        # Directory overlay: copies the rebuild manager relocated, keyed
        # by (video_id, block, replica_index).  Physical state, so it
        # survives stats resets.
        self._overrides: dict[tuple[int, int, int], "Placement"] = {}

    # ------------------------------------------------------------------
    # Replica directory
    # ------------------------------------------------------------------
    def placements(self, video_id: int, block: int) -> tuple["Placement", ...]:
        """Every copy of a block, rebuild relocations applied."""
        base = self.layout.replica_placements(video_id, block)
        if not self._overrides:
            return base
        return tuple(
            self._overrides.get((video_id, block, index), placement)
            for index, placement in enumerate(base)
        )

    def set_override(
        self, video_id: int, block: int, replica_index: int, placement: "Placement"
    ) -> None:
        self._overrides[(video_id, block, replica_index)] = placement

    @property
    def relocated_copies(self) -> int:
        return len(self._overrides)

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------
    def _route_key(self, placement: "Placement") -> tuple[int, int, int]:
        disk = placement.disk_global
        return (self.health.rank(disk), len(self.drives[disk].scheduler), disk)

    def route(self, video_id: int, block: int) -> "Placement":
        """The copy a fresh read should target (primary affinity)."""
        placements = self.placements(video_id, block)
        primary = placements[0]
        if self.health.rank(primary.disk_global) == 0:
            return primary
        return min(placements, key=self._route_key)

    def read_candidates(
        self, video_id: int, block: int, first: "Placement"
    ) -> list["Placement"]:
        """Failover order for one read: the already-routed copy, then
        every other copy from healthiest/least-loaded down."""
        rest = [
            placement
            for placement in self.placements(video_id, block)
            if placement.disk_global != first.disk_global
        ]
        rest.sort(key=self._route_key)
        return [first, *rest]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def note_failover(self, terminal_id: int, from_disk: int, to_disk: int) -> None:
        self.stats.failover_reads += 1
        if self.trace is not None:  # skip building fields when untraced
            self.record(
                FAILOVER_READ, terminal=terminal_id, from_disk=from_disk, to_disk=to_disk
            )

    def record(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(kind, **fields)

    def reset_stats(self) -> None:
        self.stats.reset()
