"""Background rebuild of lost block copies after a permanent disk failure.

When the health monitor reports a disk FAILED, the manager starts one
rebuild process for that disk.  The process walks every block copy the
dead disk held (``layout.copies_on_disk``), reads a surviving copy and
re-writes it onto a deterministically chosen surviving disk — both as
real requests through the disk model, so the rebuild competes with
foreground streams for head time — and updates the runtime's replica
directory so the router serves the relocated copy from then on.

The process paces itself to ``rebuild_bandwidth_bytes_per_s`` of moved
bytes (read + write combined) per failed disk, the knob that trades
time-to-redundancy against foreground glitches.  Rebuild I/O is tagged
``is_prefetch=True`` with no deadline, so deadline-aware schedulers
treat it as background work; the drive model is read-only, so the write
is modelled as a disk access of equal cost at the target offset.
"""

from __future__ import annotations

import typing

from repro.layout.base import Placement
from repro.storage.request import NO_DEADLINE, DiskRequest
from repro.telemetry.trace import REBUILD_BLOCK, REBUILD_END, REBUILD_START

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.media.library import VideoLibrary
    from repro.replication.runtime import ReplicationRuntime
    from repro.sim.environment import Environment

#: ``terminal_id`` carried by rebuild disk requests.
REBUILD_TERMINAL = -2


class BandwidthPacer:
    """Paces a copy loop to a byte-rate budget.

    Charge every moved byte as the loop goes; :meth:`charge` sleeps
    whenever the cumulative bytes run ahead of ``rate`` × elapsed time
    since construction.  Shared by the per-disk rebuild below and the
    cluster-level re-replication (:mod:`repro.cluster.rebuild`), so
    both trade time-to-redundancy against foreground interference with
    the same arithmetic.
    """

    __slots__ = ("env", "rate", "started", "moved")

    def __init__(self, env: "Environment", rate_bytes_per_s: float) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError(
                f"pacer rate must be positive, got {rate_bytes_per_s}"
            )
        self.env = env
        self.rate = rate_bytes_per_s
        self.started = env.now
        self.moved = 0

    def charge(self, nbytes: int) -> typing.Generator:
        """Generator (``yield from``): account *nbytes* and pace."""
        self.moved += nbytes
        due = self.started + self.moved / self.rate
        if due > self.env.now:
            yield self.env.timeout(due - self.env.now)
        return None


class RebuildManager:
    def __init__(
        self,
        env: "Environment",
        runtime: "ReplicationRuntime",
        library: "VideoLibrary",
        block_size: int,
    ) -> None:
        self.env = env
        self.runtime = runtime
        self.library = library
        self.block_size = block_size
        #: Rebuild processes currently running.
        self.active = 0
        # Bytes re-written per target disk; spreads relocated copies.
        self._placed_bytes = [0] * len(runtime.drives)
        runtime.health.subscribe_failed(self._on_disk_failed)

    def _on_disk_failed(self, disk: int) -> None:
        if not self.runtime.spec.rebuild:
            return
        self.env.process(self._rebuild(disk), name=f"rebuild-{disk}")

    # ------------------------------------------------------------------
    # One disk's rebuild
    # ------------------------------------------------------------------
    def _rebuild(self, disk: int):
        env = self.env
        runtime = self.runtime
        stats = runtime.stats
        layout = runtime.layout
        started = env.now
        self.active += 1
        runtime.record(REBUILD_START, disk=disk)
        # Read + write bytes pace the bandwidth cap.
        pacer = BandwidthPacer(env, runtime.spec.rebuild_bandwidth_bytes_per_s)
        copied = 0
        for video_id, block, replica_index in layout.copies_on_disk(disk):
            placements = runtime.placements(video_id, block)
            if placements[replica_index].disk_global != disk:
                continue  # this copy was already relocated elsewhere
            source = self._pick_source(placements, replica_index)
            if source is None:
                # Every copy is gone; reads of this block fall back to
                # the failover penalty until the end of the run.
                continue
            size = self.library[video_id].schedule(self.block_size).block_bytes(block)
            target_disk = self._pick_target(placements)
            if target_disk is None:
                continue  # no disk can legally hold another copy

            src_drive = runtime.drives[source.disk_global]
            read = DiskRequest(
                env,
                byte_offset=source.byte_offset,
                size=size,
                cylinder=src_drive.geometry.cylinder_of(source.byte_offset),
                deadline=NO_DEADLINE,
                is_prefetch=True,
                terminal_id=REBUILD_TERMINAL,
            )
            src_drive.submit(read)
            yield read.done
            if read.failed:
                continue  # source died mid-rebuild; copy is lost
            stats.rebuild_reads += 1

            tgt_drive = runtime.drives[target_disk]
            offset = min(
                source.byte_offset, max(0, tgt_drive.geometry.capacity_bytes - size)
            )
            write = DiskRequest(
                env,
                byte_offset=offset,
                size=size,
                cylinder=tgt_drive.geometry.cylinder_of(offset),
                deadline=NO_DEADLINE,
                is_prefetch=True,
                terminal_id=REBUILD_TERMINAL,
            )
            tgt_drive.submit(write)
            yield write.done
            if write.failed:
                continue

            stats.rebuild_blocks += 1
            stats.rebuild_bytes += 2 * size
            self._placed_bytes[target_disk] += size
            node, disk_in_node = layout.split_disk_index(target_disk)
            runtime.set_override(
                video_id,
                block,
                replica_index,
                Placement(node, disk_in_node, target_disk, offset),
            )
            if runtime.trace is not None:  # skip building fields when untraced
                runtime.record(
                    REBUILD_BLOCK,
                    disk=disk,
                    video=video_id,
                    block=block,
                    target=target_disk,
                )
            copied += 1
            yield from pacer.charge(2 * size)
        duration = env.now - started
        stats.rebuilds_completed += 1
        stats.rebuild_durations.record(duration)
        self.active -= 1
        runtime.record(REBUILD_END, disk=disk, blocks=copied, duration_s=duration)
        return None

    # ------------------------------------------------------------------
    # Deterministic source/target selection
    # ------------------------------------------------------------------
    def _pick_source(
        self, placements: typing.Sequence[Placement], lost_index: int
    ) -> Placement | None:
        """Healthiest surviving copy to read from (None if all lost)."""
        candidates = [
            placement
            for index, placement in enumerate(placements)
            if index != lost_index
            and not self.runtime.drives[placement.disk_global].failed
        ]
        if not candidates:
            return None
        return min(candidates, key=self.runtime._route_key)

    def _pick_target(self, placements: typing.Sequence[Placement]) -> int | None:
        """Surviving disk to host the new copy: must not already hold a
        copy of the block; least rebuilt-bytes first, then disk index."""
        holding = {placement.disk_global for placement in placements}
        candidates = [
            disk
            for disk, drive in enumerate(self.runtime.drives)
            if not drive.failed and disk not in holding
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda disk: (self._placed_bytes[disk], disk))
