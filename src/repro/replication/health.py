"""Per-disk health states driving replica-aware read routing.

The monitor is a pure observer fed from two sides:

* the :class:`~repro.faults.injector.FaultInjector` reports every disk
  fault as it is applied and reverted (outage → DOWN, permanent failure
  → FAILED, slow I/O → SUSPECT while active);
* the server node reports request timeouts, which mark a disk SUSPECT
  for ``suspect_cooldown_s`` even when no fault has been identified —
  the usual situation in a real system, where the health model sees
  symptoms before causes.

States rank HEALTHY < SUSPECT < DOWN < FAILED; the read router prefers
the lowest rank and breaks ties by queue length.  Permanent failures
additionally fan out to subscribed callbacks (the rebuild manager).
"""

from __future__ import annotations

import math
import typing

from repro.faults.spec import DISK_FAIL, DISK_OUTAGE, DISK_SLOW
from repro.telemetry.trace import HEALTH_CHANGE

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.schedule import FaultEvent
    from repro.sim.environment import Environment
    from repro.telemetry.trace import TraceRecorder

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"
FAILED = "failed"

_RANK = {HEALTHY: 0, SUSPECT: 1, DOWN: 2, FAILED: 3}


class HealthMonitor:
    def __init__(
        self, env: "Environment", disk_count: int, suspect_cooldown_s: float
    ) -> None:
        if disk_count < 1:
            raise ValueError(f"disk_count must be >= 1, got {disk_count}")
        self.env = env
        self.disk_count = disk_count
        self.suspect_cooldown_s = suspect_cooldown_s
        self._slow = [0] * disk_count
        self._down = [0] * disk_count
        self._failed = [False] * disk_count
        self._suspect_until = [-math.inf] * disk_count
        #: Optional :class:`~repro.telemetry.trace.TraceRecorder`.
        self.trace: "TraceRecorder | None" = None
        self._on_failed: list[typing.Callable[[int], None]] = []
        self._on_outage: list[typing.Callable[[int], None]] = []
        self._on_restored: list[typing.Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # State queries (used by the read router)
    # ------------------------------------------------------------------
    def state(self, disk: int) -> str:
        if self._failed[disk]:
            return FAILED
        if self._down[disk] > 0:
            return DOWN
        if self._slow[disk] > 0 or self.env.now <= self._suspect_until[disk]:
            return SUSPECT
        return HEALTHY

    def rank(self, disk: int) -> int:
        """Routing rank: 0 healthy, higher is worse."""
        return _RANK[self.state(disk)]

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def subscribe_failed(self, callback: typing.Callable[[int], None]) -> None:
        """Call *callback(disk)* when a disk fails permanently."""
        self._on_failed.append(callback)

    def subscribe_outage(self, callback: typing.Callable[[int], None]) -> None:
        """Call *callback(index)* when an index transitions into DOWN
        (outage count 0 → 1).  Overlapping outages fire only once."""
        self._on_outage.append(callback)

    def subscribe_restored(self, callback: typing.Callable[[int], None]) -> None:
        """Call *callback(index)* when the last active outage on an
        index is reverted (outage count 1 → 0)."""
        self._on_restored.append(callback)

    def note_timeout(self, disk: int) -> None:
        """A request to *disk* timed out: suspect it for the cooldown."""
        before = self.state(disk)
        self._suspect_until[disk] = self.env.now + self.suspect_cooldown_s
        self._note_change(disk, before)

    def fault_applied(self, event: "FaultEvent") -> None:
        disk = event.target
        if disk < 0:  # network-wide events carry no disk health signal
            return
        before = self.state(disk)
        if event.kind == DISK_SLOW:
            self._slow[disk] += 1
        elif event.kind == DISK_OUTAGE:
            self._down[disk] += 1
            if self._down[disk] == 1:
                self._note_change(disk, before)
                for callback in self._on_outage:
                    callback(disk)
                return
        elif event.kind == DISK_FAIL:
            if self._failed[disk]:
                return  # already dead; do not re-trigger rebuild
            self._failed[disk] = True
            self._note_change(disk, before)
            for callback in self._on_failed:
                callback(disk)
            return
        else:
            return
        self._note_change(disk, before)

    def fault_reverted(self, event: "FaultEvent") -> None:
        disk = event.target
        if disk < 0:
            return
        before = self.state(disk)
        if event.kind == DISK_SLOW:
            self._slow[disk] -= 1
        elif event.kind == DISK_OUTAGE:
            self._down[disk] -= 1
            if self._down[disk] == 0:
                self._note_change(disk, before)
                for callback in self._on_restored:
                    callback(disk)
                return
        else:
            return
        self._note_change(disk, before)

    def _note_change(self, disk: int, before: str) -> None:
        after = self.state(disk)
        if after != before and self.trace is not None:
            self.trace.record(HEALTH_CHANGE, disk=disk, state=after, was=before)
