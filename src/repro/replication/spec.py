"""Replication configuration.

``ReplicationSpec`` follows the declarative-spec idiom of the other
component specs: an immutable value object on
:class:`repro.core.config.SpiffiConfig` from which the replicated
layout, the health-driven read routing, and the background rebuild are
all derived deterministically.

The default spec stores a **single copy** (``factor=1``): no replica
placements exist, no health monitor or router is built, and a run is
bit-identical to one on a build without the replication subsystem.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ReplicationSpec:
    """How many copies of every stripe block exist, and how lost copies
    are rebuilt after a permanent disk failure.

    ``factor`` is the total number of copies (1 = unreplicated).  A
    factor above 1 requires a replication-aware layout (``mirrored`` or
    ``chained``); selecting a single-copy layout raises at config time.

    When a disk fails permanently and ``rebuild`` is set, a background
    process re-copies every lost block from a surviving replica onto a
    surviving disk through the real disk model, pacing itself so the
    rebuild moves at most ``rebuild_bandwidth_bytes_per_s`` (read +
    write bytes combined) — the classic foreground/recovery bandwidth
    trade-off.

    ``suspect_cooldown_s`` is how long a disk stays *suspect* (ranked
    below healthy disks by the read router) after a request to it times
    out without an identified fault.
    """

    factor: int = 1
    rebuild: bool = True
    rebuild_bandwidth_bytes_per_s: float = 2_000_000.0
    suspect_cooldown_s: float = 10.0

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {self.factor}")
        if self.rebuild_bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"rebuild_bandwidth_bytes_per_s must be positive, "
                f"got {self.rebuild_bandwidth_bytes_per_s}"
            )
        if self.suspect_cooldown_s < 0:
            raise ValueError(
                f"suspect_cooldown_s must be >= 0, got {self.suspect_cooldown_s}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any replica machinery is built at all."""
        return self.factor > 1

    def label(self) -> str:
        """Human-readable summary used in benchmark tables."""
        if not self.enabled:
            return "r=1"
        text = f"r={self.factor}"
        if not self.rebuild:
            text += " no-rebuild"
        return text
