"""Replicated striped layouts: mirrored striping and chained declustering.

Both keep the primary copy *exactly* where :class:`StripedLayout` puts
it — same disks, same byte offsets — and append the replica fragments
after every disk's primary fragments.  With ``factor=1`` they are
indistinguishable from plain striping, which is what lets the golden
baseline test hold.

Replica *r* of a block whose primary lives on global disk ``g`` is
stored on disk ``(g + r·step) mod D``:

* **mirrored** striping uses ``step = D / factor`` — the disk set splits
  into ``factor`` equal groups and each group mirrors the next, the
  classic mirrored-declustering arrangement;
* **chained** declustering uses ``step = 1`` — each disk's fragments are
  replicated on its successor (Hsiao & DeWitt), so after a failure the
  surviving neighbour inherits the load and, because the read router
  balances by queue length, part of that inherited load cascades further
  down the chain.
"""

from __future__ import annotations

from repro.layout.base import Placement
from repro.layout.striped import StripedLayout


class ReplicatedStripedLayout(StripedLayout):
    """Striped primary copy plus ``factor - 1`` rotated replica copies."""

    def __init__(
        self,
        video_block_counts: list[int],
        nodes: int,
        disks_per_node: int,
        block_size: int,
        replication_factor: int,
        replica_step: int,
    ) -> None:
        super().__init__(video_block_counts, nodes, disks_per_node, block_size)
        factor = int(replication_factor)
        step = int(replica_step)
        if factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {factor}")
        if factor > self.disk_count:
            raise ValueError(
                f"replication factor {factor} exceeds the "
                f"{self.disk_count} disks available"
            )
        if factor > 1:
            offsets = {(r * step) % self.disk_count for r in range(factor)}
            if len(offsets) != factor:
                raise ValueError(
                    f"replica step {step} maps copies of a block onto the "
                    f"same disk with factor {factor} and {self.disk_count} disks"
                )
        self.replication_factor = factor
        self.replica_step = step
        # Replica fragments are appended after *all* primary fragments so
        # primary byte offsets match StripedLayout exactly.
        # _replica_base[v][r-1][g] = byte offset, on disk shift(g, r), of
        # the replica-r copy of video v's fragment whose primary is on g.
        self._replica_base: list[list[list[int]]] = []
        disk_fill = list(self._disk_used)
        row = self.disk_count
        for count in self.video_block_counts:
            full_rows, rem = divmod(count, row)
            per_replica: list[list[int]] = []
            for r in range(1, factor):
                bases = [0] * row
                for g in range(row):
                    # Blocks land on disk g when block % D == slot(g)
                    # (node-major rotation), so the fragment's true size
                    # depends on the slot, not the global disk index.
                    node, disk_in_node = self.split_disk_index(g)
                    slot = disk_in_node * self.nodes + node
                    fragment_bytes = (
                        full_rows + (1 if slot < rem else 0)
                    ) * block_size
                    target = self.replica_disk(g, r)
                    bases[g] = disk_fill[target]
                    disk_fill[target] += fragment_bytes
                per_replica.append(bases)
            self._replica_base.append(per_replica)
        self._disk_used = disk_fill

    # ------------------------------------------------------------------
    # Replica geometry
    # ------------------------------------------------------------------
    def replica_disk(self, primary_disk: int, replica_index: int) -> int:
        """Global disk holding copy *replica_index* of a block whose
        primary copy lives on *primary_disk* (index 0 = the primary)."""
        return (primary_disk + replica_index * self.replica_step) % self.disk_count

    @property
    def replica_count(self) -> int:
        return self.replication_factor

    def replica_placements(self, video_id: int, block: int) -> tuple[Placement, ...]:
        primary = self.locate(video_id, block)
        if self.replication_factor == 1:
            return (primary,)
        placements = [primary]
        source = primary.disk_global
        row_index = block // self.disk_count
        for r in range(1, self.replication_factor):
            target = self.replica_disk(source, r)
            node, disk_in_node = self.split_disk_index(target)
            offset = (
                self._replica_base[video_id][r - 1][source]
                + row_index * self.block_size
            )
            placements.append(Placement(node, disk_in_node, target, offset))
        return tuple(placements)

    def copies_on_disk(self, disk_global: int):
        """Every block copy stored on one disk, as ``(video_id, block,
        replica_index)`` — what a rebuild must re-create when the disk
        fails.  Deterministic order: by video, then replica index, then
        block."""
        nodes = self.nodes
        for video_id, count in enumerate(self.video_block_counts):
            for r in range(self.replication_factor):
                source = (
                    disk_global - r * self.replica_step
                ) % self.disk_count
                src_node, src_disk_in_node = self.split_disk_index(source)
                slot = src_disk_in_node * nodes + src_node
                for block in range(slot, count, self.disk_count):
                    yield video_id, block, r
