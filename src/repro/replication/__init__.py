"""Replication & recovery: replicated layouts, disk health, failover
routing, and background rebuild (see DESIGN.md "Replication & recovery").

The subsystem is inert by default: ``ReplicationSpec()`` has
``factor=1``, no runtime objects are built, and runs are bit-identical
to a build without the subsystem (the same contract the fault subsystem
keeps, pinned by the golden test in ``tests/faults/test_injection.py``).
"""

from repro.replication.health import (
    DOWN,
    FAILED,
    HEALTHY,
    SUSPECT,
    HealthMonitor,
)
from repro.replication.layouts import ReplicatedStripedLayout
from repro.replication.rebuild import RebuildManager
from repro.replication.runtime import ReplicationRuntime
from repro.replication.spec import ReplicationSpec

__all__ = [
    "DOWN",
    "FAILED",
    "HEALTHY",
    "SUSPECT",
    "HealthMonitor",
    "RebuildManager",
    "ReplicatedStripedLayout",
    "ReplicationRuntime",
    "ReplicationSpec",
]
