"""The runnable-config registry: one ``run()`` for every config type.

``run_simulation`` takes a :class:`~repro.core.config.SpiffiConfig`,
``run_cluster`` a :class:`~repro.cluster.config.ClusterConfig`, and the
experiment runner used to pick between them with ``isinstance`` checks
while the cache layer duck-typed a ``to_cache_dict`` hook — three
different dispatch mechanisms for two config types, none of them open
to a third.  This module replaces all of them with a single registry:

* :func:`register_runnable` — declare how a config type executes and
  how it canonicalises for the run cache.  Called once, at import time,
  in the module that *defines* the config class, so any context that
  can unpickle a config (notably process-pool workers) has its entry
  registered as a side effect of the unpickle import.
* :func:`run` — the one public entry point: ``run(config)`` executes
  any registered config and returns its :class:`RunMetrics`.
* :func:`runnable_cache_dict` — the canonical cache dictionary used by
  ``config_digest`` for any registered config.

The registry maps *exact* types (then falls back to subclass matches)
so a registered subclass can override its parent's executor.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import RunMetrics


@typing.runtime_checkable
class RunnableConfig(typing.Protocol):
    """What every executable config must provide.

    Structural, not nominal: anything with a seed, a measurement
    window, and the frozen-dataclass ``replace``/``describe`` surface
    can be registered and driven through :func:`run`, the experiment
    runner, and the run cache.
    """

    seed: int

    @property
    def measure_s(self) -> float: ...

    def replace(self, **changes) -> "RunnableConfig": ...

    def describe(self) -> str: ...


@dataclasses.dataclass(frozen=True)
class RunnableEntry:
    """How one config type executes and canonicalises."""

    #: Short human name ("system", "cluster"), for error messages.
    kind: str
    config_type: type
    #: ``run(config) -> RunMetrics`` — the executor.
    run: typing.Callable[[typing.Any], "RunMetrics"]
    #: ``cache_dict(config) -> dict`` — canonical form for digests.
    cache_dict: typing.Callable[[typing.Any], dict]


_REGISTRY: dict[type, RunnableEntry] = {}


def register_runnable(
    config_type: type,
    *,
    kind: str,
    run: typing.Callable[[typing.Any], "RunMetrics"],
    cache_dict: typing.Callable[[typing.Any], dict],
) -> None:
    """Register *config_type* as executable through :func:`run`.

    Re-registering the same type replaces its entry (idempotent module
    reloads; tests swapping a stub executor in and out).
    """
    if not isinstance(config_type, type):
        raise TypeError(f"config_type must be a class, got {config_type!r}")
    if not kind:
        raise ValueError("kind must be a non-empty string")
    _REGISTRY[config_type] = RunnableEntry(
        kind=kind, config_type=config_type, run=run, cache_dict=cache_dict
    )


def runnable_kinds() -> tuple[str, ...]:
    """Registered config kinds, sorted (for error messages and docs)."""
    return tuple(sorted(entry.kind for entry in _REGISTRY.values()))


def runnable_entry(config: RunnableConfig) -> RunnableEntry:
    """The registry entry for *config* (exact type, then subclass)."""
    entry = _REGISTRY.get(type(config))
    if entry is not None:
        return entry
    for registered, candidate in _REGISTRY.items():
        if isinstance(config, registered):
            return candidate
    raise TypeError(
        f"{type(config).__name__} is not a registered runnable config "
        f"(registered kinds: {', '.join(runnable_kinds()) or 'none'}); "
        "declare it with repro.api.register_runnable"
    )


def run(config: RunnableConfig) -> "RunMetrics":
    """Execute any registered config and return its metrics.

    The single front door: dispatches ``SpiffiConfig`` to the
    standalone system, ``ClusterConfig`` to the cluster, and any
    user-registered config to its declared executor.
    """
    return runnable_entry(config).run(config)


def runnable_cache_dict(config: RunnableConfig) -> dict:
    """Canonical cache dictionary for any registered config."""
    return runnable_entry(config).cache_dict(config)
