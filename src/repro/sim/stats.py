"""Statistics collectors for simulation outputs.

All collectors support ``reset(now)`` so measurement can begin after a
warmup period, matching the paper's methodology ("once all the terminals
have begun watching videos, the simulator begins collecting performance
and utilization data").
"""

from __future__ import annotations

import math


class Tally:
    """Streaming count/mean/min/max/variance of observed samples."""

    def __init__(self) -> None:
        self.reset()

    def reset(self, now: float | None = None) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tally(n={self.count}, mean={self.mean:.4g})"


class Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Jain & Chlamtac's piecewise-parabolic estimator (CACM 1985)
    maintains five markers whose heights converge on the requested
    quantile without storing samples — O(1) memory per percentile, so a
    run can track p50/p95/p99 startup latency over millions of sessions.
    Exact (order-statistic) for the first five observations, then
    approximate; accuracy is typically well under a percent of the
    distribution's scale for unimodal data.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.reset()

    def reset(self, now: float | None = None) -> None:
        self.count = 0
        #: Marker heights (first five observations until primed).
        self._q: list[float] = []
        #: Actual marker positions (1-based ranks).
        self._n = [1, 2, 3, 4, 5]
        #: Desired marker positions and their per-sample increments.
        p = self.p
        self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def record(self, value: float) -> None:
        self.count += 1
        q = self._q
        if self.count <= 5:
            q.append(value)
            q.sort()
            return
        n = self._n
        np_ = self._np
        # Locate the cell holding the new observation, adjusting the
        # extreme markers if it falls outside the current range.
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            np_[i] += self._dn[i]
        # Nudge the three interior markers toward their desired
        # positions, parabolic where the neighbour spacing allows it.
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (d <= -1.0 and n[i - 1] - n[i] < -1):
                sign = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, sign)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, sign: int) -> float:
        q, n = self._q, self._n
        return q[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: int) -> float:
        q, n = self._q, self._n
        return q[i] + sign * (q[i + sign] - q[i]) / (n[i + sign] - n[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any sample)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            # Exact nearest-rank order statistic while unprimed.
            rank = max(1, math.ceil(self.p * self.count))
            return self._q[rank - 1]
        return self._q[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Quantile(p={self.p}, n={self.count}, value={self.value:.4g})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity.

    Feed it level changes via :meth:`update`; it integrates the level
    over time.  Used for queue lengths and utilizations.
    """

    def __init__(self, now: float = 0.0, level: float = 0.0) -> None:
        self._level = level
        self._last = now
        self._area = 0.0
        self._start = now
        self.maximum = level

    def update(self, now: float, level: float) -> None:
        self._area += self._level * (now - self._last)
        self._last = now
        self._level = level
        if level > self.maximum:
            self.maximum = level

    def add(self, now: float, delta: float) -> None:
        self.update(now, self._level + delta)

    @property
    def level(self) -> float:
        return self._level

    def mean(self, now: float) -> float:
        area = self._area + self._level * (now - self._last)
        elapsed = now - self._start
        return area / elapsed if elapsed > 0 else self._level

    def reset(self, now: float) -> None:
        self._area = 0.0
        self._last = now
        self._start = now
        self.maximum = self._level


class BusyTracker:
    """Tracks the busy fraction of a device (disk, CPU, wire)."""

    def __init__(self, now: float = 0.0) -> None:
        self._busy_depth = 0
        self._busy_since: float | None = None
        self._busy_time = 0.0
        self._start = now

    def begin(self, now: float) -> None:
        if self._busy_depth == 0:
            self._busy_since = now
        self._busy_depth += 1

    def end(self, now: float) -> None:
        self._busy_depth -= 1
        if self._busy_depth < 0:
            raise ValueError("BusyTracker.end() without matching begin()")
        if self._busy_depth == 0:
            self._busy_time += now - self._busy_since
            self._busy_since = None

    def busy_time(self, now: float) -> float:
        busy = self._busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return busy

    def utilization(self, now: float) -> float:
        elapsed = now - self._start
        return self.busy_time(now) / elapsed if elapsed > 0 else 0.0

    def reset(self, now: float) -> None:
        self._busy_time = 0.0
        self._start = now
        if self._busy_since is not None:
            self._busy_since = now


class WindowedRate:
    """Peak and mean rate of a byte/event stream over fixed windows.

    Used for the paper's "peak aggregate network bandwidth" (Figure 18):
    bytes are recorded as they cross the wire; the peak is the largest
    per-window total divided by the window length.
    """

    def __init__(self, window: float = 1.0, now: float = 0.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._start = now
        self._current_index = 0
        self._current_total = 0.0
        self._peak_total = 0.0
        self._grand_total = 0.0

    def record(self, now: float, amount: float) -> None:
        index = int((now - self._start) / self.window)
        if index != self._current_index:
            if self._current_total > self._peak_total:
                self._peak_total = self._current_total
            self._current_index = index
            self._current_total = 0.0
        self._current_total += amount
        self._grand_total += amount

    @property
    def peak_rate(self) -> float:
        total = max(self._peak_total, self._current_total)
        return total / self.window

    def mean_rate(self, now: float) -> float:
        elapsed = now - self._start
        return self._grand_total / elapsed if elapsed > 0 else 0.0

    @property
    def total(self) -> float:
        return self._grand_total

    def reset(self, now: float) -> None:
        self._start = now
        self._current_index = 0
        self._current_total = 0.0
        self._peak_total = 0.0
        self._grand_total = 0.0
