"""Shared-resource primitives: semaphore-style resources, stores, gates."""

from __future__ import annotations

import typing
from heapq import heappop, heappush
from collections import deque

from repro.sim.environment import Environment
from repro.sim.errors import SimError
from repro.sim.events import Event


class Request(Event):
    """Pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource (e.g. a CPU) with FIFO or priority queuing.

    Usage from a process::

        req = cpu.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            cpu.release(req)
    """

    __slots__ = (
        "env",
        "capacity",
        "_in_use",
        "_waiting",
        "_seq",
        "_grants",
        "_busy_since",
        "_busy_time",
    )

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: list[tuple[int, int, Request]] = []
        self._seq = 0
        # Statistics.
        self._grants = 0
        self._busy_since: float | None = None
        self._busy_time = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim one unit; the returned event fires when granted.

        Lower *priority* values are granted first; ties are FIFO.
        """
        req = Request(self, priority)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._seq += 1
            heappush(self._waiting, (priority, self._seq, req))
        return req

    def release(self, request: Request) -> None:
        """Return one unit and grant the next waiter, if any."""
        if request.resource is not self:
            raise SimError("release() of a request belonging to another resource")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None
        if self._waiting:
            _, _, nxt = heappop(self._waiting)
            self._grant(nxt)

    def _grant(self, request: Request) -> None:
        self._in_use += 1
        self._grants += 1
        if self._busy_since is None:
            self._busy_since = self.env.now
        request.succeed()

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of time at least one unit was in use."""
        busy = self._busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        total = elapsed if elapsed is not None else self.env.now
        return busy / total if total > 0 else 0.0

    def reset_stats(self) -> None:
        self._busy_time = 0.0
        self._grants = 0
        if self._busy_since is not None:
            self._busy_since = self.env.now


class StoreGet(Event):
    """Pending retrieval from a store; fires with the item."""

    __slots__ = ()


class Store:
    """An unbounded FIFO mailbox of items.

    ``put`` never blocks; ``get`` returns an event that fires with the
    oldest item (immediately, if one is available).
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> typing.Sequence:
        """Read-only view of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: object) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> StoreGet:
        event = StoreGet(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def remove(self, predicate: typing.Callable[[object], bool]) -> list:
        """Remove and return all queued items matching *predicate*."""
        kept: deque = deque()
        removed: list = []
        for item in self._items:
            if predicate(item):
                removed.append(item)
            else:
                kept.append(item)
        self._items = kept
        return removed


class PriorityStore(Store):
    """A store whose ``get`` returns the smallest item first.

    Items must be orderable (tuples of ``(sort_key, seq, payload)`` work
    well).  Used for deadline-ordered prefetch queues.
    """

    __slots__ = ("_heap",)

    def __init__(self, env: Environment) -> None:
        super().__init__(env)
        self._heap: list = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> typing.Sequence:
        return tuple(sorted(self._heap))

    def put(self, item: object) -> None:
        if self._getters:
            # Even with waiters, respect ordering against queued items.
            if self._heap and self._heap[0] < item:
                heappush(self._heap, item)
                item = heappop(self._heap)
            self._getters.popleft().succeed(item)
        else:
            heappush(self._heap, item)

    def get(self) -> StoreGet:
        event = StoreGet(self.env)
        if self._heap:
            event.succeed(heappop(self._heap))
        else:
            self._getters.append(event)
        return event

    def peek(self) -> object:
        if not self._heap:
            raise SimError("peek() on an empty PriorityStore")
        return self._heap[0]


class Gate:
    """A broadcast condition: processes wait; ``open()`` wakes them all.

    Unlike an :class:`Event`, a gate is reusable — each ``open()``
    releases the current crowd of waiters and re-arms.
    """

    __slots__ = ("env", "_waiters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        event = Event(self.env)
        self._waiters.append(event)
        return event

    def open(self, value: object = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
        return len(waiters)
