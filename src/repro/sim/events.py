"""Core event types for the process-oriented simulation kernel.

The kernel follows the design of CSIM (which the paper's simulator used)
and SimPy: simulated activities are Python generator functions that
``yield`` events; the :class:`~repro.sim.environment.Environment` resumes
them when those events fire.
"""

from __future__ import annotations

import typing

from repro.sim.errors import EventLifecycleError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

#: Sentinel for "no value yet".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    An event moves through three states:

    1. *untriggered* — freshly created;
    2. *triggered* — :meth:`succeed` or :meth:`fail` has been called and
       the event is scheduled on the event queue;
    3. *processed* — its callbacks have run and its value is final.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables ``(event) -> None`` run when the event is processed.
        #: ``None`` once the event has been processed.
        self.callbacks: list | None = []
        self._value: object = _PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run and :attr:`value` is final."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        if self._value is _PENDING:
            raise EventLifecycleError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have *exception* thrown at their yield
        point.  If nobody is waiting, the exception propagates out of
        :meth:`Environment.step` to surface bugs loudly.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a dict mapping the fired events (so far) to their values.
    """

    def __init__(self, env: "Environment", events: typing.Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._on_fire(event)
                break
            event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed({e: e.value for e in self._events if e.processed and e.ok})


class AllOf(Event):
    """Fires when every one of several events has fired.

    The value is a dict mapping each event to its value.
    """

    def __init__(self, env: "Environment", events: typing.Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = 0
        for event in self._events:
            if not event.processed:
                self._remaining += 1
                event.callbacks.append(self._on_fire)
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})
