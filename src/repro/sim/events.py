"""Core event types for the process-oriented simulation kernel.

The kernel follows the design of CSIM (which the paper's simulator used)
and SimPy: simulated activities are Python generator functions that
``yield`` events; the :class:`~repro.sim.environment.Environment` resumes
them when those events fire.

Hot-path notes: every simulated disk I/O, network transfer, and frame
consumed bottoms out in a handful of ``Timeout``/``Event`` schedules, so
this module trades a little indirection for speed — ``__slots__``
everywhere, queue pushes inlined into the trigger methods as a single
call through the environment's pre-bound ``_push`` (the C ``heappush``
itself for the default heap backend; see
:mod:`repro.sim.eventqueue`) instead of routed through
``Environment._schedule``, and condition values built lazily.  All of
it is pinned bit-identical by the golden-digest tests in
``tests/sim/test_golden_digest.py`` and by the cross-backend
differential harness in ``tests/sim/harness.py``.
"""

from __future__ import annotations

import typing

from repro.sim.errors import EventLifecycleError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

#: Scheduling priorities: URGENT events at the same timestamp are
#: processed before NORMAL ones.  Used for interrupt delivery.  Defined
#: here (and re-exported by ``repro.sim.environment``) so the inlined
#: scheduling below needs no import cycle.
URGENT = 0
NORMAL = 1

#: Sentinel for "no value yet".
_PENDING = object()

#: Sentinel for "triggered, value not materialised yet" (condition
#: events build their value dicts lazily on first access).
_UNRESOLVED = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    An event moves through three states:

    1. *untriggered* — freshly created;
    2. *triggered* — :meth:`succeed` or :meth:`fail` has been called and
       the event is scheduled on the event queue;
    3. *processed* — its callbacks have run and its value is final.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables ``(event) -> None`` run when the event is processed.
        #: ``None`` once the event has been processed.
        self.callbacks: list | None = []
        self._value: object = _PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run and :attr:`value` is final."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        if self._value is _PENDING:
            raise EventLifecycleError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        env._push((env._now, NORMAL, env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have *exception* thrown at their yield
        point.  If nobody is waiting, the exception propagates out of
        :meth:`Environment.step` to surface bugs loudly.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise EventLifecycleError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq += 1
        env._push((env._now, NORMAL, env._seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # The single hottest constructor in the simulator: every frame
        # consumed, disk transfer, and think pause makes one.  The
        # ``Event.__init__`` + ``succeed``-style indirection is inlined
        # flat; the (time, priority, seq) tuple is identical to what
        # ``Environment._schedule`` would have pushed.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        env._seq += 1
        env._push((env._now + delay, NORMAL, env._seq, self))


class Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`.

    The value dict over the constituent events is *not* built when the
    condition triggers: most waiters (``yield env.any_of([...])`` racing
    a grant against a timeout) never look at it.  Triggering records
    which events to include — membership is decided at trigger time, so
    semantics match the old eager build exactly — and the dict is
    materialised on first :attr:`value` access.
    """

    __slots__ = ("_events", "_fired")

    def __init__(self, env: "Environment", events: typing.Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._fired: list | None = None

    @property
    def value(self) -> object:
        if self._value is _UNRESOLVED:
            self._value = {e: e._value for e in self._fired}
        if self._value is _PENDING:
            raise EventLifecycleError(f"value of {self!r} is not yet available")
        return self._value

    def _trigger(self, fired: list) -> None:
        """Succeed with the lazily-built dict over *fired*."""
        self._ok = True
        self._value = _UNRESOLVED
        self._fired = fired
        env = self.env
        env._seq += 1
        env._push((env._now, NORMAL, env._seq, self))


class AnyOf(Condition):
    """Fires when the first of several events fires.

    The value is a dict mapping the fired events (so far) to their values.
    An event that was already processed when the condition is composed
    counts as fired — including a processed *failure*, which fails the
    condition just as a post-composition failure would.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", events: typing.Sequence[Event]) -> None:
        super().__init__(env, events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed: fires now
                self._on_fire(event)
                break
            event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._trigger([e for e in self._events if e.callbacks is None and e._ok])


class AllOf(Condition):
    """Fires when every one of several events has fired.

    The value is a dict mapping each event to its value.  If any
    constituent fails — even one that was already processed-and-failed
    when the condition was composed — the condition fails with that
    exception instead of succeeding.
    """

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", events: typing.Sequence[Event]) -> None:
        super().__init__(env, events)
        self._remaining = 0
        for event in self._events:
            if event.callbacks is None:  # already processed
                if not event._ok:
                    event._defused = True
                    self.fail(event._value)
                    return
            else:
                self._remaining += 1
                event.callbacks.append(self._on_fire)
        if self._remaining == 0:
            self._trigger(self._events)

    def _on_fire(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._trigger(self._events)
