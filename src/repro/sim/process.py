"""Generator-driven simulated processes."""

from __future__ import annotations

import types
import typing

from repro.sim.errors import Interrupt, SimError
from repro.sim.events import _PENDING, _UNRESOLVED, Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Process(Event):
    """A simulated activity driven by a Python generator.

    The generator yields :class:`Event` instances; the process sleeps
    until each yielded event fires, then resumes with the event's value
    (or has the event's exception thrown at the yield point).

    A ``Process`` is itself an :class:`Event` that succeeds with the
    generator's return value when it finishes, so processes can wait for
    each other simply by yielding them.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: typing.Generator,
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, types.GeneratorType):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if not
        #: started or already finished).
        self._target: Event | None = None
        self.name = name or generator.__name__
        # Kick the process off via an immediately-scheduled bootstrap event.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._value = None
        env._schedule(bootstrap)
        self._target = bootstrap

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupt is delivered immediately (before any further
        simulated time passes).  Interrupting a finished process is an
        error; interrupting a process waiting on an event removes it
        from that event's callbacks.
        """
        if self.triggered:
            raise SimError(f"cannot interrupt finished process {self.name!r}")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        # Deliver via an immediate event carrying the Interrupt.
        delivery = Event(self.env)
        delivery._ok = False
        delivery._value = Interrupt(cause)
        delivery._defused = True
        delivery.callbacks.append(self._resume)
        self.env._schedule(delivery, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome.

        Runs once per processed event a process waits on — a kernel hot
        path — so event state is read through slots (``_ok``/``_value``)
        rather than properties; only lazily-valued condition events pay
        the :attr:`Event.value` materialisation.
        """
        if self._value is not _PENDING:
            # The process already finished: the only way a callback can
            # still reach it is a stale interrupt delivery scheduled in
            # the same timestep the generator completed.  Dropping it
            # here keeps concurrent interrupt+finish from throwing into
            # an exhausted generator.
            return
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                value = event._value
                if value is _UNRESOLVED:
                    value = event.value  # materialise a condition's dict
                result = self._generator.send(value)
            else:
                # The exception is being delivered into a process; it is
                # that process's job to handle or propagate it.
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self._target = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(result, Event):
            exc = SimError(
                f"process {self.name!r} yielded {result!r}, which is not an Event"
            )
            self._generator.throw(exc)
            return
        if result.callbacks is not None:
            result.callbacks.append(self._resume)
            self._target = result
        else:
            # Already processed: resume immediately with its final value
            # (via the property, which materialises lazy condition dicts).
            immediate = Event(env)
            immediate._ok = result._ok
            immediate._value = result.value
            if not result._ok:
                immediate._defused = True
            immediate.callbacks.append(self._resume)
            env._schedule(immediate, priority=0)
            self._target = immediate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} at {id(self):#x}>"
