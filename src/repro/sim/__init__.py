"""Process-oriented discrete-event simulation kernel.

A from-scratch substitute for the CSIM/C++ simulation language used by
the original SPIFFI simulator: simulated activities are Python
generators that yield :class:`Event` objects to an :class:`Environment`.
"""

from repro.sim.environment import Environment, NORMAL, URGENT
from repro.sim.errors import EventLifecycleError, Interrupt, SimError, StopSimulation
from repro.sim.eventqueue import (
    CalendarEventQueue,
    HeapEventQueue,
    SimSpec,
    event_queue_names,
    register_event_queue,
)
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Gate, PriorityStore, Resource, Store
from repro.sim.rng import DiscreteSampler, RandomSource, zipf_weights
from repro.sim.stats import BusyTracker, Quantile, Tally, TimeWeighted, WindowedRate

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyTracker",
    "CalendarEventQueue",
    "DiscreteSampler",
    "Environment",
    "Event",
    "EventLifecycleError",
    "Gate",
    "HeapEventQueue",
    "Interrupt",
    "NORMAL",
    "PriorityStore",
    "Process",
    "Quantile",
    "RandomSource",
    "Resource",
    "SimError",
    "SimSpec",
    "StopSimulation",
    "Store",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "URGENT",
    "WindowedRate",
    "event_queue_names",
    "register_event_queue",
    "zipf_weights",
]
