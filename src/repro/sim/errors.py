"""Exception types used by the simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation kernel errors."""


class EventLifecycleError(SimError):
    """An event was succeeded/failed twice, or misused after processing."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current yield
    point and may catch it to handle the interruption (e.g. a video
    terminal being told to pause mid-playback).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value
