"""Deterministic random-number sources for the simulator.

Every stochastic component draws from its own named stream so that, e.g.,
changing the number of terminals does not perturb the frame sizes of the
videos.  All streams derive deterministically from one master seed.
"""

from __future__ import annotations

import hashlib
import math
import random


class RandomSource:
    """A seeded random stream with the distributions the paper needs."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def exponential(self, mean: float) -> float:
        """Exponentially distributed value with the given mean."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def poisson(self, mean: float) -> int:
        """Poisson-distributed count with the given mean (Knuth's method)."""
        if mean < 0:
            raise ValueError(f"poisson mean must be >= 0, got {mean}")
        if mean == 0:
            return 0
        limit = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > limit:
            count += 1
            product *= self._random.random()
        return count

    def choice(self, sequence):
        return self._random.choice(sequence)

    def shuffle(self, sequence: list) -> None:
        self._random.shuffle(sequence)

    def spawn(self, label: str) -> "RandomSource":
        """Create an independent child stream identified by *label*.

        Uses a stable hash (not Python's randomized ``hash``) so that
        runs are reproducible across interpreter invocations.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return RandomSource(child_seed)


def zipf_weights(count: int, skew: float) -> list[float]:
    """Normalised Zipfian access probabilities for ranks 1..count.

    ``p(i) ∝ 1 / i**skew``; ``skew == 0`` degenerates to uniform.
    Matches the paper's Figure 8 (z = 0.5, 1.0, 1.5).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    raw = [1.0 / math.pow(rank, skew) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


class DiscreteSampler:
    """Samples indices 0..n-1 with fixed probabilities via inverse CDF."""

    def __init__(self, weights: list[float], rng: RandomSource) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        total = sum(weights)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            weights = [w / total for w in weights]
        self.weights = list(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            self._cdf.append(acc)
        self._cdf[-1] = 1.0
        self._rng = rng

    def sample(self) -> int:
        u = self._rng.uniform()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo
