"""Pluggable event-queue backends for the simulation kernel.

The :class:`~repro.sim.environment.Environment` stores pending events as
``(time, priority, seq, Event)`` tuples in an *event queue*.  The queue
is a seam: any object satisfying the small :class:`EventQueue` contract
can back the kernel, selected at config time through a registry-backed
:class:`SimSpec` (the same idiom as ``LayoutSpec`` et al.).

Two backends are built in:

* ``heap`` (:class:`HeapEventQueue`, the default) — a binary heap via
  the C-implemented :mod:`heapq`.  Unbeatable at small queue depths;
  ``O(log n)`` per operation with growing cache pressure as the pending
  set grows.
* ``calendar`` (:class:`CalendarEventQueue`) — a calendar queue / time-
  bucketed event list: ``O(1)`` amortized insert and extract through
  time-sliced buckets with adaptive bucket-width resizing.  Its best
  case is exactly the timer-storm-like mix of cluster-scale runs:
  tens of thousands of pending timeouts spread over a bounded horizon.

Whichever backend is selected, the execution order is identical — the
total order is the ``(time, priority, seq)`` tuple order, and ``seq``
is unique — and the differential/property/golden harness in
``tests/sim`` pins the backends bit-identical to each other and to the
naive reference interpreter.

Contract (duck-typed; see also the specialized drain loops in
``Environment.run`` which inline the built-in backends' internals):

``push(item)``
    Insert one ``(time, priority, seq, Event)`` tuple.  ``time`` is
    never in the past of the last popped item.
``pop()``
    Remove and return the minimum item (tuple order); raise
    ``IndexError`` when empty.
``peek_time()``
    The minimum item's time without removing it, ``float("inf")`` when
    empty.  May cost more than ``pop`` for bucketed backends.
``__len__`` / ``__bool__``
    Pending item count / emptiness.  ``__len__`` may be ``O(buckets)``;
    ``__bool__`` must be cheap.
"""

from __future__ import annotations

import dataclasses
import typing
from heapq import heappop, heappush

__all__ = [
    "CalendarEventQueue",
    "EventQueue",
    "HeapEventQueue",
    "SimSpec",
    "event_queue_names",
    "register_event_queue",
]

_INFINITY = float("inf")

#: Sentinel slot index ordering before every representable slot.
_BEFORE_ALL_SLOTS = -(2**63)


class EventQueue(typing.Protocol):  # pragma: no cover - typing helper
    """Structural type of a kernel event queue (see module docstring)."""

    def push(self, item: tuple) -> None: ...

    def pop(self) -> tuple: ...

    def peek_time(self) -> float: ...

    def __len__(self) -> int: ...


class HeapEventQueue:
    """The default backend: a binary heap over a plain list.

    The storage is an *exact* ``list`` exposed as ``_heap`` rather than
    a list subclass: the C ``heapq`` functions run measurably (~10%)
    faster on exact lists, and ``Environment`` binds ``heappush``
    straight onto the backing list for the hot constructors and drains
    it inline with zero per-event method calls, exactly as the pre-seam
    kernel did.  The wrapper methods exist for the interface surface
    (``peek``/``step``/``__repr__`` and any non-inlined caller).
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list = []

    def push(self, item: tuple) -> None:
        heappush(self._heap, item)

    def pop(self) -> tuple:  # noqa: A003 - the EventQueue contract name
        return heappop(self._heap)

    def peek_time(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INFINITY

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapEventQueue len={len(self._heap)}>"


class CalendarEventQueue:
    """A calendar queue: time-sliced buckets with an active sorted run.

    Structure
    ---------
    * ``_buckets`` maps integer slot indices (``int(time / width)``) to
      unsorted lists of pending items; ``_slots`` is a heap of the
      occupied slot indices.  An insert is a dict lookup plus a C-level
      ``list.append`` — O(1).
    * ``_cur`` is the *active* bucket: when the earliest slot drains
      into it, it is sorted **descending** once (C timsort) so extracts
      are ``list.pop()`` off the tail — O(1), cache-hot.
    * ``_extra`` is a small heap catching inserts that land at or
      behind the active slot (zero-delay events, URGENT interrupt
      deliveries at ``now``): each extract takes whichever of
      ``_extra[0]`` / ``_cur[-1]`` is smaller, preserving the global
      ``(time, priority, seq)`` order exactly.
    * ``_far`` is a heap for unrepresentable times (``inf``), merged
      only when everything finite has drained.

    Ordering holds structurally: the slot map is monotone in time, so
    every item in a future bucket sorts after every item in the active
    run, and the ``_extra`` tie-break handles the rest.

    Adaptive width
    --------------
    With ``bucket_width_s=0`` (the default) the width starts at 1 s and
    is re-estimated from the observed mean occupancy every
    ``resize_interval`` bucket activations — or every
    ``32 * target_occupancy`` drained items, whichever comes first, so
    a grossly oversized width self-corrects within a couple of giant
    buckets — targeting ``target_occupancy`` items per bucket; when the ideal width drifts beyond 2x in either
    direction the pending set is redistributed (O(n), amortized).  Both
    the trigger and the new width are pure functions of the event
    sequence, so runs stay bit-deterministic — and extraction order is
    width-independent anyway, which the isolation property tests pin
    across degenerate widths.
    """

    __slots__ = (
        "_width",
        "_inv_width",
        "_buckets",
        "_slots",
        "_cur",
        "_cur_slot",
        "_extra",
        "_far",
        "_adaptive",
        "_target_occupancy",
        "_resize_interval",
        "_resize_drained",
        "_advances",
        "_drained",
    )

    #: Default items-per-bucket the adaptive resize steers toward.  The
    #: empirical sweet spot for CPython: wide enough that slot-heap and
    #: dict churn amortize away, narrow enough that the active run's
    #: sort and the ``_extra`` merges stay cheap.
    TARGET_OCCUPANCY = 32

    #: Bucket activations between occupancy re-estimates.
    RESIZE_INTERVAL = 512

    def __init__(
        self,
        bucket_width_s: float = 0.0,
        *,
        target_occupancy: int | None = None,
        resize_interval: int | None = None,
    ) -> None:
        if not bucket_width_s >= 0.0 or bucket_width_s == _INFINITY:
            raise ValueError(
                f"bucket width must be a finite value >= 0 (0 = adaptive), "
                f"got {bucket_width_s!r}"
            )
        self._adaptive = bucket_width_s == 0.0
        self._width = bucket_width_s if bucket_width_s > 0.0 else 1.0
        self._inv_width = 1.0 / self._width
        self._buckets: dict[int, list] = {}
        self._slots: list[int] = []
        self._cur: list = []
        self._cur_slot = _BEFORE_ALL_SLOTS
        self._extra: list = []
        self._far: list = []
        self._target_occupancy = (
            self.TARGET_OCCUPANCY if target_occupancy is None else target_occupancy
        )
        self._resize_interval = (
            self.RESIZE_INTERVAL if resize_interval is None else resize_interval
        )
        # Second re-estimate trigger: total items drained since the last
        # estimate.  Without it a badly oversized width (e.g. the 1 s
        # start against tens of thousands of sub-second timers) packs
        # the whole pending set into a handful of giant buckets and the
        # activation-count trigger never fires.
        self._resize_drained = 32 * self._target_occupancy
        self._advances = 0
        self._drained = 0

    # ------------------------------------------------------------------
    # The EventQueue contract
    # ------------------------------------------------------------------
    def push(self, item: tuple) -> None:
        try:
            slot = int(item[0] * self._inv_width)
        except (OverflowError, ValueError):
            # time == inf: parked until everything finite has drained.
            heappush(self._far, item)
            return
        if slot > self._cur_slot:
            try:
                self._buckets[slot].append(item)
            except KeyError:
                self._buckets[slot] = [item]
                heappush(self._slots, slot)
        else:
            heappush(self._extra, item)

    def pop(self) -> tuple:  # noqa: A003 - the EventQueue contract name
        cur = self._cur
        if cur:
            extra = self._extra
            if extra and extra[0] < cur[-1]:
                return heappop(extra)
            return cur.pop()
        if self._extra:
            return heappop(self._extra)
        if self._slots:
            self._advance()
            return self._cur.pop()
        if self._far:
            return heappop(self._far)
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> float:
        if self._cur:
            extra = self._extra
            head = self._cur[-1]
            if extra and extra[0] < head:
                return extra[0][0]
            return head[0]
        if self._extra:
            return self._extra[0][0]
        if self._slots:
            return min(self._buckets[self._slots[0]])[0]
        if self._far:
            return self._far[0][0]
        return _INFINITY

    def __len__(self) -> int:
        return (
            len(self._cur)
            + len(self._extra)
            + len(self._far)
            + sum(len(bucket) for bucket in self._buckets.values())
        )

    def __bool__(self) -> bool:
        return bool(self._cur or self._extra or self._slots or self._far)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarEventQueue len={len(self)} width={self._width:g} "
            f"buckets={len(self._buckets)}>"
        )

    # ------------------------------------------------------------------
    # Internals (also driven directly by Environment's inlined loop)
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Activate the earliest occupied bucket as the sorted run.

        Callers guarantee ``_cur`` and ``_extra`` are empty and
        ``_slots`` is not.  Sorted descending so the run drains via
        ``list.pop()``; the resize estimate piggybacks here so its cost
        is per-bucket, never per-event.
        """
        if self._adaptive and (
            self._advances >= self._resize_interval
            or self._drained >= self._resize_drained
        ):
            self._maybe_resize()
        slot = heappop(self._slots)
        bucket = self._buckets.pop(slot)
        bucket.sort(reverse=True)
        self._cur = bucket
        self._cur_slot = slot
        self._advances += 1
        self._drained += len(bucket)

    def _maybe_resize(self) -> None:
        """Re-center the bucket width on the observed occupancy."""
        occupancy = self._drained / self._advances
        self._advances = 0
        self._drained = 0
        if occupancy <= 0:
            return
        ideal = self._width * (self._target_occupancy / occupancy)
        ratio = ideal / self._width
        if 0.5 <= ratio <= 2.0:
            return
        # Geometric damping: move halfway (in log space) toward the
        # ideal so one anomalous estimate cannot thrash the width.
        new_width = (self._width * ideal) ** 0.5
        if not (0.0 < new_width < _INFINITY):
            return
        items: list = []
        for bucket in self._buckets.values():
            items.extend(bucket)
        self._buckets.clear()
        self._slots.clear()
        self._width = new_width
        self._inv_width = 1.0 / new_width
        self._cur_slot = _BEFORE_ALL_SLOTS
        buckets = self._buckets
        slots = self._slots
        inv_width = self._inv_width
        for item in items:
            slot = int(item[0] * inv_width)
            try:
                buckets[slot].append(item)
            except KeyError:
                buckets[slot] = [item]
                heappush(slots, slot)


# ---------------------------------------------------------------------------
# Registry + the config-time spec
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, typing.Callable[["SimSpec"], object]] = {}


def register_event_queue(
    name: str, factory: typing.Callable[["SimSpec"], object]
) -> None:
    """Make *name* selectable via ``SimSpec(event_queue=name)``.

    *factory* builds a fresh queue from the full spec, so parameterised
    backends read their knobs off it (see the ``calendar``
    registration).  The backend must satisfy the :class:`EventQueue`
    contract and produce the exact ``(time, priority, seq)`` order —
    run it through ``tests/sim/harness.py`` to prove it.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"event queue name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def event_queue_names() -> tuple[str, ...]:
    """Every currently registered backend name (registration order)."""
    return tuple(_REGISTRY)


@dataclasses.dataclass(frozen=True)
class SimSpec:
    """Kernel options: which event-queue backend runs the simulation.

    Pure mechanism, zero policy: every backend executes the identical
    event order, so the default spec is omitted from config cache
    digests and switching backends never invalidates cached runs —
    it only changes how fast the kernel gets there.

    ``bucket_width_s`` parameterises the ``calendar`` backend: 0 (the
    default) starts at 1 s and adapts to the observed event density; a
    positive value fixes the width (mainly for tests and experiments).
    """

    event_queue: str = "heap"
    bucket_width_s: float = 0.0

    def __post_init__(self) -> None:
        if self.event_queue not in _REGISTRY:
            raise ValueError(
                f"unknown event queue {self.event_queue!r}; "
                f"choose from {event_queue_names()}"
            )
        if not self.bucket_width_s >= 0.0 or self.bucket_width_s == _INFINITY:
            raise ValueError(
                f"bucket_width_s must be finite and >= 0, got "
                f"{self.bucket_width_s!r}"
            )

    def build_queue(self):
        """A fresh event queue instance (one per Environment)."""
        return _REGISTRY[self.event_queue](self)

    def label(self) -> str:
        """Human-readable label used in benchmark tables."""
        if self.event_queue == "calendar" and self.bucket_width_s > 0.0:
            return f"calendar ({self.bucket_width_s:g}s buckets)"
        return self.event_queue


register_event_queue("heap", lambda spec: HeapEventQueue())
register_event_queue(
    "calendar", lambda spec: CalendarEventQueue(spec.bucket_width_s)
)
