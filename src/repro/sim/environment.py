"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import typing
from functools import partial
from heapq import heappop, heappush

from repro.sim.errors import SimError, StopSimulation
from repro.sim.eventqueue import CalendarEventQueue, HeapEventQueue
from repro.sim.events import NORMAL, URGENT, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "NORMAL", "URGENT"]

#: Internal drain-loop result: the queue ran out of events before the
#: deadline / until-event was reached.
_EXHAUSTED = object()


class Environment:
    """Holds the simulation clock and executes events in time order.

    Determinism: given the same seedable inputs, event execution order is
    fully deterministic — ties on (time, priority) break on insertion
    order via a monotonically increasing sequence number.  The order is
    a property of the ``(time, priority, seq)`` tuples alone, so it is
    identical under every event-queue backend (see
    :mod:`repro.sim.eventqueue`); the differential harness in
    ``tests/sim`` enforces exactly that.

    *queue* selects the backend: ``None`` builds the default binary
    heap; pass any :class:`~repro.sim.eventqueue.EventQueue` (usually
    via ``SimSpec.build_queue()``) for an alternative.  The built-in
    backends get specialized inlined drain loops; third-party queues
    run through the generic interface loop.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_push",
        "_seq",
        "_active_process",
        "events_processed",
    )

    def __init__(self, initial_time: float = 0.0, queue=None) -> None:
        self._now = float(initial_time)
        self._queue = HeapEventQueue() if queue is None else queue
        # The hot constructors (``Timeout``, ``succeed``/``fail``, the
        # condition triggers) schedule through this bound callable.  For
        # the heap backend it is the C ``heappush`` partially applied to
        # the exact backing list — the same zero-indirection push the
        # kernel inlined before the queue seam existed (a ``partial``
        # over C ``heappush`` measures within noise of the inline call).
        if type(self._queue) is HeapEventQueue:
            self._push = partial(heappush, self._queue._heap)
        else:
            self._push = self._queue.push
        self._seq = 0
        self._active_process: Process | None = None
        #: Lifetime count of events executed — the simulator's work
        #: measure, read by ``repro.telemetry.runstats``.  Inside
        #: :meth:`run` the count is accumulated in a local and flushed
        #: when the loop exits (normally or by exception); :meth:`step`
        #: updates it immediately.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires after *delay* simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator, name: str | None = None) -> Process:
        """Start a new simulated process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the queue (kernel internal).

        Hot constructors (``Timeout``, ``Event.succeed``/``fail``, the
        condition events) inline this push; rare paths (process
        bootstrap, interrupt delivery) still come through here.  Both
        produce identical ``(time, priority, seq)`` tuples from the
        shared counter, so ordering is unaffected by which path is used.
        """
        self._seq += 1
        self._push((self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue.peek_time()

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, _priority, _seq, event = self._queue.pop()
        except IndexError:
            raise SimError("step() on an empty event queue") from None
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event that nobody handled: surface it.
            raise event._value

    def run(self, until: float | Event | None = None) -> object:
        """Run until a time, until an event fires, or until the queue drains.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires, returning its
          value (or raising its exception).
        """
        stop_value: list = []
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            deadline = float("inf")
            if until.processed:
                if until.ok:
                    return until.value
                raise until.value

            def _stop(event: Event) -> None:
                stop_value.append(event)

            until.callbacks.append(_stop)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )

        # Drain through the backend-specialized hot loop.  Each drain
        # shares the same contract: process events in (time, priority,
        # seq) order; return _EXHAUSTED when the queue empties, None
        # when the deadline is reached (clock already advanced to it),
        # a value when the until-event or StopSimulation ends the run;
        # flush ``events_processed`` however it exits.
        queue = self._queue
        watching = isinstance(until, Event)
        if type(queue) is HeapEventQueue:
            result = self._drain_heap(queue._heap, deadline, watching, stop_value)
        elif type(queue) is CalendarEventQueue:
            result = self._drain_calendar(queue, deadline, watching, stop_value)
        else:
            result = self._drain_generic(queue, deadline, watching, stop_value)
        if result is not _EXHAUSTED:
            return result

        if deadline != float("inf"):
            self._now = deadline
        if isinstance(until, Event) and not until.processed:
            raise SimError("run() ran out of events before `until` fired")
        return None

    def _drain_heap(self, queue, deadline, watching, stop_value):
        """The kernel hot loop for the heap backend: step() inlined,
        with the backend's exact backing list, heappop, and the event
        counter bound to locals.  Behaviour is identical to repeated
        step() calls; only attribute traffic is saved.  The until-event
        check is hoisted behind the ``watching`` flag so it costs
        nothing per event when unused.
        """
        pop = heappop
        processed = 0
        try:
            while queue:
                if queue[0][0] > deadline:
                    self._now = deadline
                    return None
                when, _priority, _seq, event = pop(queue)
                self._now = when
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failed event that nobody handled: surface it.
                    raise event._value
                if watching and stop_value:
                    event = stop_value[0]
                    if event._ok:
                        return event.value
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed
        return _EXHAUSTED

    def _drain_calendar(self, queue, deadline, watching, stop_value):
        """Inlined drain for the calendar backend.

        Binds the queue's four structures to locals and pops straight
        off them: the active run drains via ``list.pop()`` with a
        single ``_extra`` comparison preserving the global order
        (zero-delay and URGENT pushes at ``now`` land in ``_extra`` and
        overtake the run's tail exactly when their tuples sort first).
        Same-timestamp batches skip the deadline re-check: the clock
        only re-validates when time actually advances.
        """
        pop_heap = heappop
        cur = queue._cur
        extra = queue._extra
        slots = queue._slots
        far = queue._far
        now = self._now
        processed = 0
        try:
            while True:
                if cur:
                    if extra and extra[0] < cur[-1]:
                        item = pop_heap(extra)
                    else:
                        item = cur.pop()
                elif extra:
                    item = pop_heap(extra)
                elif slots:
                    queue._advance()
                    cur = queue._cur
                    continue
                elif far:
                    item = pop_heap(far)
                else:
                    return _EXHAUSTED
                when = item[0]
                if when != now:
                    if when > deadline:
                        queue.push(item)
                        self._now = deadline
                        return None
                    self._now = now = when
                event = item[3]
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failed event that nobody handled: surface it.
                    raise event._value
                if watching and stop_value:
                    event = stop_value[0]
                    if event._ok:
                        return event.value
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed

    def _drain_generic(self, queue, deadline, watching, stop_value):
        """Interface-only drain for third-party backends."""
        processed = 0
        try:
            while queue:
                when = queue.peek_time()
                if when > deadline:
                    self._now = deadline
                    return None
                when, _priority, _seq, event = queue.pop()
                self._now = when
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failed event that nobody handled: surface it.
                    raise event._value
                if watching and stop_value:
                    event = stop_value[0]
                    if event._ok:
                        return event.value
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed
        return _EXHAUSTED

    def stop(self, value: object = None) -> None:
        """End the current :meth:`run` immediately."""
        raise StopSimulation(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment now={self._now} queued={len(self._queue)}>"
