"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
import typing
from heapq import heappop

from repro.sim.errors import SimError, StopSimulation
from repro.sim.events import NORMAL, URGENT, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "NORMAL", "URGENT"]


class Environment:
    """Holds the simulation clock and executes events in time order.

    Determinism: given the same seedable inputs, event execution order is
    fully deterministic — ties on (time, priority) break on insertion
    order via a monotonically increasing sequence number.
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "events_processed")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        #: Lifetime count of events executed — the simulator's work
        #: measure, read by ``repro.telemetry.runstats``.  Inside
        #: :meth:`run` the count is accumulated in a local and flushed
        #: when the loop exits (normally or by exception); :meth:`step`
        #: updates it immediately.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires after *delay* simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator, name: str | None = None) -> Process:
        """Start a new simulated process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the queue (kernel internal).

        Hot constructors (``Timeout``, ``Event.succeed``/``fail``, the
        condition events) inline this push; rare paths (process
        bootstrap, interrupt delivery) still come through here.  Both
        produce identical ``(time, priority, seq)`` tuples from the
        shared counter, so ordering is unaffected by which path is used.
        """
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimError("step() on an empty event queue")
        when, _priority, _seq, event = heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event that nobody handled: surface it.
            raise event._value

    def run(self, until: float | Event | None = None) -> object:
        """Run until a time, until an event fires, or until the queue drains.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires, returning its
          value (or raising its exception).
        """
        stop_value: list = []
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            deadline = float("inf")
            if until.processed:
                if until.ok:
                    return until.value
                raise until.value

            def _stop(event: Event) -> None:
                stop_value.append(event)

            until.callbacks.append(_stop)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )

        # The kernel hot loop: step() inlined, with the queue, heappop,
        # and the event counter bound to locals.  Behaviour is identical
        # to repeated step() calls; only attribute traffic is saved.
        # The until-event check is hoisted out of the common (time/None
        # deadline) loop so it costs nothing per event when unused.
        queue = self._queue
        pop = heappop
        watching = isinstance(until, Event)
        processed = 0
        try:
            while queue:
                if queue[0][0] > deadline:
                    self._now = deadline
                    return None
                when, _priority, _seq, event = pop(queue)
                self._now = when
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failed event that nobody handled: surface it.
                    raise event._value
                if watching and stop_value:
                    event = stop_value[0]
                    if event._ok:
                        return event.value
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_processed += processed

        if deadline != float("inf"):
            self._now = deadline
        if isinstance(until, Event) and not until.processed:
            raise SimError("run() ran out of events before `until` fired")
        return None

    def stop(self, value: object = None) -> None:
        """End the current :meth:`run` immediately."""
        raise StopSimulation(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment now={self._now} queued={len(self._queue)}>"
