"""The one-stop public API of the SPIFFI reproduction.

Everything a user composes — the config and its component specs, the
unified run entry point, the experiment harness, and the plugin
registration hooks — importable from one module::

    from repro.api import FaultSpec, LayoutSpec, SchedulerSpec, SpiffiConfig, run

    config = SpiffiConfig(
        terminals=40,
        layout=LayoutSpec("striped"),
        scheduler=SchedulerSpec("elevator"),
        faults=FaultSpec(disk_fault_rate_per_hour=6.0),
    )
    print(run(config).summary())

:func:`run` executes *any* runnable config — a standalone
:class:`SpiffiConfig`, a multi-node :class:`ClusterConfig`, or a
third-party config type registered via :func:`register_runnable` —
through one dispatch table; ``run_simulation`` and ``run_cluster``
survive as type-checked aliases.  Component selection is uniformly
spec-based: each ``*Spec`` names an entry in a registry that
third-party code extends through the ``register_*`` functions, so a
new scheduler, layout, replacement policy, access model, prefix
policy, or whole config type plugs in without touching the assembly
code in :mod:`repro.core.system`.
"""

from repro.bufferpool.registry import (
    ReplacementSpec,
    register_replacement,
    replacement_names,
)
from repro.cluster import (
    ClusterConfig,
    PlacementSpec,
    RouterSpec,
    SelfHealSpec,
    SpiffiCluster,
    placement_names,
    register_placement,
    register_router,
    router_names,
    run_cluster,
)
from repro.core.config import GB, KB, MB, SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.core.node import SpiffiNode
from repro.core.system import SpiffiSystem, run_simulation
from repro.experiments.catalog import experiment_names, run_experiment
from repro.experiments.report import format_table
from repro.experiments.results import ExperimentResult, RunCache, config_digest
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    SerialExecutor,
    run_grid,
    using_runner,
)
from repro.experiments.search import SearchResult, find_max_terminals
from repro.faults import FaultEvent, FaultSpec, build_schedule
from repro.layout.registry import LayoutSpec, layout_names, register_layout
from repro.media.access import access_model_names, register_access_model
from repro.prefetch.spec import PrefetchSpec
from repro.proxy import (
    ProxySpec,
    prefix_policy_names,
    register_prefix_policy,
)
from repro.replication import ReplicationSpec
from repro.runnable import (
    RunnableConfig,
    register_runnable,
    run,
    runnable_kinds,
)
from repro.sched.registry import SchedulerSpec, register_scheduler, scheduler_names
from repro.server.admission import (
    AdmissionSpec,
    admission_policy_names,
    register_admission_policy,
)
from repro.sharing import (
    SharingSpec,
    register_sharing_policy,
    sharing_policy_names,
)
from repro.sim.stats import Quantile
from repro.terminal.pauses import PauseModel
from repro.workload import (
    ArrivalSpec,
    SaturationResult,
    SloPolicy,
    arrival_process_names,
    find_max_rate,
    register_arrival_process,
)

__all__ = [
    "AdmissionSpec",
    "ArrivalSpec",
    "ClusterConfig",
    "ExperimentResult",
    "FaultEvent",
    "FaultSpec",
    "GB",
    "KB",
    "LayoutSpec",
    "MB",
    "PauseModel",
    "PlacementSpec",
    "PrefetchSpec",
    "ProcessExecutor",
    "ProxySpec",
    "Quantile",
    "ReplacementSpec",
    "ReplicationSpec",
    "RouterSpec",
    "RunCache",
    "RunMetrics",
    "RunnableConfig",
    "Runner",
    "SaturationResult",
    "SchedulerSpec",
    "SearchResult",
    "SelfHealSpec",
    "SerialExecutor",
    "SharingSpec",
    "SloPolicy",
    "SpiffiCluster",
    "SpiffiConfig",
    "SpiffiNode",
    "SpiffiSystem",
    "access_model_names",
    "admission_policy_names",
    "arrival_process_names",
    "build_schedule",
    "config_digest",
    "experiment_names",
    "find_max_rate",
    "find_max_terminals",
    "format_table",
    "layout_names",
    "placement_names",
    "prefix_policy_names",
    "register_access_model",
    "register_admission_policy",
    "register_arrival_process",
    "register_layout",
    "register_placement",
    "register_prefix_policy",
    "register_replacement",
    "register_router",
    "register_runnable",
    "register_scheduler",
    "register_sharing_policy",
    "replacement_names",
    "router_names",
    "run",
    "run_cluster",
    "run_experiment",
    "run_grid",
    "run_simulation",
    "runnable_kinds",
    "scheduler_names",
    "sharing_policy_names",
    "using_runner",
]
