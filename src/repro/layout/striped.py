"""Full striping of videos across every disk (paper Figure 3).

Stripe blocks alternate first between *nodes*, then between the disks at
each node: block 0 → node 0/disk 0, block 1 → node 1/disk 0, ...,
block ``nodes`` → node 0/disk 1, and so on.  Every ``nodes ×
disks_per_node``-th block of a video lands on the same disk, forming
that disk's contiguous *fragment* of the video.
"""

from __future__ import annotations

from repro.layout.base import Layout, Placement


class StripedLayout(Layout):
    def __init__(
        self,
        video_block_counts: list[int],
        nodes: int,
        disks_per_node: int,
        block_size: int,
    ) -> None:
        super().__init__(nodes, disks_per_node, block_size)
        self.video_block_counts = list(video_block_counts)
        row = self.disk_count
        # Per-disk fragment base offsets, per video, in video-id order.
        # fragment_blocks[v][d] = number of blocks of video v on disk d.
        self._fragment_base: list[list[int]] = []
        disk_fill = [0] * row
        for count in self.video_block_counts:
            self._fragment_base.append(list(disk_fill))
            full_rows, rem = divmod(count, row)
            for disk in range(row):
                blocks_here = full_rows + (1 if disk < rem else 0)
                disk_fill[disk] += blocks_here * block_size
        self._disk_used = disk_fill

    def _disk_of_block(self, block: int) -> tuple[int, int, int]:
        """Block index → (node, disk-in-node, global disk index).

        Nodes alternate fastest, then disks within a node; the global
        disk index used for fragment accounting follows the same order:
        ``disk_global = node * disks_per_node + disk_in_node`` but block
        rotation order is node-major.
        """
        slot = block % self.disk_count
        node = slot % self.nodes
        disk_in_node = (slot // self.nodes) % self.disks_per_node
        return node, disk_in_node, node * self.disks_per_node + disk_in_node

    def locate(self, video_id: int, block: int) -> Placement:
        count = self.video_block_counts[video_id]
        if block < 0 or block >= count:
            raise ValueError(f"block {block} outside video {video_id} of {count} blocks")
        node, disk_in_node, disk_global = self._disk_of_block(block)
        row_index = block // self.disk_count
        offset = self._fragment_base[video_id][disk_global] + row_index * self.block_size
        return Placement(node, disk_in_node, disk_global, offset)

    def next_block_on_same_disk(self, video_id: int, block: int) -> int | None:
        nxt = block + self.disk_count
        if nxt >= self.video_block_counts[video_id]:
            return None
        return nxt

    def disk_used_bytes(self, disk_global: int) -> int:
        return self._disk_used[disk_global]
