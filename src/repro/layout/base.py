"""Layout interface: mapping (video, stripe block) → physical placement."""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Placement:
    """Physical location of one stripe block."""

    node: int
    disk_in_node: int
    disk_global: int
    byte_offset: int


class Layout:
    """Maps logical video blocks to disks and disk byte offsets.

    Implementations must keep each video's per-disk fragment contiguous
    (paper §5.2: "the portion of a video stored on one disk ... is laid
    out contiguously").
    """

    def __init__(self, nodes: int, disks_per_node: int, block_size: int) -> None:
        if nodes < 1 or disks_per_node < 1:
            raise ValueError("need at least one node and one disk per node")
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.nodes = nodes
        self.disks_per_node = disks_per_node
        self.disk_count = nodes * disks_per_node
        self.block_size = block_size

    def locate(self, video_id: int, block: int) -> Placement:
        """Physical placement of *block* of *video_id*."""
        raise NotImplementedError

    def next_block_on_same_disk(self, video_id: int, block: int) -> int | None:
        """The following block of the same video on the same disk.

        This is what the standard SPIFFI prefetcher fetches in response
        to a real reference ("a background request for the next stripe
        block at the same disk").  Returns None past end of video.
        """
        raise NotImplementedError

    def disk_used_bytes(self, disk_global: int) -> int:
        """Bytes of video data stored on a disk (drives geometry extent)."""
        raise NotImplementedError

    def split_disk_index(self, disk_global: int) -> typing.Tuple[int, int]:
        """Global disk index → (node, disk-in-node)."""
        return divmod(disk_global, self.disks_per_node)

    # --- replication interface (single-copy defaults) -------------------
    @property
    def replica_count(self) -> int:
        """Copies stored of every block (1 = unreplicated)."""
        return 1

    def replica_placements(self, video_id: int, block: int) -> typing.Tuple[Placement, ...]:
        """Every copy of *block*, primary first.

        Single-copy layouts return just :meth:`locate`; replicated
        layouts (see :mod:`repro.replication.layouts`) add the replica
        placements the failover router chooses between.
        """
        return (self.locate(video_id, block),)

    def copies_on_disk(
        self, disk_global: int
    ) -> typing.Iterator[typing.Tuple[int, int, int]]:
        """Block copies stored on one disk, as ``(video_id, block,
        replica_index)`` tuples — what a rebuild must re-create.  Only
        replicated layouts implement this."""
        raise NotImplementedError
