"""Video file layouts: full striping and the non-striped baseline."""

from repro.layout.base import Layout, Placement
from repro.layout.nonstriped import NonStripedLayout
from repro.layout.registry import LayoutSpec, layout_names, register_layout
from repro.layout.striped import StripedLayout

__all__ = [
    "Layout",
    "LayoutSpec",
    "NonStripedLayout",
    "Placement",
    "StripedLayout",
    "layout_names",
    "register_layout",
]
