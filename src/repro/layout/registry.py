"""Layout construction from a declarative, registry-backed spec.

``LayoutSpec`` mirrors :class:`repro.sched.registry.SchedulerSpec`: the
name selects a registered factory, and third-party layouts plug in via
:func:`register_layout` without touching ``repro.core.system``::

    from repro.layout import LayoutSpec, register_layout

    register_layout("my_layout", build_my_layout)
    config = SpiffiConfig(layout=LayoutSpec("my_layout"))

Factories receive everything system assembly knows about placement:
per-video block counts, the hardware shape, the stripe block size, and
a dedicated random stream (ignored by deterministic layouts).

Layouts registered with ``replicated=True`` additionally receive the
config's replication factor as a sixth argument and must implement the
replica interface on :class:`~repro.layout.base.Layout`
(``replica_placements`` / ``copies_on_disk``).  Selecting a
single-copy layout with a replication factor above 1 is a config-time
error.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.layout.base import Layout
from repro.layout.nonstriped import NonStripedLayout
from repro.layout.striped import StripedLayout

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RandomSource

#: ``factory(block_counts, nodes, disks_per_node, block_size, rng)``;
#: replicated factories take a trailing ``replication_factor``.
LayoutFactory = typing.Callable[..., Layout]

_REGISTRY: dict[str, tuple[LayoutFactory, bool]] = {}


def register_layout(
    name: str, factory: LayoutFactory, *, replicated: bool = False
) -> None:
    """Make *name* selectable via ``LayoutSpec(name)``.

    With ``replicated=True`` the factory is called with an extra
    ``replication_factor`` argument and may be combined with
    ``ReplicationSpec(factor > 1)``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"layout name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = (factory, replicated)


def layout_names() -> tuple[str, ...]:
    """Every currently registered layout name (registration order)."""
    return tuple(_REGISTRY)


def replicated_layout_names() -> tuple[str, ...]:
    """Layout names that support a replication factor above 1."""
    return tuple(
        name for name, (_, replicated) in _REGISTRY.items() if replicated
    )


def layout_supports_replication(name: str) -> bool:
    if name not in _REGISTRY:
        raise ValueError(f"unknown layout {name!r}; choose from {layout_names()}")
    return _REGISTRY[name][1]


@dataclasses.dataclass(frozen=True)
class LayoutSpec:
    """Which file layout maps video blocks to disks."""

    name: str = "striped"

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise ValueError(
                f"unknown layout {self.name!r}; choose from {layout_names()}"
            )

    def build(
        self,
        block_counts: list[int],
        nodes: int,
        disks_per_node: int,
        block_size: int,
        rng: "RandomSource",
        replication_factor: int = 1,
    ) -> Layout:
        """A layout instance for one assembled system."""
        factory, replicated = _REGISTRY[self.name]
        if replicated:
            return factory(
                block_counts, nodes, disks_per_node, block_size, rng,
                replication_factor,
            )
        if replication_factor > 1:
            raise ValueError(
                f"layout {self.name!r} stores a single copy; a replication "
                f"factor of {replication_factor} needs one of "
                f"{replicated_layout_names()}"
            )
        return factory(block_counts, nodes, disks_per_node, block_size, rng)

    def label(self) -> str:
        return self.name.replace("_", "-")


register_layout(
    "striped",
    lambda counts, nodes, disks, block_size, rng: StripedLayout(
        counts, nodes, disks, block_size
    ),
)
register_layout(
    "nonstriped",
    lambda counts, nodes, disks, block_size, rng: NonStripedLayout(
        counts, nodes, disks, block_size, rng
    ),
)


def _build_mirrored(counts, nodes, disks, block_size, rng, factor):
    from repro.replication.layouts import ReplicatedStripedLayout

    disk_count = nodes * disks
    if factor > 1 and disk_count % factor != 0:
        raise ValueError(
            f"mirrored striping needs the disk count ({disk_count}) to be "
            f"divisible by the replication factor ({factor})"
        )
    step = disk_count // factor if factor > 1 else 1
    return ReplicatedStripedLayout(counts, nodes, disks, block_size, factor, step)


def _build_chained(counts, nodes, disks, block_size, rng, factor):
    from repro.replication.layouts import ReplicatedStripedLayout

    return ReplicatedStripedLayout(counts, nodes, disks, block_size, factor, 1)


register_layout("mirrored", _build_mirrored, replicated=True)
register_layout("chained", _build_chained, replicated=True)
