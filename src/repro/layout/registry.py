"""Layout construction from a declarative, registry-backed spec.

``LayoutSpec`` mirrors :class:`repro.sched.registry.SchedulerSpec`: the
name selects a registered factory, and third-party layouts plug in via
:func:`register_layout` without touching ``repro.core.system``::

    from repro.layout import LayoutSpec, register_layout

    register_layout("mirrored", build_mirrored_layout)
    config = SpiffiConfig(layout=LayoutSpec("mirrored"))

Factories receive everything system assembly knows about placement:
per-video block counts, the hardware shape, the stripe block size, and
a dedicated random stream (ignored by deterministic layouts).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.layout.base import Layout
from repro.layout.nonstriped import NonStripedLayout
from repro.layout.striped import StripedLayout

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RandomSource

#: ``factory(block_counts, nodes, disks_per_node, block_size, rng)``.
LayoutFactory = typing.Callable[
    [list[int], int, int, int, "RandomSource"], Layout
]

_REGISTRY: dict[str, LayoutFactory] = {}


def register_layout(name: str, factory: LayoutFactory) -> None:
    """Make *name* selectable via ``LayoutSpec(name)``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"layout name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def layout_names() -> tuple[str, ...]:
    """Every currently registered layout name (registration order)."""
    return tuple(_REGISTRY)


@dataclasses.dataclass(frozen=True)
class LayoutSpec:
    """Which file layout maps video blocks to disks."""

    name: str = "striped"

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise ValueError(
                f"unknown layout {self.name!r}; choose from {layout_names()}"
            )

    def build(
        self,
        block_counts: list[int],
        nodes: int,
        disks_per_node: int,
        block_size: int,
        rng: "RandomSource",
    ) -> Layout:
        """A layout instance for one assembled system."""
        return _REGISTRY[self.name](
            block_counts, nodes, disks_per_node, block_size, rng
        )

    def label(self) -> str:
        return self.name.replace("_", "-")


register_layout(
    "striped",
    lambda counts, nodes, disks, block_size, rng: StripedLayout(
        counts, nodes, disks, block_size
    ),
)
register_layout(
    "nonstriped",
    lambda counts, nodes, disks, block_size, rng: NonStripedLayout(
        counts, nodes, disks, block_size, rng
    ),
)
