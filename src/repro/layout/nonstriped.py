"""Non-striped layout: each video lives entirely on one disk (§7.4).

The paper's comparison configuration stores each video on a single,
randomly chosen disk, with exactly ``videos / disks`` videos per disk.
"""

from __future__ import annotations

from repro.layout.base import Layout, Placement
from repro.sim.rng import RandomSource


class NonStripedLayout(Layout):
    def __init__(
        self,
        video_block_counts: list[int],
        nodes: int,
        disks_per_node: int,
        block_size: int,
        rng: RandomSource,
    ) -> None:
        super().__init__(nodes, disks_per_node, block_size)
        self.video_block_counts = list(video_block_counts)
        videos = len(video_block_counts)
        if videos % self.disk_count != 0:
            raise ValueError(
                f"{videos} videos cannot be spread evenly over {self.disk_count} disks"
            )
        per_disk = videos // self.disk_count
        # Random assignment with exactly `per_disk` videos per disk: a
        # shuffled deck of disk slots.
        slots = [disk for disk in range(self.disk_count) for _ in range(per_disk)]
        rng.shuffle(slots)
        self.video_disk = slots
        self._video_base = [0] * videos
        disk_fill = [0] * self.disk_count
        for video_id, count in enumerate(video_block_counts):
            disk = self.video_disk[video_id]
            self._video_base[video_id] = disk_fill[disk]
            disk_fill[disk] += count * block_size
        self._disk_used = disk_fill

    def locate(self, video_id: int, block: int) -> Placement:
        count = self.video_block_counts[video_id]
        if block < 0 or block >= count:
            raise ValueError(f"block {block} outside video {video_id} of {count} blocks")
        disk_global = self.video_disk[video_id]
        node, disk_in_node = self.split_disk_index(disk_global)
        offset = self._video_base[video_id] + block * self.block_size
        return Placement(node, disk_in_node, disk_global, offset)

    def next_block_on_same_disk(self, video_id: int, block: int) -> int | None:
        nxt = block + 1
        if nxt >= self.video_block_counts[video_id]:
            return None
        return nxt

    def disk_used_bytes(self, disk_global: int) -> int:
        return self._disk_used[disk_global]
