"""Disk scheduler interface and the shared elevator (SCAN) selection.

Schedulers hold pending :class:`DiskRequest` objects and decide, each
time the drive frees up, which request to service next.  Decisions are
made at *pop* time so that deadline changes (e.g. a real reference
merging with a queued prefetch) take effect immediately — this mirrors
the paper's "after each disk access, priorities are recomputed using the
current time".
"""

from __future__ import annotations

import typing

from repro.storage.request import DiskRequest


class DiskScheduler:
    """Base class: a queue of pending disk requests with a policy."""

    name = "base"

    def __init__(self) -> None:
        self._pending: list[DiskRequest] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> typing.Sequence[DiskRequest]:
        """Read-only view of queued requests (no particular order)."""
        return tuple(self._pending)

    def push(self, request: DiskRequest) -> None:
        self._pending.append(request)

    def pop(self, now: float, head_cylinder: int) -> DiskRequest:
        """Remove and return the next request to service.

        Must only be called when the queue is non-empty.
        """
        raise NotImplementedError

    def _take(self, index: int) -> DiskRequest:
        request = self._pending[index]
        last = len(self._pending) - 1
        if index != last:
            self._pending[index] = self._pending[last]
        self._pending.pop()
        return request


def elevator_select(
    requests: typing.Sequence[DiskRequest],
    head_cylinder: int,
    direction: int,
    indices: typing.Sequence[int] | None = None,
) -> tuple[int, int]:
    """Pick the next request in SCAN order.

    Scans in *direction* (+1 outward, -1 inward) from *head_cylinder*;
    when no request lies ahead, the sweep reverses.  Ties on the same
    cylinder are FIFO.  Returns ``(index, new_direction)`` where index
    refers into *requests* (restricted to *indices* when given).

    Raises ``ValueError`` on an empty candidate set.
    """
    candidates = range(len(requests)) if indices is None else indices
    if not candidates:
        raise ValueError("elevator_select on an empty candidate set")

    for sweep_direction in (direction, -direction):
        best_index = -1
        best_key: tuple[int, int] | None = None
        for index in candidates:
            cylinder = requests[index].cylinder
            distance = (cylinder - head_cylinder) * sweep_direction
            if distance < 0:
                continue
            key = (distance, requests[index].seq)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        if best_index >= 0:
            return best_index, sweep_direction
    raise ValueError("elevator_select found no candidate in either direction")
