"""The elevator (SCAN) disk scheduling algorithm (paper §5.2.2).

Scans the cylinders in one direction servicing requests as the head
reaches them, then reverses — "nearly minimal seek times and fairness".
"""

from __future__ import annotations

from repro.sched.base import DiskScheduler, elevator_select
from repro.storage.request import DiskRequest


class ElevatorScheduler(DiskScheduler):
    name = "elevator"

    def __init__(self) -> None:
        super().__init__()
        self.direction = 1

    def pop(self, now: float, head_cylinder: int) -> DiskRequest:
        index, self.direction = elevator_select(
            self._pending, head_cylinder, self.direction
        )
        return self._take(index)
