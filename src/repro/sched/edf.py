"""Earliest-deadline-first disk scheduling (related-work baseline).

Used by [Redd94]'s study; included here for comparison experiments.
Requests without deadlines sort last; ties are FIFO.
"""

from __future__ import annotations

from repro.sched.base import DiskScheduler
from repro.storage.request import DiskRequest


class EdfScheduler(DiskScheduler):
    name = "edf"

    def pop(self, now: float, head_cylinder: int) -> DiskRequest:
        best = min(
            range(len(self._pending)),
            key=lambda i: (self._pending[i].deadline, self._pending[i].seq),
        )
        return self._take(best)
