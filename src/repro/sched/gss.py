"""The group sweeping scheme, GSS [Yu92] (paper §5.2.2).

Terminals are statically assigned to a fixed set of groups, processed
repeatedly in round-robin order.  Processing a group selects up to one
pending request per terminal in the group (a *batch*) and services the
batch in elevator order.  One group ≈ elevator with at most one service
per terminal per sweep; groups == terminals ≈ round-robin.
"""

from __future__ import annotations

from repro.sched.base import DiskScheduler, elevator_select
from repro.storage.request import DiskRequest


class GssScheduler(DiskScheduler):
    name = "gss"

    def __init__(self, groups: int = 1) -> None:
        if groups < 1:
            raise ValueError(f"need >= 1 group, got {groups}")
        super().__init__()
        self.groups = groups
        self.direction = 1
        self._current_group = 0
        self._batch: list[DiskRequest] = []

    def group_of(self, request: DiskRequest) -> int:
        return request.terminal_id % self.groups

    def _build_batch(self, group: int) -> list[DiskRequest]:
        """One request (the oldest) per terminal with work in *group*."""
        oldest: dict[int, DiskRequest] = {}
        for request in self._pending:
            if self.group_of(request) != group:
                continue
            incumbent = oldest.get(request.terminal_id)
            if incumbent is None or request.seq < incumbent.seq:
                oldest[request.terminal_id] = request
        return list(oldest.values())

    def pop(self, now: float, head_cylinder: int) -> DiskRequest:
        # Drop batch members that are no longer pending (defensive; the
        # drive is the only consumer so this should be a no-op).
        if self._batch:
            live = set(map(id, self._pending))
            self._batch = [r for r in self._batch if id(r) in live]
        if not self._batch:
            for step in range(self.groups):
                group = (self._current_group + step) % self.groups
                batch = self._build_batch(group)
                if batch:
                    self._batch = batch
                    self._current_group = (group + 1) % self.groups
                    break
        index, self.direction = elevator_select(
            self._batch, head_cylinder, self.direction
        )
        request = self._batch.pop(index)
        self._pending.remove(request)
        return request
