"""The SPIFFI real-time disk scheduling algorithm (paper §5.2.2).

Each pending request's deadline is mapped into one of a fixed set of
priority classes using uniformly spaced priority cutoffs: with spacing
``s`` and ``n`` classes, a request within ``s`` seconds of its deadline
is class 0 (most urgent), within ``2s`` class 1, ..., and anything
further out (including deadline-less prefetches) is class ``n-1``.

At each disk-free instant the highest-priority non-empty class is
selected and serviced in elevator order; priorities are recomputed from
the current time on every pop.
"""

from __future__ import annotations

import math

from repro.sched.base import DiskScheduler, elevator_select
from repro.storage.request import DiskRequest


class RealTimeScheduler(DiskScheduler):
    name = "realtime"

    def __init__(self, priority_classes: int = 3, priority_spacing_s: float = 4.0) -> None:
        if priority_classes < 1:
            raise ValueError(f"need >= 1 priority class, got {priority_classes}")
        if priority_spacing_s <= 0:
            raise ValueError(f"spacing must be positive, got {priority_spacing_s}")
        super().__init__()
        self.priority_classes = priority_classes
        self.priority_spacing_s = priority_spacing_s
        self.direction = 1

    def classify(self, request: DiskRequest, now: float) -> int:
        """Priority class (0 = most urgent) of a request at time *now*."""
        slack = request.deadline - now
        if math.isinf(slack):
            return self.priority_classes - 1
        if slack < 0:
            return 0
        return min(int(slack / self.priority_spacing_s), self.priority_classes - 1)

    def pop(self, now: float, head_cylinder: int) -> DiskRequest:
        best_class = self.priority_classes
        for request in self._pending:
            cls = self.classify(request, now)
            if cls < best_class:
                best_class = cls
                if cls == 0:
                    break
        indices = [
            i
            for i, request in enumerate(self._pending)
            if self.classify(request, now) == best_class
        ]
        index, self.direction = elevator_select(
            self._pending, head_cylinder, self.direction, indices
        )
        return self._take(index)
