"""Round-robin disk scheduling (paper §5.2.2).

Terminals are serviced strictly in cyclic terminal order, one request
per turn, with no attempt to optimise seek distances — the degenerate
GSS configuration where every terminal is its own group.
"""

from __future__ import annotations

from repro.sched.base import DiskScheduler
from repro.storage.request import DiskRequest


class RoundRobinScheduler(DiskScheduler):
    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._last_terminal = -1

    def pop(self, now: float, head_cylinder: int) -> DiskRequest:
        # The oldest pending request per terminal, then the terminal
        # whose id follows the last-serviced one in cyclic order.
        oldest: dict[int, DiskRequest] = {}
        for request in self._pending:
            incumbent = oldest.get(request.terminal_id)
            if incumbent is None or request.seq < incumbent.seq:
                oldest[request.terminal_id] = request
        terminals = sorted(oldest)
        chosen_terminal = None
        for terminal in terminals:
            if terminal > self._last_terminal:
                chosen_terminal = terminal
                break
        if chosen_terminal is None:
            chosen_terminal = terminals[0]
        self._last_terminal = chosen_terminal
        request = oldest[chosen_terminal]
        self._pending.remove(request)
        return request
