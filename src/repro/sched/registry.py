"""Scheduler construction from a declarative, registry-backed spec.

Built-in algorithms register themselves below; third-party schedulers
plug in through :func:`register_scheduler` without touching
``repro.core.system``::

    from repro.sched import SchedulerSpec, register_scheduler

    register_scheduler("my_sched", lambda spec: MyScheduler(), real_time=True)
    config = SpiffiConfig(scheduler=SchedulerSpec("my_sched"))

A factory receives the full :class:`SchedulerSpec`, so parameterised
algorithms read their knobs off it (see the ``gss`` and ``realtime``
registrations).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sched.base import DiskScheduler
from repro.sched.edf import EdfScheduler
from repro.sched.elevator import ElevatorScheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.gss import GssScheduler
from repro.sched.realtime import RealTimeScheduler
from repro.sched.round_robin import RoundRobinScheduler


@dataclasses.dataclass(frozen=True)
class _Registration:
    factory: typing.Callable[["SchedulerSpec"], DiskScheduler]
    real_time: bool = False
    label: typing.Callable[["SchedulerSpec"], str] | None = None


_REGISTRY: dict[str, _Registration] = {}


def register_scheduler(
    name: str,
    factory: typing.Callable[["SchedulerSpec"], DiskScheduler],
    real_time: bool = False,
    label: typing.Callable[["SchedulerSpec"], str] | None = None,
) -> None:
    """Make *name* selectable via ``SchedulerSpec(name)``.

    *factory* builds a fresh scheduler instance from the spec (one per
    disk).  *real_time* marks algorithms that understand request
    deadlines.  *label* optionally renders a human-readable table label
    from the spec.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"scheduler name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = _Registration(factory, real_time, label)


def scheduler_names() -> tuple[str, ...]:
    """Every currently registered scheduler name (registration order)."""
    return tuple(_REGISTRY)


#: The built-in algorithms (legacy constant; prefer
#: :func:`scheduler_names`, which also sees registered plugins).
SCHEDULER_NAMES = ("fcfs", "elevator", "round_robin", "gss", "realtime", "edf")


@dataclasses.dataclass(frozen=True)
class SchedulerSpec:
    """Which disk scheduling algorithm to run, with its parameters.

    ``realtime`` uses *priority_classes* and *priority_spacing_s*
    (e.g. the paper's "3 priority classes with 4 second priority
    spacing"); ``gss`` uses *gss_groups*.
    """

    name: str = "elevator"
    priority_classes: int = 3
    priority_spacing_s: float = 4.0
    gss_groups: int = 1

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise ValueError(
                f"unknown scheduler {self.name!r}; "
                f"choose from {scheduler_names()}"
            )

    @property
    def is_real_time(self) -> bool:
        """Whether the algorithm understands request deadlines."""
        return _REGISTRY[self.name].real_time

    def build(self) -> DiskScheduler:
        """A fresh scheduler instance (one per disk)."""
        return _REGISTRY[self.name].factory(self)

    def label(self) -> str:
        """Human-readable label used in benchmark tables."""
        custom = _REGISTRY[self.name].label
        if custom is not None:
            return custom(self)
        return self.name.replace("_", "-")


register_scheduler("fcfs", lambda spec: FcfsScheduler())
register_scheduler("elevator", lambda spec: ElevatorScheduler())
register_scheduler("round_robin", lambda spec: RoundRobinScheduler())
register_scheduler(
    "gss",
    lambda spec: GssScheduler(spec.gss_groups),
    label=lambda spec: (
        f"GSS ({spec.gss_groups} group{'s' if spec.gss_groups != 1 else ''})"
    ),
)
register_scheduler(
    "realtime",
    lambda spec: RealTimeScheduler(spec.priority_classes, spec.priority_spacing_s),
    real_time=True,
    label=lambda spec: (
        f"real-time ({spec.priority_classes} prio, "
        f"{spec.priority_spacing_s:g}s spacing)"
    ),
)
register_scheduler("edf", lambda spec: EdfScheduler(), real_time=True)
