"""Scheduler construction from a declarative specification."""

from __future__ import annotations

import dataclasses

from repro.sched.base import DiskScheduler
from repro.sched.edf import EdfScheduler
from repro.sched.elevator import ElevatorScheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.gss import GssScheduler
from repro.sched.realtime import RealTimeScheduler
from repro.sched.round_robin import RoundRobinScheduler

SCHEDULER_NAMES = ("fcfs", "elevator", "round_robin", "gss", "realtime", "edf")


@dataclasses.dataclass(frozen=True)
class SchedulerSpec:
    """Which disk scheduling algorithm to run, with its parameters.

    ``realtime`` uses *priority_classes* and *priority_spacing_s*
    (e.g. the paper's "3 priority classes with 4 second priority
    spacing"); ``gss`` uses *gss_groups*.
    """

    name: str = "elevator"
    priority_classes: int = 3
    priority_spacing_s: float = 4.0
    gss_groups: int = 1

    def __post_init__(self) -> None:
        if self.name not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {self.name!r}; choose from {SCHEDULER_NAMES}"
            )

    @property
    def is_real_time(self) -> bool:
        """Whether the algorithm understands request deadlines."""
        return self.name in ("realtime", "edf")

    def build(self) -> DiskScheduler:
        """A fresh scheduler instance (one per disk)."""
        if self.name == "fcfs":
            return FcfsScheduler()
        if self.name == "elevator":
            return ElevatorScheduler()
        if self.name == "round_robin":
            return RoundRobinScheduler()
        if self.name == "gss":
            return GssScheduler(self.gss_groups)
        if self.name == "realtime":
            return RealTimeScheduler(self.priority_classes, self.priority_spacing_s)
        if self.name == "edf":
            return EdfScheduler()
        raise AssertionError(f"unhandled scheduler {self.name!r}")

    def label(self) -> str:
        """Human-readable label used in benchmark tables."""
        if self.name == "realtime":
            return (
                f"real-time ({self.priority_classes} prio, "
                f"{self.priority_spacing_s:g}s spacing)"
            )
        if self.name == "gss":
            return f"GSS ({self.gss_groups} group{'s' if self.gss_groups != 1 else ''})"
        return self.name.replace("_", "-")
