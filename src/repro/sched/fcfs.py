"""First-come-first-served disk scheduling (analysis baseline)."""

from __future__ import annotations

from repro.sched.base import DiskScheduler
from repro.storage.request import DiskRequest


class FcfsScheduler(DiskScheduler):
    name = "fcfs"

    def pop(self, now: float, head_cylinder: int) -> DiskRequest:
        best = min(range(len(self._pending)), key=lambda i: self._pending[i].seq)
        return self._take(best)
