"""Disk scheduling algorithms: the paper's real-time scheduler plus the
elevator, GSS, round-robin, FCFS, and EDF baselines."""

from repro.sched.base import DiskScheduler, elevator_select
from repro.sched.edf import EdfScheduler
from repro.sched.elevator import ElevatorScheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.gss import GssScheduler
from repro.sched.realtime import RealTimeScheduler
from repro.sched.registry import (
    SCHEDULER_NAMES,
    SchedulerSpec,
    register_scheduler,
    scheduler_names,
)
from repro.sched.round_robin import RoundRobinScheduler

__all__ = [
    "DiskScheduler",
    "EdfScheduler",
    "ElevatorScheduler",
    "FcfsScheduler",
    "GssScheduler",
    "RealTimeScheduler",
    "RoundRobinScheduler",
    "SCHEDULER_NAMES",
    "SchedulerSpec",
    "elevator_select",
    "register_scheduler",
    "scheduler_names",
]
