"""The per-node buffer pool with in-flight I/O merging (§5.2.1).

The pool's job during a read:

* **hit** — the block is resident and loaded: pin and return it;
* **in-flight hit** — a read (usually a prefetch) for the block is
  already on its way to the disk: merge onto it instead of issuing a
  duplicate I/O (the caller may tighten the queued request's deadline);
* **miss** — allocate a frame (waiting, if every page is pinned, which
  is what "the server began to run out of free pages" looks like) and
  let the caller perform the read.
"""

from __future__ import annotations

import typing

from repro.bufferpool.page import Page, PageKey
from repro.bufferpool.policies import ReplacementPolicy
from repro.sim.environment import Environment
from repro.sim.resources import Gate

#: Outcomes of :meth:`BufferPool.acquire`.
HIT = "hit"
INFLIGHT = "inflight"
MISS = "miss"


class PoolStats:
    """Reference-stream statistics (drives Figures 11, 12, 16)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.references = 0
        self.hits = 0
        self.inflight_hits = 0
        self.misses = 0
        self.rereferences = 0
        self.prefetch_inserts = 0
        self.wasted_prefetches = 0
        self.dropped_prefetches = 0
        self.evictions = 0
        self.allocation_waits = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.references if self.references else 0.0

    @property
    def rereference_rate(self) -> float:
        return self.rereferences / self.references if self.references else 0.0


class BufferPool:
    def __init__(
        self,
        env: Environment,
        capacity_pages: int,
        policy: ReplacementPolicy,
        prefetch_pool_share: float = 1.0,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError(f"need >= 1 page, got {capacity_pages}")
        if not 0.0 < prefetch_pool_share <= 1.0:
            raise ValueError(
                f"prefetch_pool_share must be in (0, 1], got {prefetch_pool_share}"
            )
        self.env = env
        self.capacity_pages = capacity_pages
        self.policy = policy
        #: Largest number of pages that may simultaneously hold
        #: prefetched-but-not-yet-referenced blocks.
        self.prefetch_cap_pages = max(1, int(prefetch_pool_share * capacity_pages))
        #: With a full pool share, prefetching is "unconstrained"
        #: (§7.3): a prefetch allocation may evict whatever the policy
        #: picks — including other prefetched pages.  A limited share
        #: additionally forbids prefetch-on-prefetch cannibalisation.
        self.prefetch_unconstrained = prefetch_pool_share >= 1.0
        self.pages: dict[PageKey, Page] = {}
        self.prefetched_resident = 0
        self.stats = PoolStats()
        self._page_freed = Gate(env)

    # ------------------------------------------------------------------
    # Lookup / pinning
    # ------------------------------------------------------------------
    def lookup(self, key: PageKey) -> Page | None:
        """Non-binding residence check (used for prefetch dedup)."""
        return self.pages.get(key)

    def pin(self, page: Page) -> None:
        """Take an extra pin on a page already held (or resident).

        Used by the stream-sharing chain registry to keep a
        predecessor's recently fetched pages resident until the chained
        successor consumes them; released with :meth:`unpin`.
        """
        if self.pages.get(page.key) is not page:
            raise ValueError(f"pin of page not in this pool: {page!r}")
        page.pins += 1

    def unpin(self, page: Page) -> None:
        if page.pins <= 0:
            raise ValueError(f"unpin of unpinned page {page!r}")
        page.pins -= 1
        if page.pins == 0:
            self._page_freed.open()

    # ------------------------------------------------------------------
    # The acquire protocol
    # ------------------------------------------------------------------
    def acquire(
        self,
        key: PageKey,
        size: int,
        terminal_id: int | None = None,
        for_prefetch: bool = False,
    ) -> typing.Generator:
        """Generator (use with ``yield from``): pin the page for *key*.

        Returns ``(page, status)`` with status ``HIT``/``INFLIGHT``/
        ``MISS``.  On a MISS the page is newly allocated with a fresh,
        untriggered ``io_event``; the caller must perform the disk read,
        then call :meth:`finish_io`.  On INFLIGHT the caller waits on
        ``page.io_event`` (already pinned, so the page cannot vanish).

        Terminal references (``terminal_id is not None``) update the
        reference statistics and the replacement policy; prefetch
        acquires do not count as references.
        """
        if terminal_id is not None:
            self.stats.references += 1
        while True:
            page = self.pages.get(key)
            if page is not None:
                return self._join(page, terminal_id)
            if len(self.pages) < self.capacity_pages:
                break
            victim = self.policy.victim()
            if victim is not None:
                # Evict and re-loop; no simulated time passes, so the
                # frame cannot be stolen before we insert.
                self._evict(victim)
                continue
            # Every page is pinned or loading: wait for one to free.
            # Time passes here, so the residence check must be redone.
            self.stats.allocation_waits += 1
            yield self._page_freed.wait()

        if terminal_id is not None:
            self.stats.misses += 1
        else:
            self.stats.prefetch_inserts += 1
        page = Page(key, size)
        page.pins = 1
        page.loaded_by_prefetch = for_prefetch
        page.io_event = self.env.event()
        if terminal_id is not None:
            page.referenced_terminals.add(terminal_id)
        self.pages[key] = page
        self.policy.on_insert(page, prefetched=for_prefetch)
        return page, MISS

    def try_acquire_for_prefetch(self, key: PageKey, size: int) -> Page | None:
        """Non-blocking frame allocation for a prefetch read.

        Returns a fresh pinned page with an untriggered ``io_event``
        (the caller performs the read), or None when the block is
        already resident/in flight or no frame can be had without
        evicting another prefetched page.  Prefetching under memory
        pressure is thereby self-throttling: it never blocks a worker
        and never trades one not-yet-used prefetched block for another.
        """
        if key in self.pages:
            return None
        if (
            not self.prefetch_unconstrained
            and self.prefetched_resident >= self.prefetch_cap_pages
        ):
            self.stats.dropped_prefetches += 1
            return None
        if len(self.pages) >= self.capacity_pages:
            victim = self.policy.victim(
                exclude_prefetched=not self.prefetch_unconstrained
            )
            if victim is None:
                self.stats.dropped_prefetches += 1
                return None
            self._evict(victim)
        self.stats.prefetch_inserts += 1
        page = Page(key, size)
        page.pins = 1
        page.loaded_by_prefetch = True
        page.io_event = self.env.event()
        self.pages[key] = page
        self.prefetched_resident += 1
        self.policy.on_insert(page, prefetched=True)
        return page

    def insert_resident(
        self, key: PageKey, size: int, prefetched: bool = False
    ) -> Page | None:
        """Install an already-loaded block without an I/O (pre-loading).

        Used by the proxy tier to stock its pool at construction time:
        the page is born loaded (no ``io_event``) and unpinned, so no
        simulation events are created and no callbacks are scheduled —
        safe before the simulation starts.  Returns None when the block
        is already resident or the pool is full (pre-loading never
        evicts).  ``prefetched`` pages count toward the prefetch
        residency the same way prefetcher-loaded pages do.
        """
        if key in self.pages or len(self.pages) >= self.capacity_pages:
            return None
        page = Page(key, size)
        page.loaded_by_prefetch = prefetched
        self.pages[key] = page
        if prefetched:
            self.prefetched_resident += 1
        self.policy.on_insert(page, prefetched=prefetched)
        return page

    def _join(self, page: Page, terminal_id: int | None) -> tuple[Page, str]:
        """Pin an already-resident (or loading) page."""
        page.pins += 1
        if terminal_id is not None:
            if page.referenced_terminals - {terminal_id}:
                self.stats.rereferences += 1
            page.referenced_terminals.add(terminal_id)
            if page.is_prefetched:
                self.prefetched_resident -= 1
            self.policy.on_reference(page)
            if page.in_flight:
                self.stats.inflight_hits += 1
            else:
                self.stats.hits += 1
        return page, (INFLIGHT if page.in_flight else HIT)

    def finish_io(self, page: Page) -> None:
        """Mark the page loaded and wake everyone merged onto its I/O."""
        event, page.io_event = page.io_event, None
        page.disk_request = None
        event.succeed(page)
        # Loaded unpinned pages become evictable.
        self._page_freed.open()

    def discard_failed(self, page: Page) -> None:
        """Complete a *failed* read (see repro.faults) and drop the page.

        Waiters merged onto the I/O are woken as usual — their reads are
        implicitly failed over by the node — but the page itself must
        not stay resident, or a dead drive would turn into an infinitely
        fast one serving permanent hits.  If merged waiters still pin
        the page it survives until they unpin; the common (prefetch)
        case evicts immediately so the block is re-read when really
        requested.
        """
        self.finish_io(page)
        self.unpin(page)
        if page.evictable and self.pages.get(page.key) is page:
            self._evict(page)

    def _evict(self, victim: Page) -> None:
        if not victim.evictable:
            raise ValueError(f"evicting non-evictable page {victim!r}")
        if victim.is_prefetched:
            self.prefetched_resident -= 1
        if victim.is_prefetched and victim.loaded_by_prefetch:
            # Prefetched but never referenced: the I/O was wasted and the
            # block will have to be read again when really requested.
            self.stats.wasted_prefetches += 1
        self.stats.evictions += 1
        self.policy.on_evict(victim)
        del self.pages[victim.key]

    @property
    def resident_pages(self) -> int:
        return len(self.pages)

    def reset_stats(self) -> None:
        self.stats.reset()
