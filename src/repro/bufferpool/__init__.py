"""Server buffer pool: page table, pinning, global LRU and love prefetch."""

from repro.bufferpool.page import Page, PageKey
from repro.bufferpool.policies import GlobalLru, LovePrefetch, ReplacementPolicy, make_policy
from repro.bufferpool.pool import HIT, INFLIGHT, MISS, BufferPool, PoolStats
from repro.bufferpool.registry import (
    ReplacementSpec,
    register_replacement,
    replacement_names,
)

__all__ = [
    "BufferPool",
    "GlobalLru",
    "HIT",
    "INFLIGHT",
    "LovePrefetch",
    "MISS",
    "Page",
    "PageKey",
    "PoolStats",
    "ReplacementPolicy",
    "ReplacementSpec",
    "make_policy",
    "register_replacement",
    "replacement_names",
]
