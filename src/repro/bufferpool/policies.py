"""Page replacement policies: global LRU and love prefetch (§5.2.1)."""

from __future__ import annotations

from collections import OrderedDict

from repro.bufferpool.page import Page


class ReplacementPolicy:
    """Maintains replacement ordering; the pool owns the page table."""

    name = "base"

    def on_insert(self, page: Page, prefetched: bool) -> None:
        """A page entered the pool (freshly read or prefetched)."""
        raise NotImplementedError

    def on_reference(self, page: Page) -> None:
        """A terminal referenced a resident page."""
        raise NotImplementedError

    def on_evict(self, page: Page) -> None:
        """The pool evicted *page*; forget it."""
        raise NotImplementedError

    def victim(self, exclude_prefetched: bool = False) -> Page | None:
        """The first evictable page in policy order, or None.

        ``exclude_prefetched`` restricts the choice to pages that are
        not awaiting their first reference — used by prefetch
        allocations, which must never cannibalise other prefetched
        data (doing so only converts one wasted I/O into another).
        """
        raise NotImplementedError


class GlobalLru(ReplacementPolicy):
    """A single LRU queue that does not distinguish prefetched pages.

    "Simply places newly referenced pages onto the end of a single
    queue.  When a new page is needed, the buffer pool searches for the
    first available page starting from the head of the queue."
    """

    name = "global_lru"

    def __init__(self) -> None:
        self._queue: OrderedDict[int, Page] = OrderedDict()

    def on_insert(self, page: Page, prefetched: bool) -> None:
        page.is_prefetched = prefetched
        self._queue[id(page)] = page

    def on_reference(self, page: Page) -> None:
        page.is_prefetched = False
        self._queue.move_to_end(id(page))

    def on_evict(self, page: Page) -> None:
        del self._queue[id(page)]

    def victim(self, exclude_prefetched: bool = False) -> Page | None:
        for page in self._queue.values():
            if page.evictable and not (exclude_prefetched and page.is_prefetched):
                return page
        return None


class LovePrefetch(ReplacementPolicy):
    """Two LRU chains favouring prefetched pages over referenced ones.

    Prefetched pages start on the prefetched chain and move to the
    referenced chain on first reference.  Victims come from the
    referenced chain first; only when it has no available page is a
    prefetched page sacrificed — protecting prefetched-but-not-yet-used
    data, which is the only data in a video server likely to be read
    from memory at all (§5.2.1, after [Teng84]).
    """

    name = "love_prefetch"

    def __init__(self) -> None:
        self._prefetched: OrderedDict[int, Page] = OrderedDict()
        self._referenced: OrderedDict[int, Page] = OrderedDict()

    def on_insert(self, page: Page, prefetched: bool) -> None:
        page.is_prefetched = prefetched
        chain = self._prefetched if prefetched else self._referenced
        chain[id(page)] = page

    def on_reference(self, page: Page) -> None:
        if page.is_prefetched:
            page.is_prefetched = False
            del self._prefetched[id(page)]
            self._referenced[id(page)] = page
        else:
            self._referenced.move_to_end(id(page))

    def on_evict(self, page: Page) -> None:
        chain = self._prefetched if page.is_prefetched else self._referenced
        del chain[id(page)]

    def victim(self, exclude_prefetched: bool = False) -> Page | None:
        for page in self._referenced.values():
            if page.evictable:
                return page
        if exclude_prefetched:
            return None
        for page in self._prefetched.values():
            if page.evictable:
                return page
        return None


def make_policy(name: str) -> ReplacementPolicy:
    """Build a registered policy by name (see ``bufferpool.registry``)."""
    from repro.bufferpool.registry import ReplacementSpec

    return ReplacementSpec(name).build()
