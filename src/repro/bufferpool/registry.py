"""Replacement-policy construction from a registry-backed spec.

``ReplacementSpec`` mirrors :class:`repro.sched.registry.SchedulerSpec`:
the name selects a registered factory, and third-party policies plug in
via :func:`register_replacement` without touching ``repro.core.system``::

    from repro.bufferpool import ReplacementSpec, register_replacement

    register_replacement("clock", ClockPolicy)
    config = SpiffiConfig(replacement_policy=ReplacementSpec("clock"))
"""

from __future__ import annotations

import dataclasses
import typing

from repro.bufferpool.policies import GlobalLru, LovePrefetch, ReplacementPolicy

_REGISTRY: dict[str, typing.Callable[[], ReplacementPolicy]] = {}


def register_replacement(
    name: str, factory: typing.Callable[[], ReplacementPolicy]
) -> None:
    """Make *name* selectable via ``ReplacementSpec(name)``."""
    if not name or not isinstance(name, str):
        raise ValueError(
            f"replacement policy name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def replacement_names() -> tuple[str, ...]:
    """Every currently registered policy name (registration order)."""
    return tuple(_REGISTRY)


@dataclasses.dataclass(frozen=True)
class ReplacementSpec:
    """Which page replacement policy each node's buffer pool runs."""

    name: str = "global_lru"

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise ValueError(
                f"unknown replacement policy {self.name!r}; "
                f"choose from {replacement_names()}"
            )

    def build(self) -> ReplacementPolicy:
        """A fresh policy instance (one per node pool)."""
        return _REGISTRY[self.name]()

    def label(self) -> str:
        return self.name.replace("_", "-")


register_replacement("global_lru", GlobalLru)
register_replacement("love_prefetch", LovePrefetch)
