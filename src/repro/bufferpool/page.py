"""Buffer pool pages (stripe blocks resident in server memory)."""

from __future__ import annotations

import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.storage.request import DiskRequest

#: A page is identified by the (video, stripe block) pair it holds.
PageKey = typing.Tuple[int, int]


class Page:
    """One stripe block in the buffer pool.

    Pages are *pinned* while an I/O is loading them or a reply is being
    sent; pinned pages cannot be evicted.  ``io_event`` is set while the
    disk read is in flight so later requests for the same block merge
    onto one I/O instead of issuing a duplicate.
    """

    __slots__ = (
        "key",
        "size",
        "pins",
        "io_event",
        "disk_request",
        "deadline_hint",
        "is_prefetched",
        "loaded_by_prefetch",
        "referenced_terminals",
    )

    def __init__(self, key: PageKey, size: int) -> None:
        self.key = key
        self.size = size
        self.pins = 0
        self.io_event: Event | None = None
        self.disk_request: "DiskRequest | None" = None
        #: Tightest deadline requested by anyone merged onto this
        #: page's I/O; applied when/if the disk request is created (a
        #: merge can arrive before the original misser reaches the
        #: disk).
        self.deadline_hint = float("inf")
        #: True while the page sits on the prefetched chain (loaded by a
        #: prefetch and not yet referenced by any terminal).
        self.is_prefetched = False
        #: How the page entered the pool (for wasted-prefetch stats).
        self.loaded_by_prefetch = False
        #: Terminal ids that have referenced this page while resident.
        self.referenced_terminals: set[int] = set()

    @property
    def in_flight(self) -> bool:
        return self.io_event is not None

    @property
    def evictable(self) -> bool:
        return self.pins == 0 and self.io_event is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.in_flight:
            flags.append("io")
        if self.is_prefetched:
            flags.append("prefetched")
        return f"<Page {self.key} pins={self.pins} {'|'.join(flags)}>"
