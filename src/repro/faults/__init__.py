"""Seeded fault injection and degraded-mode behaviour.

The subsystem is inert unless :class:`FaultSpec` on the run config has
a nonzero fault rate; the default (empty) spec leaves every run
bit-identical to a build without this package.
"""

from repro.faults.injector import FaultInjector, FaultRuntime, FaultStats
from repro.faults.schedule import NETWORK_TARGET, FaultEvent, build_schedule
from repro.faults.spec import (
    DISK_FAIL,
    DISK_OUTAGE,
    DISK_SLOW,
    FAULT_KINDS,
    NET_DEGRADE,
    FaultSpec,
)

__all__ = [
    "DISK_FAIL",
    "DISK_OUTAGE",
    "DISK_SLOW",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultRuntime",
    "FaultSpec",
    "FaultStats",
    "NETWORK_TARGET",
    "NET_DEGRADE",
    "build_schedule",
]
