"""Applying a fault schedule to a live system, and the shared runtime
state the degraded-mode server paths consult.

:class:`FaultRuntime` is the blackboard: which faults are active right
now (for glitch attribution), the degraded-mode knobs from the spec,
resettable counters for metrics, and the optional trace recorder.
:class:`FaultInjector` is the simulation process that walks the
precomputed :func:`~repro.faults.schedule.build_schedule` timetable,
flipping component fault state on and off at the scheduled instants.
"""

from __future__ import annotations

import math
import typing

from repro.faults.schedule import FaultEvent
from repro.faults.spec import (
    DISK_FAIL,
    DISK_OUTAGE,
    DISK_SLOW,
    NET_DEGRADE,
    FaultSpec,
)
from repro.sim.environment import Environment
from repro.telemetry.trace import FAULT_END, FAULT_RETRY, FAULT_START

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.bus import NetworkBus
    from repro.replication.health import HealthMonitor
    from repro.server.admission import AdmissionController
    from repro.storage.drive import DiskDrive
    from repro.telemetry.trace import TraceRecorder


class FaultStats:
    """Resettable fault accounting for the measurement window."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.events_injected = 0
        self.retries = 0
        self.abandoned_reads = 0
        self.failed_reads = 0


class FaultRuntime:
    """Shared fault state: activity tracking, counters, degraded knobs."""

    def __init__(self, env: Environment, spec: FaultSpec) -> None:
        self.env = env
        self.spec = spec
        self.stats = FaultStats()
        #: Optional :class:`~repro.telemetry.trace.TraceRecorder`.
        self.trace: "TraceRecorder | None" = None
        self._active = 0
        self._last_end = -math.inf

    # --- activity tracking (drives glitch attribution) -----------------
    @property
    def active_faults(self) -> int:
        return self._active

    def fault_began(self, event: FaultEvent) -> None:
        self._active += 1
        self.stats.events_injected += 1
        if self.trace is not None:  # skip building fields when untraced
            self.record(
                FAULT_START,
                fault=event.kind,
                target=event.target,
                magnitude=event.magnitude,
                duration_s=event.duration_s,
            )

    def fault_ended(self, event: FaultEvent) -> None:
        if self._active <= 0:
            raise ValueError("fault_ended() with no active faults")
        self._active -= 1
        self._last_end = self.env.now
        if self.trace is not None:
            self.record(FAULT_END, fault=event.kind, target=event.target)

    def attributable(self) -> bool:
        """Whether a glitch starting now should be blamed on a fault."""
        if self._active > 0:
            return True
        return (self.env.now - self._last_end) <= self.spec.attribution_grace_s

    # --- degraded-mode accounting (called from the server node) --------
    def note_retry(self, disk_id: int, terminal_id: int, attempt: int) -> None:
        self.stats.retries += 1
        if self.trace is not None:
            self.record(
                FAULT_RETRY, disk=disk_id, terminal=terminal_id, attempt=attempt
            )

    def note_abandoned(self, disk_id: int, terminal_id: int) -> None:
        self.stats.abandoned_reads += 1

    def note_failed_read(self, disk_id: int, terminal_id: int) -> None:
        self.stats.failed_reads += 1

    def record(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(kind, **fields)

    def reset_stats(self) -> None:
        self.stats.reset()


class FaultInjector:
    """Walks the fault timetable, degrading and restoring components."""

    def __init__(
        self,
        env: Environment,
        runtime: FaultRuntime,
        schedule: typing.Sequence[FaultEvent],
        drives: typing.Sequence["DiskDrive"],
        bus: "NetworkBus",
        admission: "AdmissionController",
        health: "HealthMonitor | None" = None,
    ) -> None:
        self.env = env
        self.runtime = runtime
        self.schedule = tuple(schedule)
        self.drives = list(drives)
        self.bus = bus
        self.admission = admission
        #: Optional per-disk health model (replication configured); told
        #: about every disk fault as it is applied and reverted.
        self.health = health
        if self.schedule:
            env.process(self._run(), name="fault-injector")

    def _run(self):
        env = self.env
        for event in self.schedule:
            if event.start_s > env.now:
                yield env.timeout(event.start_s - env.now)
            env.process(
                self._fault(event), name=f"fault-{event.kind}-{event.target}"
            )
        return None

    def _fault(self, event: FaultEvent):
        """One fault's lifetime: apply, hold, revert."""
        runtime = self.runtime
        spec = runtime.spec
        runtime.fault_began(event)
        shed = False
        if event.kind == DISK_SLOW:
            self.drives[event.target].add_slowdown(event.magnitude)
        elif event.kind == DISK_OUTAGE:
            self.drives[event.target].begin_outage()
            shed = spec.shed_during_outage
        elif event.kind == DISK_FAIL:
            self.drives[event.target].fail_permanently()
        elif event.kind == NET_DEGRADE:
            self.bus.degrade(event.magnitude)
        else:
            raise ValueError(f"unknown fault kind {event.kind!r}")
        if self.health is not None:
            self.health.fault_applied(event)
        if shed:
            self.admission.begin_shed()

        if event.permanent:
            # Permanent failures never revert; the fault stays active,
            # so every later glitch is fault-attributed.
            return None
        yield self.env.timeout(event.duration_s)

        if event.kind == DISK_SLOW:
            self.drives[event.target].remove_slowdown(event.magnitude)
        elif event.kind == DISK_OUTAGE:
            self.drives[event.target].end_outage()
        elif event.kind == NET_DEGRADE:
            self.bus.restore(event.magnitude)
        if self.health is not None:
            self.health.fault_reverted(event)
        if shed:
            self.admission.end_shed()
        runtime.fault_ended(event)
        return None
