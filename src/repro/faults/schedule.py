"""Deterministic fault timetables drawn from a dedicated random stream.

The schedule is computed *before* the simulation starts, purely from
the :class:`~repro.faults.spec.FaultSpec`, the hardware shape, and one
:class:`~repro.sim.rng.RandomSource` — so a fault scenario is part of
the run's identity: the same config produces the same faults at the
same instants on any executor or job count.

Each disk gets its own child stream (``disk-<n>``), so adding disks or
changing the network schedule never perturbs another disk's faults —
the same stream-per-component discipline the rest of the simulator
uses.
"""

from __future__ import annotations

import dataclasses
import math

from repro.faults.spec import (
    DISK_FAIL,
    DISK_OUTAGE,
    DISK_SLOW,
    NET_DEGRADE,
    FaultSpec,
)
from repro.sim.rng import RandomSource

#: ``target`` value for bus-wide (non-disk) events.
NETWORK_TARGET = -1


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what, where, when, for how long."""

    start_s: float
    kind: str
    #: Global disk index, or :data:`NETWORK_TARGET` for the bus.
    target: int
    #: ``inf`` for permanent failures.
    duration_s: float
    #: Latency multiplier for slow-I/O / network events; 0 otherwise.
    magnitude: float

    @property
    def permanent(self) -> bool:
        return math.isinf(self.duration_s)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


def build_schedule(
    spec: FaultSpec, disk_count: int, horizon_s: float, rng: RandomSource
) -> tuple[FaultEvent, ...]:
    """The full fault timetable for one run, in start-time order.

    *rng* must be a stream dedicated to fault generation (the system
    spawns ``"faults"`` off the master seed); *horizon_s* bounds event
    starts to the simulated interval ``[0, horizon_s)``.
    """
    if disk_count < 1:
        raise ValueError(f"disk_count must be >= 1, got {disk_count}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    events: list[FaultEvent] = []
    if spec.disk_fault_rate_per_hour > 0:
        for disk in range(disk_count):
            events.extend(
                _disk_events(spec, disk, horizon_s, rng.spawn(f"disk-{disk}"))
            )
    if spec.network_fault_rate_per_hour > 0:
        events.extend(_network_events(spec, horizon_s, rng.spawn("network")))
    # Explicit permanent failures: scripted, no randomness consumed.
    for disk in spec.fail_disk_ids:
        if disk >= disk_count:
            raise ValueError(
                f"fail_disk_ids names disk {disk}, but the system has only "
                f"{disk_count} disks (valid: 0..{disk_count - 1})"
            )
        events.append(
            FaultEvent(
                start_s=spec.fail_at_s,
                kind=DISK_FAIL,
                target=disk,
                duration_s=math.inf,
                magnitude=0.0,
            )
        )
    events.sort(key=lambda event: (event.start_s, event.target, event.kind))
    return tuple(events)


def _disk_events(
    spec: FaultSpec, disk: int, horizon_s: float, rng: RandomSource
) -> list[FaultEvent]:
    mean_interval = 3600.0 / spec.disk_fault_rate_per_hour
    total_weight = spec._total_weight()
    events: list[FaultEvent] = []
    at = rng.exponential(mean_interval)
    while at < horizon_s:
        draw = rng.uniform(0.0, total_weight)
        if draw < spec.slow_weight:
            events.append(
                FaultEvent(
                    start_s=at,
                    kind=DISK_SLOW,
                    target=disk,
                    duration_s=rng.exponential(spec.mean_slow_duration_s),
                    magnitude=spec.slow_latency_multiplier,
                )
            )
        elif draw < spec.slow_weight + spec.outage_weight:
            events.append(
                FaultEvent(
                    start_s=at,
                    kind=DISK_OUTAGE,
                    target=disk,
                    duration_s=rng.exponential(spec.mean_outage_duration_s),
                    magnitude=0.0,
                )
            )
        else:
            events.append(
                FaultEvent(
                    start_s=at,
                    kind=DISK_FAIL,
                    target=disk,
                    duration_s=math.inf,
                    magnitude=0.0,
                )
            )
            break  # A dead drive produces no further faults.
        at += rng.exponential(mean_interval)
    return events


def _network_events(
    spec: FaultSpec, horizon_s: float, rng: RandomSource
) -> list[FaultEvent]:
    mean_interval = 3600.0 / spec.network_fault_rate_per_hour
    events: list[FaultEvent] = []
    at = rng.exponential(mean_interval)
    while at < horizon_s:
        events.append(
            FaultEvent(
                start_s=at,
                kind=NET_DEGRADE,
                target=NETWORK_TARGET,
                duration_s=rng.exponential(spec.mean_network_fault_duration_s),
                magnitude=spec.network_latency_multiplier,
            )
        )
        at += rng.exponential(mean_interval)
    return events
