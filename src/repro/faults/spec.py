"""Fault-injection configuration.

``FaultSpec`` follows the same declarative-spec idiom as
:class:`repro.sched.registry.SchedulerSpec`: an immutable value object
on :class:`repro.core.config.SpiffiConfig` from which everything else —
the fault schedule, the degraded-mode server behaviour, the glitch
attribution — is derived deterministically.

The default spec is **empty** (both rates zero): no injector process is
created, no extra random draws happen, and a run is bit-identical to
one on a build without the fault subsystem at all.
"""

from __future__ import annotations

import dataclasses
import math

#: Fault kinds produced by the schedule generator.
DISK_SLOW = "disk_slow"
DISK_OUTAGE = "disk_outage"
DISK_FAIL = "disk_fail"
NET_DEGRADE = "net_degrade"
#: Cluster-level kind: a whole server node drops out (see
#: :mod:`repro.cluster`; never produced by the per-node schedule).
NODE_OUTAGE = "node_outage"

FAULT_KINDS = (DISK_SLOW, DISK_OUTAGE, DISK_FAIL, NET_DEGRADE, NODE_OUTAGE)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """A seeded, deterministic schedule of hardware misbehaviour.

    Disk faults arrive per disk as a Poisson process at
    ``disk_fault_rate_per_hour``; each arrival is one of

    * *slow I/O* — every service time is multiplied by
      ``slow_latency_multiplier`` for an exponentially distributed
      duration (mean ``mean_slow_duration_s``);
    * *outage* — the drive stops servicing entirely for an exponential
      duration (mean ``mean_outage_duration_s``); queued requests wait;
    * *permanent failure* — the drive completes every current and
      future request immediately as *failed*; the server fails the
      read over (see below) instead of waiting.

    The three kinds are drawn with probability proportional to their
    ``*_weight``.  Network degradation events arrive bus-wide at
    ``network_fault_rate_per_hour`` and multiply every transit time by
    ``network_latency_multiplier`` for an exponential duration.

    Degraded-mode server behaviour (active only when the spec is
    non-empty):

    * every terminal-facing disk read carries a timeout of
      ``request_timeout_s``; on expiry the node cancels the queued
      request and re-dispatches it, up to ``max_retries`` times;
    * a read that exhausts its retries, or whose drive has failed
      permanently, is *failed over*: the node serves the block after a
      ``failover_penalty_s`` delay (modelling retrieval from a replica
      or error concealment) so streams degrade instead of deadlocking;
    * while a disk outage is active (and ``shed_during_outage`` is
      set), admission control stops admitting new streams; waiting
      terminals are admitted when the outage clears.

    A glitch is *fault-attributed* when it begins while any fault is
    active or within ``attribution_grace_s`` of one ending; metrics
    report fault-attributed and scheduling glitches separately.
    """

    # --- disk fault schedule -------------------------------------------
    disk_fault_rate_per_hour: float = 0.0
    slow_weight: float = 3.0
    outage_weight: float = 1.0
    fail_weight: float = 0.0
    slow_latency_multiplier: float = 4.0
    mean_slow_duration_s: float = 20.0
    mean_outage_duration_s: float = 5.0

    # --- explicit permanent failures -----------------------------------
    #: Global disk indices that fail permanently at ``fail_at_s``,
    #: independent of the random schedule — the deterministic scenario
    #: knob availability experiments sweep.  Validated against the disk
    #: count (and the replication factor's survivor requirement) at
    #: config time.
    fail_disk_ids: tuple[int, ...] = ()
    fail_at_s: float = 0.0

    # --- cluster-level node outages (see repro.cluster) -----------------
    #: Cluster member indices that drop out at ``fail_nodes_at_s``; the
    #: cluster reroutes their sessions to surviving replica hosts.
    #: Rejected on a single node's :class:`SpiffiConfig` — a node cannot
    #: out-live itself; only :class:`~repro.cluster.ClusterConfig`
    #: accepts these fields (validated against its member count).
    fail_node_ids: tuple[int, ...] = ()
    fail_nodes_at_s: float = 0.0
    #: Simulated seconds after the outage until the nodes rejoin
    #: (0 = the outage is permanent).
    node_recover_after_s: float = 0.0
    #: Spacing between consecutive node failures: member
    #: ``fail_node_ids[k]`` drops at ``fail_nodes_at_s + k * stagger``
    #: (0 = all listed nodes fail simultaneously, the historical
    #: semantics).  Each node's recovery, when scripted, follows its
    #: own failure by ``node_recover_after_s``.
    fail_node_stagger_s: float = 0.0

    # --- network degradation schedule ----------------------------------
    network_fault_rate_per_hour: float = 0.0
    network_latency_multiplier: float = 8.0
    mean_network_fault_duration_s: float = 10.0

    # --- degraded-mode server behaviour --------------------------------
    request_timeout_s: float = 2.0
    max_retries: int = 2
    failover_penalty_s: float = 0.5
    shed_during_outage: bool = True

    # --- glitch attribution --------------------------------------------
    attribution_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.disk_fault_rate_per_hour < 0:
            raise ValueError(
                f"disk fault rate must be >= 0, got {self.disk_fault_rate_per_hour}"
            )
        if self.network_fault_rate_per_hour < 0:
            raise ValueError(
                f"network fault rate must be >= 0, "
                f"got {self.network_fault_rate_per_hour}"
            )
        for label, weight in (
            ("slow_weight", self.slow_weight),
            ("outage_weight", self.outage_weight),
            ("fail_weight", self.fail_weight),
        ):
            if weight < 0:
                raise ValueError(f"{label} must be >= 0, got {weight}")
        if self.disk_fault_rate_per_hour > 0 and self._total_weight() <= 0:
            raise ValueError(
                "disk faults enabled but every kind weight is zero"
            )
        if self.slow_latency_multiplier < 1.0:
            raise ValueError(
                f"slow_latency_multiplier must be >= 1, "
                f"got {self.slow_latency_multiplier}"
            )
        if self.network_latency_multiplier < 1.0:
            raise ValueError(
                f"network_latency_multiplier must be >= 1, "
                f"got {self.network_latency_multiplier}"
            )
        for label, duration in (
            ("mean_slow_duration_s", self.mean_slow_duration_s),
            ("mean_outage_duration_s", self.mean_outage_duration_s),
            ("mean_network_fault_duration_s", self.mean_network_fault_duration_s),
        ):
            if duration <= 0:
                raise ValueError(f"{label} must be positive, got {duration}")
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive, got {self.request_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.failover_penalty_s < 0:
            raise ValueError(
                f"failover_penalty_s must be >= 0, got {self.failover_penalty_s}"
            )
        if self.attribution_grace_s < 0:
            raise ValueError(
                f"attribution_grace_s must be >= 0, got {self.attribution_grace_s}"
            )
        if not isinstance(self.fail_disk_ids, tuple):
            object.__setattr__(self, "fail_disk_ids", tuple(self.fail_disk_ids))
        for disk in self.fail_disk_ids:
            if not isinstance(disk, int) or disk < 0:
                raise ValueError(
                    f"fail_disk_ids must be non-negative disk indices, "
                    f"got {self.fail_disk_ids!r}"
                )
        if len(set(self.fail_disk_ids)) != len(self.fail_disk_ids):
            raise ValueError(
                f"fail_disk_ids contains duplicates: {self.fail_disk_ids!r}"
            )
        if self.fail_at_s < 0 or not math.isfinite(self.fail_at_s):
            raise ValueError(
                f"fail_at_s must be finite and >= 0, got {self.fail_at_s}"
            )
        if self.fail_at_s > 0 and not self.fail_disk_ids:
            raise ValueError(
                f"fail_at_s={self.fail_at_s:g} but fail_disk_ids is empty: "
                "nothing is scheduled to fail"
            )
        if not isinstance(self.fail_node_ids, tuple):
            object.__setattr__(self, "fail_node_ids", tuple(self.fail_node_ids))
        for node in self.fail_node_ids:
            if not isinstance(node, int) or node < 0:
                raise ValueError(
                    f"fail_node_ids must be non-negative node indices, "
                    f"got {self.fail_node_ids!r}"
                )
        if len(set(self.fail_node_ids)) != len(self.fail_node_ids):
            raise ValueError(
                f"fail_node_ids contains duplicates: {self.fail_node_ids!r}"
            )
        if self.fail_nodes_at_s < 0 or not math.isfinite(self.fail_nodes_at_s):
            raise ValueError(
                f"fail_nodes_at_s must be finite and >= 0, "
                f"got {self.fail_nodes_at_s}"
            )
        if self.fail_nodes_at_s > 0 and not self.fail_node_ids:
            raise ValueError(
                f"fail_nodes_at_s={self.fail_nodes_at_s:g} but fail_node_ids "
                "is empty: no node is scheduled to fail"
            )
        if self.node_recover_after_s < 0 or not math.isfinite(
            self.node_recover_after_s
        ):
            raise ValueError(
                f"node_recover_after_s must be finite and >= 0, "
                f"got {self.node_recover_after_s}"
            )
        if self.node_recover_after_s > 0 and not self.fail_node_ids:
            raise ValueError(
                "node_recover_after_s without fail_node_ids: nothing to recover"
            )
        if self.fail_node_stagger_s < 0 or not math.isfinite(
            self.fail_node_stagger_s
        ):
            raise ValueError(
                f"fail_node_stagger_s must be finite and >= 0, "
                f"got {self.fail_node_stagger_s}"
            )
        if self.fail_node_stagger_s > 0 and len(self.fail_node_ids) < 2:
            raise ValueError(
                f"fail_node_stagger_s={self.fail_node_stagger_s:g} needs at "
                f"least two fail_node_ids to stagger, "
                f"got {self.fail_node_ids!r}"
            )
        if (
            0 < self.node_recover_after_s <= self.fail_node_stagger_s
        ) and len(self.fail_node_ids) > 1:
            # Each node would recover before the next one fails; allowed,
            # but recovery *at* the same instant as the next failure is
            # an ordering trap the driver refuses to arbitrate.
            if self.node_recover_after_s == self.fail_node_stagger_s:
                raise ValueError(
                    f"node_recover_after_s ({self.node_recover_after_s:g}) "
                    f"equals fail_node_stagger_s: a node would recover at "
                    "the exact instant the next fails; offset one of the "
                    "two fields"
                )

    def _total_weight(self) -> float:
        return self.slow_weight + self.outage_weight + self.fail_weight

    @property
    def enabled(self) -> bool:
        """Whether any *node-internal* fault (disk or network) can ever
        be injected under this spec.  Node-level outages are driven by
        the cluster, not the per-node injector, and do not count."""
        return (
            self.disk_fault_rate_per_hour > 0
            or self.network_fault_rate_per_hour > 0
            or bool(self.fail_disk_ids)
        )

    @property
    def node_outages_enabled(self) -> bool:
        """Whether the spec scripts cluster-level node outages."""
        return bool(self.fail_node_ids)

    def label(self) -> str:
        """Human-readable summary used in benchmark tables."""
        if not self.enabled and not self.node_outages_enabled:
            return "no faults"
        parts = []
        if self.disk_fault_rate_per_hour > 0:
            parts.append(f"disk {self.disk_fault_rate_per_hour:g}/h")
        if self.network_fault_rate_per_hour > 0:
            parts.append(f"net {self.network_fault_rate_per_hour:g}/h")
        if self.fail_disk_ids:
            parts.append(f"fail {len(self.fail_disk_ids)} disk(s)")
        if self.fail_node_ids:
            text = f"fail {len(self.fail_node_ids)} node(s)"
            if self.fail_node_stagger_s > 0:
                text += f" @{self.fail_node_stagger_s:g}s apart"
            if self.node_recover_after_s > 0:
                text += f" +recover {self.node_recover_after_s:g}s"
            parts.append(text)
        return "faults(" + ", ".join(parts) + ")"
