"""Aggregated simulation outputs for one run."""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import SpiffiSystem

MB = 1024 * 1024


@dataclasses.dataclass(frozen=True)
class RunMetrics:
    """Everything the paper's figures and tables read off a run.

    All values cover only the measurement window (after warmup).
    """

    terminals: int
    measure_s: float
    # Glitch metrics (the primary metric, §7.1).
    glitches: int
    glitching_terminals: int
    mean_glitch_duration_s: float
    # Device utilizations.
    disk_utilization_mean: float
    disk_utilization_min: float
    disk_utilization_max: float
    cpu_utilization_mean: float
    # Network (Figure 18).
    network_peak_bytes_per_s: float
    network_mean_bytes_per_s: float
    # Buffer pool (Figures 11, 12, 16).
    buffer_references: int
    buffer_hit_rate: float
    buffer_inflight_hit_rate: float
    rereference_rate: float
    wasted_prefetches: int
    dropped_prefetches: int
    allocation_waits: int
    # Prefetching.
    prefetches_issued: int
    prefetches_completed: int
    # Terminal experience.
    mean_response_time_s: float
    max_response_time_s: float
    deadline_misses: int
    blocks_delivered: int
    mean_startup_latency_s: float
    videos_completed: int
    pauses_taken: int
    # Admission control (only non-zero when a policy is enforced).
    admissions_queued: int
    admission_mean_wait_s: float
    # Fault injection (all zero unless the config schedules faults;
    # defaulted so cached metrics from earlier schema versions load).
    fault_glitches: int = 0
    fault_events_injected: int = 0
    fault_retries: int = 0
    fault_abandoned_reads: int = 0
    fault_failed_reads: int = 0
    # Open-system workload & QoS (sessions all zero unless an arrival
    # process is configured; startup percentiles cover whichever
    # playback starts fell inside the window, open or closed; defaulted
    # for the same cached-metrics compatibility reason).
    offered_sessions: int = 0
    admitted_sessions: int = 0
    balked_sessions: int = 0
    reneged_sessions: int = 0
    completed_sessions: int = 0
    abandoned_sessions: int = 0
    arrival_rate_per_s: float = 0.0
    startup_p50_s: float = 0.0
    startup_p95_s: float = 0.0
    startup_p99_s: float = 0.0
    startup_slo_attainment: float = 0.0
    admission_max_wait_s: float = 0.0
    admission_queue_len_mean: float = 0.0
    admission_queue_len_max: float = 0.0
    # Replication & recovery (all zero unless replication_factor > 1;
    # defaulted for the same cached-metrics compatibility reason).
    failover_reads: int = 0
    remote_replica_reads: int = 0
    rebuild_reads: int = 0
    rebuild_blocks: int = 0
    rebuild_io_bytes: int = 0
    rebuilds_completed: int = 0
    mean_time_to_rebuild_s: float = 0.0
    # Proxy/edge prefix-cache tier (all zero unless the config enables
    # a proxy; defaulted for cached-metrics compatibility, and an
    # all-zero group is dropped from :meth:`deterministic_dict` so
    # proxy-less digests match the pre-proxy schema exactly).
    proxy_requests: int = 0
    proxy_hits: int = 0
    proxy_misses: int = 0
    proxy_served_bytes: int = 0
    proxy_origin_bytes: int = 0
    # Stream sharing (all zero unless a sharing policy or the legacy
    # piggyback window engages; the whole group is dropped from
    # :meth:`deterministic_dict` while inert, same discipline as the
    # proxy group).  Piggyback and batched-admission launches both
    # count here: ``shared_streams`` is every session served without a
    # disk stream of its own.
    batches_launched: int = 0
    shared_streams: int = 0
    merged_sessions: int = 0
    chain_reads: int = 0
    chain_breaks: int = 0
    sharing_fraction: float = 0.0
    # Cluster failover & self-healing (all zero unless the cluster
    # scripts node outages or enables self_heal; the whole group is
    # dropped from :meth:`deterministic_dict` while inert so earlier
    # digests survive, same discipline as the proxy group).
    failed_over_sessions: int = 0
    lost_sessions: int = 0
    spilled_sessions: int = 0
    node_titles_rebuilt: int = 0
    node_titles_unrecoverable: int = 0
    node_rebuild_bytes: int = 0
    #: Simulated seconds from the first scripted outage to the instant
    #: the last planned re-replication went live (0.0 when rebuild is
    #: off or never finished).
    replication_restore_s: float = 0.0
    rejoin_resyncs: int = 0
    rejoin_resync_bytes: int = 0
    #: Per-member breakdown for multi-node runs: one mapping per node
    #: (routed sessions, queue depth, disk utilization, rebuild traffic
    #: ...).  Diagnostic only — excluded from equality and from
    #: :meth:`deterministic_dict`, so cluster aggregates hash exactly
    #: as before; the aggregate fields above remain the ground truth.
    per_node: tuple = dataclasses.field(default=(), compare=False)
    # Execution accounting (stamped by ``run_simulation`` via
    # ``repro.telemetry.runstats``; zero when a system is run directly).
    # Wall time is host-dependent, so it does not participate in
    # equality: two runs of the same config compare equal.  The event
    # count is deterministic and does participate.
    wall_time_s: float = dataclasses.field(default=0.0, compare=False)
    events_processed: int = 0

    def __post_init__(self) -> None:
        # Cached entries round-trip through JSON, which turns the
        # per-node tuple into a list; normalise so cache hits compare
        # (and re-serialise) identically to fresh runs.
        if not isinstance(self.per_node, tuple):
            object.__setattr__(self, "per_node", tuple(self.per_node))

    @property
    def glitch_free(self) -> bool:
        return self.glitches == 0

    @property
    def events_per_second(self) -> float:
        """Kernel throughput: simulator events per host wall second.

        0.0 when execution accounting was not stamped (e.g. a system
        run directly rather than through ``run_simulation``).
        """
        return (
            self.events_processed / self.wall_time_s if self.wall_time_s > 0 else 0.0
        )

    @property
    def scheduling_glitches(self) -> int:
        """Glitches *not* attributed to an injected fault."""
        return self.glitches - self.fault_glitches

    @property
    def network_peak_mbytes_per_s(self) -> float:
        return self.network_peak_bytes_per_s / MB

    @property
    def rejected_sessions(self) -> int:
        """Denied demand: arrivals that balked or reneged."""
        return self.balked_sessions + self.reneged_sessions

    @property
    def rejection_rate(self) -> float:
        """Rejected fraction of offered sessions (0.0 with no arrivals)."""
        return (
            self.rejected_sessions / self.offered_sessions
            if self.offered_sessions
            else 0.0
        )

    @property
    def proxy_hit_rate(self) -> float:
        """Fraction of proxy requests served from proxy memory."""
        return self.proxy_hits / self.proxy_requests if self.proxy_requests else 0.0

    #: Field groups dropped from :meth:`deterministic_dict` while inert.
    _PROXY_FIELDS = (
        "proxy_requests",
        "proxy_hits",
        "proxy_misses",
        "proxy_served_bytes",
        "proxy_origin_bytes",
    )
    _SHARING_FIELDS = (
        "batches_launched",
        "shared_streams",
        "merged_sessions",
        "chain_reads",
        "chain_breaks",
        "sharing_fraction",
    )
    _SELF_HEAL_FIELDS = (
        "failed_over_sessions",
        "lost_sessions",
        "spilled_sessions",
        "node_titles_rebuilt",
        "node_titles_unrecoverable",
        "node_rebuild_bytes",
        "replication_restore_s",
        "rejoin_resyncs",
        "rejoin_resync_bytes",
    )

    def deterministic_dict(self) -> dict:
        """All fields except host-dependent wall time, for comparing
        runs across executors, job counts, and submission orders.

        Mirroring the config canonicalisation, a field group that is
        entirely inert (the proxy counters of a proxy-less run, the
        failover/self-heal counters of an outage-free run) is omitted,
        so digests of pre-existing scenarios survive schema growth
        unchanged.  The per-node breakdown is always omitted: it is a
        diagnostic view of numbers the aggregate fields already pin.
        """
        values = dataclasses.asdict(self)
        values.pop("wall_time_s")
        values.pop("per_node")
        for group in (
            self._PROXY_FIELDS,
            self._SHARING_FIELDS,
            self._SELF_HEAL_FIELDS,
        ):
            if not any(values[field] for field in group):
                for field in group:
                    del values[field]
        return values

    def summary(self) -> str:
        text = (
            f"terminals={self.terminals} glitches={self.glitches} "
            f"disk_util={self.disk_utilization_mean:.2f} "
            f"cpu_util={self.cpu_utilization_mean:.2f} "
            f"hit_rate={self.buffer_hit_rate:.2f} "
            f"net_peak={self.network_peak_mbytes_per_s:.1f}MB/s"
        )
        if self.fault_events_injected or self.fault_glitches:
            text += (
                f" faults={self.fault_events_injected}"
                f" fault_glitches={self.fault_glitches}"
                f" retries={self.fault_retries}"
            )
        if self.offered_sessions:
            text += (
                f" sessions={self.admitted_sessions}/{self.offered_sessions}"
                f" rejected={self.rejection_rate:.2%}"
                f" p99_startup={self.startup_p99_s:.2f}s"
            )
        if self.failover_reads or self.rebuilds_completed:
            text += (
                f" failovers={self.failover_reads}"
                f" rebuilt_blocks={self.rebuild_blocks}"
            )
        if self.proxy_requests:
            text += (
                f" proxy_hit_rate={self.proxy_hit_rate:.2f}"
                f" proxy_served={self.proxy_served_bytes // MB}MB"
            )
        if self.batches_launched or self.shared_streams:
            text += (
                f" shared={self.shared_streams}"
                f" ({self.sharing_fraction:.2f} of launches)"
            )
            if self.merged_sessions:
                text += f" merged={self.merged_sessions}"
            if self.chain_reads:
                text += f" chain_reads={self.chain_reads}"
        if self.failed_over_sessions or self.lost_sessions or self.spilled_sessions:
            text += (
                f" failed_over={self.failed_over_sessions}"
                f" lost={self.lost_sessions}"
                f" spilled={self.spilled_sessions}"
            )
        if self.node_titles_rebuilt or self.rejoin_resyncs:
            text += (
                f" titles_rebuilt={self.node_titles_rebuilt}"
                f" restore={self.replication_restore_s:.1f}s"
            )
        return text


def collect_metrics(system: "SpiffiSystem", measure_s: float) -> RunMetrics:
    """Read the post-measurement statistics out of a finished system."""
    terminals = system.terminals
    replication = getattr(system, "replication", None)
    repl_stats = replication.stats if replication is not None else None
    workload = getattr(system, "workload", None)
    sessions = workload.stats if workload is not None else None
    proxy = getattr(system, "proxy_runtime", None)
    proxy_stats = proxy.stats if proxy is not None else None
    sharing = getattr(system, "sharing", None)
    piggyback = system.piggyback
    # Piggyback windows and batched admission are two drivers of the
    # same physical effect (synchronized launches on shared streams),
    # so their counters combine into one sharing group.
    share_leaders = piggyback.batches_launched
    share_followers = piggyback.terminals_batched
    merged = chain_reads = chain_breaks = 0
    if sharing is not None:
        share_leaders += sharing.stats.batches_launched
        share_followers += sharing.stats.batch_followers
        merged = sharing.stats.merged_sessions
        chain_reads = sharing.stats.chain_reads
        chain_breaks = sharing.stats.chain_breaks
    shared_streams = share_followers + merged
    qos = getattr(system, "qos", None)
    pools = [node.pool for node in system.nodes]
    drives = [drive for node in system.nodes for drive in node.drives]
    prefetchers = [p for node in system.nodes for p in node.prefetchers]
    now = system.env.now

    references = sum(pool.stats.references for pool in pools)
    hits = sum(pool.stats.hits for pool in pools)
    inflight = sum(pool.stats.inflight_hits for pool in pools)
    rereferences = sum(pool.stats.rereferences for pool in pools)

    glitch_durations = [
        terminal.stats.glitch_durations for terminal in terminals
    ]
    total_glitch_events = sum(t.count for t in glitch_durations)
    glitch_time = sum(t.mean * t.count for t in glitch_durations)

    response_counts = sum(t.stats.response_time.count for t in terminals)
    response_total = sum(
        t.stats.response_time.mean * t.stats.response_time.count for t in terminals
    )
    response_max = max(
        (t.stats.response_time.maximum for t in terminals if t.stats.response_time.count),
        default=0.0,
    )
    startup_counts = sum(t.stats.startup_latency.count for t in terminals)
    startup_total = sum(
        t.stats.startup_latency.mean * t.stats.startup_latency.count for t in terminals
    )
    disk_utils = [drive.busy.utilization(now) for drive in drives]

    return RunMetrics(
        terminals=len(terminals),
        measure_s=measure_s,
        glitches=sum(t.stats.glitches for t in terminals),
        glitching_terminals=sum(1 for t in terminals if t.stats.glitches),
        mean_glitch_duration_s=(
            glitch_time / total_glitch_events if total_glitch_events else 0.0
        ),
        disk_utilization_mean=sum(disk_utils) / len(disk_utils),
        disk_utilization_min=min(disk_utils),
        disk_utilization_max=max(disk_utils),
        cpu_utilization_mean=(
            sum(node.cpu.utilization() for node in system.nodes) / len(system.nodes)
        ),
        network_peak_bytes_per_s=system.bus.peak_bandwidth,
        network_mean_bytes_per_s=system.bus.mean_bandwidth(),
        buffer_references=references,
        buffer_hit_rate=hits / references if references else 0.0,
        buffer_inflight_hit_rate=inflight / references if references else 0.0,
        rereference_rate=rereferences / references if references else 0.0,
        wasted_prefetches=sum(pool.stats.wasted_prefetches for pool in pools),
        dropped_prefetches=sum(pool.stats.dropped_prefetches for pool in pools),
        allocation_waits=sum(pool.stats.allocation_waits for pool in pools),
        prefetches_issued=sum(p.stats.issued for p in prefetchers),
        prefetches_completed=sum(p.stats.completed for p in prefetchers),
        mean_response_time_s=response_total / response_counts if response_counts else 0.0,
        max_response_time_s=response_max,
        deadline_misses=sum(t.stats.deadline_misses for t in terminals),
        blocks_delivered=sum(t.stats.blocks_received for t in terminals),
        mean_startup_latency_s=startup_total / startup_counts if startup_counts else 0.0,
        videos_completed=sum(t.stats.videos_completed for t in terminals),
        pauses_taken=sum(t.stats.pauses_taken for t in terminals),
        admissions_queued=system.admission.queued,
        admission_mean_wait_s=system.admission.wait_times.mean,
        fault_glitches=sum(t.stats.fault_glitches for t in terminals),
        fault_events_injected=(
            system.faults.stats.events_injected if system.faults else 0
        ),
        fault_retries=system.faults.stats.retries if system.faults else 0,
        fault_abandoned_reads=(
            system.faults.stats.abandoned_reads if system.faults else 0
        ),
        fault_failed_reads=(
            system.faults.stats.failed_reads if system.faults else 0
        ),
        offered_sessions=sessions.offered if sessions else 0,
        admitted_sessions=sessions.admitted if sessions else 0,
        balked_sessions=sessions.balked if sessions else 0,
        reneged_sessions=sessions.reneged if sessions else 0,
        completed_sessions=sessions.completed if sessions else 0,
        abandoned_sessions=sessions.abandoned if sessions else 0,
        arrival_rate_per_s=(sessions.offered / measure_s if sessions else 0.0),
        startup_p50_s=qos.startup_quantile(0.5) if qos else 0.0,
        startup_p95_s=qos.startup_quantile(0.95) if qos else 0.0,
        startup_p99_s=qos.startup_quantile(0.99) if qos else 0.0,
        startup_slo_attainment=qos.slo_attainment if qos else 0.0,
        admission_max_wait_s=system.admission.max_wait_s,
        admission_queue_len_mean=system.admission.queue_lengths.mean(now),
        admission_queue_len_max=system.admission.queue_lengths.maximum,
        failover_reads=repl_stats.failover_reads if repl_stats else 0,
        remote_replica_reads=(
            repl_stats.remote_replica_reads if repl_stats else 0
        ),
        rebuild_reads=repl_stats.rebuild_reads if repl_stats else 0,
        rebuild_blocks=repl_stats.rebuild_blocks if repl_stats else 0,
        rebuild_io_bytes=repl_stats.rebuild_bytes if repl_stats else 0,
        rebuilds_completed=repl_stats.rebuilds_completed if repl_stats else 0,
        mean_time_to_rebuild_s=(
            repl_stats.rebuild_durations.mean
            if repl_stats and repl_stats.rebuild_durations.count
            else 0.0
        ),
        proxy_requests=proxy_stats.requests if proxy_stats else 0,
        proxy_hits=proxy_stats.hits if proxy_stats else 0,
        proxy_misses=proxy_stats.misses if proxy_stats else 0,
        proxy_served_bytes=proxy_stats.served_bytes if proxy_stats else 0,
        proxy_origin_bytes=proxy_stats.origin_bytes if proxy_stats else 0,
        batches_launched=share_leaders,
        shared_streams=shared_streams,
        merged_sessions=merged,
        chain_reads=chain_reads,
        chain_breaks=chain_breaks,
        sharing_fraction=(
            shared_streams / (share_leaders + shared_streams)
            if share_leaders + shared_streams
            else 0.0
        ),
    )
