"""Assembly of one SPIFFI server node: every component, fully wired.

Historically this class *was* the whole simulation (``SpiffiSystem``).
With the cluster layer (:mod:`repro.cluster`) a node is one member of a
multi-node installation: it can be built onto a shared
:class:`~repro.sim.environment.Environment`, host a placement-assigned
slice of the global catalog (``local_videos``), and skip building the
closed terminal population when a cluster-level session generator owns
the workload.  The defaults reproduce the historical single-system
behaviour bit-for-bit (pinned by the golden-digest tests), and
``SpiffiSystem`` remains an alias in :mod:`repro.core.system`.
"""

from __future__ import annotations

import typing

from repro.bufferpool.pool import BufferPool
from repro.core.config import SpiffiConfig
from repro.core.metrics import RunMetrics, collect_metrics
from repro.cpu.processor import Processor
from repro.faults.injector import FaultInjector, FaultRuntime
from repro.faults.schedule import build_schedule
from repro.media.access import make_access_model
from repro.media.library import VideoLibrary
from repro.media.mpeg import MpegProfile
from repro.analytic.capacity import StreamParameters
from repro.netsim.bus import NetworkBus
from repro.prefetch.prefetcher import DiskPrefetcher
from repro.proxy.runtime import ProxyRuntime, ProxyView
from repro.replication.health import HealthMonitor
from repro.replication.rebuild import RebuildManager
from repro.replication.runtime import ReplicationRuntime
from repro.server.admission import AdmissionController
from repro.server.node import VideoServerNode
from repro.server.piggyback import PiggybackCoordinator
from repro.sharing.runtime import SharingRuntime
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.rng import RandomSource
from repro.storage.drive import DiskDrive
from repro.storage.geometry import DiskGeometry
from repro.terminal.terminal import Terminal
from repro.workload.generator import SessionGenerator
from repro.workload.qos import QosMonitor

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.trace import TraceRecorder


class ServerFabric(typing.Protocol):  # pragma: no cover - typing helper
    """What a terminal needs to reach the server side."""

    library: VideoLibrary
    layout: object
    bus: NetworkBus
    block_size: int
    control_message_bytes: int

    def node(self, index: int) -> VideoServerNode: ...

    def request_start(self, video_id: int) -> Event | None: ...


class SpiffiNode:
    """One fully wired simulated video-on-demand server.

    Construction builds every component; :meth:`run` executes the
    paper's methodology — staggered starts, warmup until all terminals
    are active, statistics reset, a fixed measurement window, abrupt
    termination — and returns the collected :class:`RunMetrics`.

    Cluster-membership knobs (all default to the historical standalone
    behaviour):

    * *env* — build onto a shared environment instead of a fresh one;
    * *local_videos* — size of this node's local catalog (placement
      slice) instead of ``config.video_count``;
    * *closed_terminals* — with ``False`` (and a closed config) no
      terminal population is built at all; a cluster-level session
      generator adopts terminals onto the node instead.
    """

    def __init__(
        self,
        config: SpiffiConfig,
        *,
        env: Environment | None = None,
        local_videos: int | None = None,
        closed_terminals: bool = True,
    ) -> None:
        self.config = config
        self.env = (
            env if env is not None else Environment(queue=config.sim.build_queue())
        )
        rng = RandomSource(config.seed)
        self._rng = rng
        video_count = (
            config.video_count if local_videos is None else local_videos
        )
        if video_count < 1:
            raise ValueError(f"need at least one local video, got {video_count}")

        profile = MpegProfile(
            bit_rate_bps=config.video_bit_rate_bps,
            frames_per_second=config.frames_per_second,
            deterministic_sizes=config.mpeg_deterministic_sizes,
        )
        self.library = VideoLibrary(
            video_count,
            config.video_length_s,
            profile,
            seed=config.seed,
            search_speedup=config.search_version_speedup,
        )
        block_counts = [
            video.sequence.block_count(config.stripe_bytes) for video in self.library
        ]
        # Spawning a child stream is hash-based (no parent-stream state is
        # consumed), so handing every layout a "layout" stream keeps
        # deterministic layouts bit-identical to builds that never drew it.
        self.layout = config.layout.build(
            block_counts,
            config.nodes,
            config.disks_per_node,
            config.stripe_bytes,
            rng.spawn("layout"),
            replication_factor=config.replication.factor,
        )

        self.bus = NetworkBus(self.env, config.network)
        self.block_size = config.stripe_bytes
        self.control_message_bytes = config.control_message_bytes
        self.piggyback = PiggybackCoordinator(self.env, config.piggyback_window_s)
        stream = StreamParameters(
            bit_rate_bps=config.video_bit_rate_bps,
            block_bytes=config.stripe_bytes,
        )
        disk_capacity = max(
            max(self.layout.disk_used_bytes(d) for d in range(config.disk_count)),
            config.drive.cylinder_bytes,
        )
        self.admission = AdmissionController(
            self.env,
            config.admission.stream_limit(
                config.disk_count, config.drive, stream, disk_capacity
            ),
        )

        # Fault runtime exists only when the config schedules faults, so
        # a default (empty) FaultSpec leaves the node fast path intact.
        self.faults: FaultRuntime | None = None
        if config.faults.enabled:
            self.faults = FaultRuntime(self.env, config.faults)

        self.nodes: list[VideoServerNode] = []
        for node_id in range(config.nodes):
            cpu = Processor(self.env, config.cpu, node_id)
            pool = BufferPool(
                self.env,
                config.pages_per_node,
                config.replacement_policy.build(),
                prefetch_pool_share=config.prefetch.pool_share,
            )
            drives = []
            for disk_in_node in range(config.disks_per_node):
                disk_global = node_id * config.disks_per_node + disk_in_node
                used = self.layout.disk_used_bytes(disk_global)
                geometry = DiskGeometry(
                    config.drive.cylinder_bytes,
                    max(used, config.drive.cylinder_bytes),
                )
                drives.append(
                    DiskDrive(
                        self.env,
                        disk_global,
                        config.drive,
                        geometry,
                        config.scheduler.build(),
                        rng.spawn(f"disk-{disk_global}"),
                    )
                )
            prefetchers = [
                DiskPrefetcher(self.env, config.prefetch, drive, pool, cpu, config.cpu)
                for drive in drives
            ]
            self.nodes.append(
                VideoServerNode(
                    env=self.env,
                    node_id=node_id,
                    cpu=cpu,
                    cpu_params=config.cpu,
                    drives=drives,
                    pool=pool,
                    bus=self.bus,
                    library=self.library,
                    layout=self.layout,
                    block_size=config.stripe_bytes,
                    prefetch_spec=config.prefetch,
                    prefetchers=prefetchers,
                    faults=self.faults,
                )
            )

        all_drives = [drive for node in self.nodes for drive in node.drives]

        # Replication runtime exists only above factor 1, so the default
        # spec leaves the terminal/node fast paths intact.
        self.replication: ReplicationRuntime | None = None
        self.rebuild: RebuildManager | None = None
        if config.replication.enabled:
            health = HealthMonitor(
                self.env, config.disk_count, config.replication.suspect_cooldown_s
            )
            self.replication = ReplicationRuntime(
                self.env, config.replication, self.layout, all_drives, health
            )
            for node in self.nodes:
                node.replication = self.replication
            if config.replication.rebuild and config.faults.enabled:
                self.rebuild = RebuildManager(
                    self.env, self.replication, self.library, self.block_size
                )

        self.fault_injector: FaultInjector | None = None
        if self.faults is not None:
            schedule = build_schedule(
                config.faults,
                config.disk_count,
                config.total_sim_time_s,
                rng.spawn("faults"),
            )
            self.fault_injector = FaultInjector(
                self.env,
                self.faults,
                schedule,
                drives=all_drives,
                bus=self.bus,
                admission=self.admission,
                health=(
                    self.replication.health if self.replication is not None else None
                ),
            )

        self.access = make_access_model(
            config.access_model, video_count, config.zipf_skew
        ).bind(rng.spawn("access"))
        self.qos = QosMonitor(config.workload.startup_slo_s)

        # Proxy tier exists only when the config enables it, so the
        # default spec leaves the terminal fast path intact: terminals
        # resolve ``fabric.proxy`` once at construction and a None adds
        # no events and draws no randomness.  Built before the
        # terminals, which capture the handle.
        self.proxy_runtime: ProxyRuntime | None = None
        self.proxy: ProxyView | None = None
        if config.proxy.enabled:
            self.proxy_runtime = ProxyRuntime(
                self.env,
                config.proxy,
                schedules=[
                    video.schedule(config.stripe_bytes) for video in self.library
                ],
                weights=self.access.model.weights(),
                block_size=config.stripe_bytes,
                forward_bus=self.bus,
                control_message_bytes=config.control_message_bytes,
            )
            self.proxy = ProxyView(self.proxy_runtime, self)

        # Stream sharing exists only when the config names a policy, so
        # the default spec leaves every fast path intact: terminals and
        # the session generator resolve ``self.sharing`` once at
        # construction, and a None adds no events and draws no
        # randomness.  Built before the terminals, which capture the
        # handle; server nodes get the block hook only when the policy
        # chains buffers.
        self.sharing: SharingRuntime | None = None
        if config.sharing.enabled:
            self.sharing = config.sharing.build(self.env)
            if self.sharing.chaining:
                for node in self.nodes:
                    node.sharing = self.sharing

        # Open-system workload: a session generator replaces the fixed
        # terminal population.  Closed (the default) builds the paper's
        # looping terminals and spawns no workload streams at all; a
        # cluster member (closed_terminals=False) builds neither — the
        # cluster's session generator adopts terminals onto the node.
        self.workload: SessionGenerator | None = None
        if config.workload.enabled:
            self.terminals: list[Terminal] = []
            self.workload = SessionGenerator(
                self.env, self, config.workload, rng.spawn("workload")
            )
        elif closed_terminals:
            self.terminals = [
                Terminal(
                    env=self.env,
                    terminal_id=terminal_id,
                    fabric=self,
                    access=self.access,
                    rng=rng.spawn(f"terminal-{terminal_id}"),
                    memory_bytes=config.terminal_memory_bytes,
                    pause_model=config.pause_model,
                    initial_position_fraction=config.initial_position_fraction,
                )
                for terminal_id in range(config.terminals)
            ]
            for terminal in self.terminals:
                terminal.qos = self.qos
        else:
            self.terminals = []
        self._started = False

    # ------------------------------------------------------------------
    # ServerFabric interface (used by terminals)
    # ------------------------------------------------------------------
    def node(self, index: int) -> VideoServerNode:
        return self.nodes[index]

    def locate_block(self, video_id: int, block: int):
        """Where a terminal should send its read: the primary placement,
        or — with replication configured — the routed replica."""
        if self.replication is not None:
            return self.replication.route(video_id, block)
        return self.layout.locate(video_id, block)

    def request_start(self, video_id: int) -> Event | None:
        return self.piggyback.request_start(video_id)

    def request_admission(self) -> Event:
        return self.admission.request_slot()

    def release_admission(self) -> None:
        self.admission.release_slot()

    def fault_attributable(self) -> bool:
        """Whether a glitch starting now should be blamed on a fault."""
        return self.faults is not None and self.faults.attributable()

    def adopt_terminal(self, terminal: Terminal) -> None:
        """Register a session-spawned terminal with the system so its
        statistics are collected and reset with everything else."""
        terminal.qos = self.qos
        self.terminals.append(terminal)

    def enable_fault_tracing(self, capacity: int = 100_000) -> "TraceRecorder":
        """Attach a trace recorder to the fault runtime (faults must be
        configured); returns the recorder for inspection after the run."""
        if self.faults is None:
            raise ValueError("config schedules no faults; nothing to trace")
        from repro.telemetry.trace import TraceRecorder

        recorder = TraceRecorder(self.env, capacity=capacity)
        self.faults.trace = recorder
        if self.replication is not None:
            self.replication.trace = recorder
            self.replication.health.trace = recorder
        return recorder

    def enable_proxy_tracing(self, capacity: int = 100_000) -> "TraceRecorder":
        """Attach a trace recorder to the proxy tier (a proxy must be
        configured); returns the recorder for inspection after the run."""
        if self.proxy_runtime is None:
            raise ValueError("config enables no proxy; nothing to trace")
        from repro.telemetry.trace import TraceRecorder

        recorder = TraceRecorder(self.env, capacity=capacity)
        self.proxy_runtime.trace = recorder
        return recorder

    def enable_sharing_tracing(self, capacity: int = 100_000) -> "TraceRecorder":
        """Attach a trace recorder to the sharing runtime (a sharing
        policy must be configured); returns the recorder for inspection
        after the run (``batch.*``/``merge.*``/``chain.*`` kinds)."""
        if self.sharing is None:
            raise ValueError("config enables no sharing policy; nothing to trace")
        from repro.telemetry.trace import TraceRecorder

        recorder = TraceRecorder(self.env, capacity=capacity)
        self.sharing.trace = recorder
        return recorder

    def enable_session_tracing(self, capacity: int = 100_000) -> "TraceRecorder":
        """Attach a trace recorder to the session generator (an open
        workload must be configured); returns the recorder for
        inspection after the run."""
        if self.workload is None:
            raise ValueError("closed workload; no sessions to trace")
        from repro.telemetry.trace import TraceRecorder

        recorder = TraceRecorder(self.env, capacity=capacity)
        self.workload.trace = recorder
        return recorder

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the workload: the arrival process (open system) or
        every terminal at a random instant in the start spread (closed)."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        if self.workload is not None:
            self.workload.start()
            return
        if not self.terminals:
            return  # cluster member: the cluster's generator drives load
        start_rng = self._rng.spawn("starts")
        for terminal in self.terminals:
            terminal.start(start_rng.uniform(0.0, self.config.start_spread_s))

    def run(self) -> RunMetrics:
        """Warm up, measure, and collect (the paper's methodology)."""
        config = self.config
        self.start()
        self.env.run(until=config.warmup_s)
        self.reset_stats()
        self.env.run(until=config.warmup_s + config.measure_s)
        return collect_metrics(self, config.measure_s)

    def reset_stats(self) -> None:
        """Begin the measurement window: zero every statistic."""
        for terminal in self.terminals:
            terminal.reset_stats()
        for node in self.nodes:
            node.reset_stats()
            node.pool.reset_stats()
            node.cpu.reset_stats()
            for drive in node.drives:
                drive.reset_stats()
            for prefetcher in node.prefetchers:
                prefetcher.reset_stats()
        self.bus.reset_stats()
        self.piggyback.reset_stats()
        self.admission.reset_stats()
        self.qos.reset()
        if self.workload is not None:
            self.workload.reset_stats()
        if self.faults is not None:
            self.faults.reset_stats()
        if self.replication is not None:
            self.replication.reset_stats()
        if self.proxy_runtime is not None:
            self.proxy_runtime.reset_stats()
        if self.sharing is not None:
            self.sharing.reset_stats()

    # ------------------------------------------------------------------
    # Extra probes used by figures
    # ------------------------------------------------------------------
    def disk_utilizations(self) -> list[float]:
        now = self.env.now
        return [
            drive.busy.utilization(now) for node in self.nodes for drive in node.drives
        ]
