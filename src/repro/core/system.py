"""Single-system execution: the ``SpiffiSystem`` alias and the one-call
``run_simulation`` entry point.

The full assembly lives in :mod:`repro.core.node`: what used to be
``SpiffiSystem`` is now :class:`~repro.core.node.SpiffiNode`, one member
of a (possibly multi-node) installation.  ``SpiffiSystem`` remains the
name for the standalone single-server system — it *is* the node class,
with the standalone defaults — so every existing import and golden
digest is untouched.  Multi-node runs go through
:mod:`repro.cluster` instead.
"""

from __future__ import annotations

import time

from repro.core.config import SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.core.node import ServerFabric, SpiffiNode

#: The standalone single-server system (the historical name).
SpiffiSystem = SpiffiNode

__all__ = [
    "ServerFabric",
    "SpiffiNode",
    "SpiffiSystem",
    "execute_simulation",
    "run_simulation",
]


def execute_simulation(config: SpiffiConfig) -> RunMetrics:
    """The registered executor behind ``run(SpiffiConfig)``.

    The returned metrics carry execution accounting (wall time and
    simulator events processed, covering construction plus the run) so
    sweeps can report per-run cost.
    """
    from repro.telemetry.runstats import RunStopwatch

    started = time.perf_counter()
    system = SpiffiSystem(config)
    with RunStopwatch(system.env) as watch:
        metrics = system.run()
    watch.wall_time_s = time.perf_counter() - started
    return watch.stamp(metrics)


def run_simulation(config: SpiffiConfig) -> RunMetrics:
    """Build and run one standalone simulation.

    A thin type-checked delegate to the unified :func:`repro.api.run`
    entry point, kept for its historical name.
    """
    if not isinstance(config, SpiffiConfig):
        raise TypeError(
            f"run_simulation takes a SpiffiConfig, got "
            f"{type(config).__name__}; use repro.api.run for other "
            "config types"
        )
    from repro.runnable import run

    return run(config)
