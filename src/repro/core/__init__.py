"""System assembly: configuration, the simulated system, run metrics."""

from repro.core.config import GB, KB, MB, SpiffiConfig
from repro.core.metrics import RunMetrics, collect_metrics
from repro.core.node import ServerFabric, SpiffiNode
from repro.core.system import SpiffiSystem, run_simulation

__all__ = [
    "GB",
    "KB",
    "MB",
    "RunMetrics",
    "ServerFabric",
    "SpiffiConfig",
    "SpiffiNode",
    "SpiffiSystem",
    "collect_metrics",
    "run_simulation",
]
