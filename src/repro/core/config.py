"""Complete simulation configuration (paper Table 1 plus algorithms).

``SpiffiConfig`` captures every hardware parameter from Table 1 and
every algorithm choice from §5.2 as one immutable value object.  The
defaults are the paper's base configuration: 4 processors × 4 disks,
4 one-hour videos per disk, 512 Kbyte stripes, 2 Mbytes per terminal.
"""

from __future__ import annotations

import dataclasses

from repro.bufferpool.registry import ReplacementSpec
from repro.cpu.costs import CpuParameters
from repro.faults.spec import FaultSpec
from repro.layout.registry import (
    LayoutSpec,
    layout_supports_replication,
    replicated_layout_names,
)
from repro.media.access import access_model_names
from repro.netsim.bus import NetworkParameters
from repro.prefetch.spec import PrefetchSpec
from repro.proxy.spec import ProxySpec, proxy_cache_dict
from repro.replication.spec import ReplicationSpec
from repro.runnable import register_runnable
from repro.sched.registry import SchedulerSpec
from repro.server.admission import AdmissionSpec
from repro.sim.eventqueue import SimSpec
from repro.sharing.spec import SharingSpec, sharing_cache_dict
from repro.storage.drive import DriveParameters
from repro.terminal.pauses import PauseModel
from repro.workload.spec import ArrivalSpec

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

#: Built-in component names.  Retained for backward compatibility; the
#: authoritative lists live in the component registries and grow as
#: plugins register (see :func:`repro.layout.layout_names`,
#: :func:`repro.bufferpool.replacement_names`,
#: :func:`repro.media.access_model_names`).
LAYOUTS = ("striped", "nonstriped")
REPLACEMENT_POLICIES = ("global_lru", "love_prefetch")
ACCESS_MODELS = ("zipf", "uniform")


@dataclasses.dataclass(frozen=True)
class SpiffiConfig:
    # --- hardware shape -------------------------------------------------
    nodes: int = 4
    disks_per_node: int = 4
    cpu: CpuParameters = dataclasses.field(default_factory=CpuParameters)
    drive: DriveParameters = dataclasses.field(default_factory=DriveParameters)
    network: NetworkParameters = dataclasses.field(default_factory=NetworkParameters)

    # --- memory ---------------------------------------------------------
    server_memory_bytes: int = 4 * GB  # aggregate across nodes
    terminal_memory_bytes: int = 2 * MB

    # --- videos ---------------------------------------------------------
    video_bit_rate_bps: float = 4_000_000.0
    frames_per_second: float = 30.0
    video_length_s: float = 3600.0
    videos_per_disk: int = 4
    #: Ablation: constant per-type frame sizes instead of exponential.
    mpeg_deterministic_sizes: bool = False
    #: §8.1: also store a condensed search copy of every title (for
    #: smooth fast-forward/rewind), covering 1/speedup of the content.
    #: None stores no search versions.
    search_version_speedup: int | None = None

    # --- workload --------------------------------------------------------
    terminals: int = 100
    access_model: str = "zipf"
    zipf_skew: float = 1.0
    pause_model: PauseModel = dataclasses.field(default_factory=PauseModel)
    piggyback_window_s: float = 0.0
    #: An :class:`~repro.server.admission.AdmissionSpec` naming the
    #: registered admission policy.
    admission: AdmissionSpec = dataclasses.field(default_factory=AdmissionSpec)
    #: Open-system workload.  Closed (the paper's fixed terminal
    #: population) by default: no session generator is built, and runs
    #: are bit-identical to a build without the workload subsystem
    #: (see :mod:`repro.workload`).  With an arrival process named,
    #: ``terminals`` is ignored and sessions arrive, queue, and churn
    #: according to the spec.
    workload: ArrivalSpec = dataclasses.field(default_factory=ArrivalSpec)

    # --- algorithms -------------------------------------------------------
    stripe_bytes: int = 512 * KB
    #: A :class:`~repro.layout.registry.LayoutSpec` naming the
    #: registered layout.
    layout: LayoutSpec = dataclasses.field(default_factory=LayoutSpec)
    #: A :class:`~repro.bufferpool.registry.ReplacementSpec` naming the
    #: registered replacement policy.
    replacement_policy: ReplacementSpec = dataclasses.field(
        default_factory=ReplacementSpec
    )
    scheduler: SchedulerSpec = dataclasses.field(default_factory=SchedulerSpec)
    prefetch: PrefetchSpec = dataclasses.field(default_factory=PrefetchSpec)

    # --- fault injection ---------------------------------------------------
    #: Empty by default: no faults, and runs are bit-identical to a
    #: build without the fault subsystem (see :mod:`repro.faults`).
    faults: FaultSpec = dataclasses.field(default_factory=FaultSpec)

    # --- replication & recovery --------------------------------------------
    #: Single copy by default: no replica machinery is built, and runs
    #: are bit-identical to a build without the replication subsystem
    #: (see :mod:`repro.replication`).
    replication: ReplicationSpec = dataclasses.field(default_factory=ReplicationSpec)

    # --- proxy/edge tier ---------------------------------------------------
    #: Disabled by default: no proxy node is built, and runs are
    #: bit-identical to a build without the proxy subsystem (see
    #: :mod:`repro.proxy`).  When enabled, a prefix-cache proxy sits
    #: between the terminals and this system's server nodes.
    proxy: ProxySpec = dataclasses.field(default_factory=ProxySpec)

    # --- stream sharing ----------------------------------------------------
    #: Inert by default: no sharing runtime is built, and runs are
    #: bit-identical to a build without the sharing subsystem (see
    #: :mod:`repro.sharing`).  Policies batch same-title admissions,
    #: merge trailing streams onto leaders, and/or chain later sessions
    #: off earlier sessions' buffer pages.
    sharing: SharingSpec = dataclasses.field(default_factory=SharingSpec)

    # --- messaging --------------------------------------------------------
    control_message_bytes: int = 128

    # --- kernel mechanism ---------------------------------------------------
    #: Which event-queue backend runs the simulation kernel (see
    #: :mod:`repro.sim.eventqueue`).  Pure mechanism: every backend
    #: executes the identical event order (pinned by the differential
    #: harness), so this spec never enters cache digests and the
    #: default heap backend is bit-identical to the pre-seam kernel.
    sim: SimSpec = dataclasses.field(default_factory=SimSpec)

    # --- simulation run ----------------------------------------------------
    seed: int = 1
    start_spread_s: float = 30.0  # terminals start at random instants in here
    warmup_grace_s: float = 30.0  # extra settling time before measurement
    measure_s: float = 300.0
    #: Each terminal joins its *first* video at a uniformly random
    #: position within this leading fraction of the video, so a short
    #: measurement window observes terminals spread through their
    #: videos just as a long-running closed system would be.  0 makes
    #: every terminal start its first video from the beginning.
    initial_position_fraction: float = 0.9

    def __post_init__(self) -> None:
        # Component choices are uniformly spec-valued; the legacy
        # name-string coercions (deprecated since the registries landed)
        # are gone.  Spec construction validates the name against the
        # live registry.
        if not isinstance(self.layout, LayoutSpec):
            raise TypeError(
                f"layout must be a LayoutSpec (name strings are no longer "
                f"coerced), got {self.layout!r}"
            )
        if not isinstance(self.replacement_policy, ReplacementSpec):
            raise TypeError(
                f"replacement_policy must be a ReplacementSpec (name strings "
                f"are no longer coerced), got {self.replacement_policy!r}"
            )
        if not isinstance(self.admission, AdmissionSpec):
            raise TypeError(
                f"admission must be an AdmissionSpec (policy name strings "
                f"are no longer coerced), got {self.admission!r}"
            )
        if not isinstance(self.workload, ArrivalSpec):
            raise TypeError(
                f"workload must be an ArrivalSpec, got {self.workload!r}"
            )
        if not isinstance(self.faults, FaultSpec):
            raise TypeError(f"faults must be a FaultSpec, got {self.faults!r}")
        if not isinstance(self.replication, ReplicationSpec):
            raise TypeError(
                f"replication must be a ReplicationSpec, got {self.replication!r}"
            )
        if not isinstance(self.proxy, ProxySpec):
            raise TypeError(f"proxy must be a ProxySpec, got {self.proxy!r}")
        if not isinstance(self.sharing, SharingSpec):
            raise TypeError(
                f"sharing must be a SharingSpec, got {self.sharing!r}"
            )
        if not isinstance(self.sim, SimSpec):
            raise TypeError(f"sim must be a SimSpec, got {self.sim!r}")
        if self.sharing.batching and self.piggyback_window_s > 0:
            raise ValueError(
                f"sharing policy {self.sharing.policy!r} batches launches "
                f"itself; it cannot combine with piggyback_window_s="
                f"{self.piggyback_window_s:g} (two batching mechanisms "
                f"would fight over the same launch path)"
            )
        if self.proxy.enabled and self.proxy.memory_bytes < self.stripe_bytes:
            raise ValueError(
                f"proxy memory of {self.proxy.memory_bytes} bytes holds no "
                f"{self.stripe_bytes}-byte stripe block"
            )
        if self.replication.factor > 1:
            if not layout_supports_replication(self.layout.name):
                raise ValueError(
                    f"layout {self.layout.name!r} stores a single copy; a "
                    f"replication factor of {self.replication.factor} needs "
                    f"one of {replicated_layout_names()}"
                )
            if self.replication.factor > self.disk_count:
                raise ValueError(
                    f"replication factor {self.replication.factor} exceeds "
                    f"the {self.disk_count} disks available"
                )
        # Scripted permanent failures must leave every block at least
        # one surviving copy (and always at least one surviving disk).
        out_of_range = [
            disk for disk in self.faults.fail_disk_ids
            if disk >= self.disk_count
        ]
        if out_of_range:
            raise ValueError(
                f"fail_disk_ids {out_of_range} out of range for "
                f"{self.disk_count} disks (valid: 0..{self.disk_count - 1})"
            )
        survivors_needed = max(1, self.replication.factor)
        fail_limit = self.disk_count - survivors_needed
        if len(self.faults.fail_disk_ids) > fail_limit:
            raise ValueError(
                f"fault spec permanently fails "
                f"{len(self.faults.fail_disk_ids)} of {self.disk_count} "
                f"disks, but at most {fail_limit} may fail: replication "
                f"factor {self.replication.factor} needs "
                f"{survivors_needed} surviving disk(s) to keep blocks "
                f"readable"
            )
        # Node-level faults (whole-server outages) are a cluster
        # concept: they live on ClusterConfig.faults, where the cluster
        # validates them against its member count.
        if self.faults.fail_node_ids:
            raise ValueError(
                "fail_node_ids is a cluster-level fault; put it on "
                "ClusterConfig.faults (see repro.cluster), not on a "
                "single node's SpiffiConfig"
            )
        if self.access_model not in access_model_names():
            raise ValueError(
                f"unknown access model {self.access_model!r}; "
                f"choose from {access_model_names()}"
            )
        if self.nodes < 1 or self.disks_per_node < 1:
            raise ValueError("need at least one node and one disk per node")
        if self.terminals < 1:
            raise ValueError(f"need at least one terminal, got {self.terminals}")
        if self.stripe_bytes <= 0:
            raise ValueError(f"stripe size must be positive, got {self.stripe_bytes}")
        if self.terminal_memory_bytes < 2 * self.stripe_bytes:
            raise ValueError(
                "terminal memory must hold at least two stripe blocks "
                f"({self.terminal_memory_bytes} < 2*{self.stripe_bytes})"
            )
        if self.pages_per_node < 2:
            raise ValueError(
                f"server memory of {self.server_memory_bytes} bytes gives "
                f"{self.pages_per_node} pages/node; need at least 2"
            )
        if self.videos_per_disk < 1:
            raise ValueError(f"need >= 1 video per disk, got {self.videos_per_disk}")
        if self.measure_s <= 0:
            raise ValueError(f"measure_s must be positive, got {self.measure_s}")

    # --- derived quantities --------------------------------------------
    @property
    def disk_count(self) -> int:
        return self.nodes * self.disks_per_node

    @property
    def video_count(self) -> int:
        return self.videos_per_disk * self.disk_count

    @property
    def replication_factor(self) -> int:
        """Copies stored of every block (1 = unreplicated)."""
        return self.replication.factor

    @property
    def pages_per_node(self) -> int:
        return (self.server_memory_bytes // self.nodes) // self.stripe_bytes

    @property
    def terminal_slots(self) -> int:
        return self.terminal_memory_bytes // self.stripe_bytes

    @property
    def warmup_s(self) -> float:
        return self.start_spread_s + self.warmup_grace_s

    @property
    def total_sim_time_s(self) -> float:
        return self.warmup_s + self.measure_s

    def replace(self, **changes) -> "SpiffiConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        text = (
            f"{self.nodes}x{self.disks_per_node} disks, "
            f"{self.video_count} videos, {self.terminals} terminals, "
            f"stripe {self.stripe_bytes // KB}KB, "
            f"mem {self.server_memory_bytes // MB}MB, "
            f"{self.scheduler.label()}, {self.replacement_policy.name}, "
            f"{self.prefetch.label()}, {self.layout.name}"
        )
        if self.proxy.enabled:
            text += f", {self.proxy.label()}"
        return text


# ---------------------------------------------------------------------------
# The runnable registration: how a SpiffiConfig executes and hashes
# ---------------------------------------------------------------------------

def config_cache_dict(config: SpiffiConfig) -> dict:
    """The full configuration as canonical JSON-serializable values.

    Component specs that carry only a name (layout, replacement policy)
    serialize as the bare name string, and default (inert) fault,
    replication, workload, and proxy specs are omitted entirely — so a
    config expressible before those subsystems existed serializes, and
    therefore hashes, exactly as it always did.  Cached runs stay valid
    across every spec-field addition.
    """
    data = dataclasses.asdict(config)
    data["layout"] = config.layout.name
    data["replacement_policy"] = config.replacement_policy.name
    # The kernel spec is pure mechanism: every event-queue backend
    # executes the identical event order (enforced by the differential
    # harness), so it never enters the cache identity — a run cached
    # under one backend is bit-for-bit the result of every other.
    del data["sim"]
    if config.faults == FaultSpec():
        del data["faults"]
    elif config.faults.fail_node_stagger_s == 0.0:
        # Default stagger is omitted so pre-stagger fault configs keep
        # their digests (a node cannot stagger on a single system).
        del data["faults"]["fail_node_stagger_s"]
    if config.replication == ReplicationSpec():
        del data["replication"]
    if config.workload == ArrivalSpec():
        del data["workload"]
    if config.proxy == ProxySpec():
        del data["proxy"]
    else:
        data["proxy"] = proxy_cache_dict(config.proxy)
    if config.sharing == SharingSpec():
        del data["sharing"]
    else:
        data["sharing"] = sharing_cache_dict(config.sharing)
    return data


def _run_spiffi_config(config: SpiffiConfig):
    # Lazy: repro.core.system imports this module, so the executor can
    # only be resolved at call time.
    from repro.core.system import execute_simulation

    return execute_simulation(config)


# Registered here — in the module that *defines* the class — so any
# interpreter that can unpickle a SpiffiConfig (e.g. a process-pool
# worker receiving a RunRequest) has the entry as an import side effect.
register_runnable(
    SpiffiConfig,
    kind="system",
    run=_run_spiffi_config,
    cache_dict=config_cache_dict,
)
