"""Video access-frequency models (paper §6.1, Figure 8).

Popular titles are requested much more often than unpopular ones; the
paper models this with a Zipfian distribution over video rank,
parameterised by the skew ``z`` (0.5, 1.0, 1.5), with a uniform
distribution as the unskewed baseline.
"""

from __future__ import annotations

import typing

from repro.sim.rng import DiscreteSampler, RandomSource, zipf_weights


class AccessModel:
    """Base class: selects which video a terminal watches next."""

    def __init__(self, video_count: int) -> None:
        if video_count < 1:
            raise ValueError(f"need at least one video, got {video_count}")
        self.video_count = video_count

    def weights(self) -> list[float]:
        """Per-video selection probabilities (index = popularity rank)."""
        raise NotImplementedError

    def bind(self, rng: RandomSource) -> "BoundAccessModel":
        """Attach a random stream, producing a sampler."""
        return BoundAccessModel(self, rng)


class BoundAccessModel:
    """An access model bound to a random stream."""

    def __init__(self, model: AccessModel, rng: RandomSource) -> None:
        self.model = model
        self._sampler = DiscreteSampler(model.weights(), rng)

    def select(self) -> int:
        """Pick the next video id to watch."""
        return self._sampler.sample()


class ZipfianAccess(AccessModel):
    """Zipfian popularity: ``p(rank) ∝ 1 / rank**z`` (Figure 8)."""

    def __init__(self, video_count: int, skew: float = 1.0) -> None:
        super().__init__(video_count)
        self.skew = float(skew)

    def weights(self) -> list[float]:
        return zipf_weights(self.video_count, self.skew)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfianAccess(n={self.video_count}, z={self.skew})"


class UniformAccess(AccessModel):
    """All titles equally popular."""

    def weights(self) -> list[float]:
        return [1.0 / self.video_count] * self.video_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformAccess(n={self.video_count})"


#: ``factory(video_count, skew) -> AccessModel``.
_REGISTRY: dict[str, typing.Callable[[int, float], AccessModel]] = {}


def register_access_model(
    name: str, factory: typing.Callable[[int, float], AccessModel]
) -> None:
    """Make *name* selectable via ``SpiffiConfig(access_model=name)``."""
    if not name or not isinstance(name, str):
        raise ValueError(
            f"access model name must be a non-empty string, got {name!r}"
        )
    _REGISTRY[name] = factory


def access_model_names() -> tuple[str, ...]:
    """Every currently registered access model name (registration order)."""
    return tuple(_REGISTRY)


def make_access_model(name: str, video_count: int, skew: float = 1.0) -> AccessModel:
    """Build a registered access model by name."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown access model {name!r}; choose from {access_model_names()}"
        )
    return factory(video_count, skew)


register_access_model("zipf", lambda count, skew: ZipfianAccess(count, skew))
register_access_model("uniform", lambda count, skew: UniformAccess(count))
