"""A video title: a frame sequence plus cached per-block-size schedules."""

from __future__ import annotations


from repro.media.mpeg import FrameSequence


class BlockSchedule:
    """Precomputed display timing of one video at one block size.

    All terminal-side playback arithmetic reduces to lookups here:

    * ``first_frame[k]`` — first frame that needs block ``k`` (the block
      request's deadline is this frame's display time);
    * ``last_frame[k]`` — last frame that needs block ``k`` (the buffer
      slot holding block ``k`` can be freed once it has displayed).
    """

    def __init__(self, sequence: FrameSequence, block_size: int) -> None:
        self.sequence = sequence
        self.block_size = int(block_size)
        self.block_count = sequence.block_count(block_size)
        # Plain lists, not the numpy arrays: playback reads these one
        # scalar at a time in the per-block hot path, where list
        # indexing is several times cheaper than numpy scalar indexing.
        self.first_frame: list[int] = sequence.first_frames_of_blocks(block_size).tolist()
        self.last_frame: list[int] = sequence.last_frames_of_blocks(block_size).tolist()

    def block_bytes(self, block: int) -> int:
        """Actual byte length of block *block* (the last may be short)."""
        if block < 0 or block >= self.block_count:
            raise ValueError(f"block {block} outside 0..{self.block_count - 1}")
        start = block * self.block_size
        return min(self.block_size, self.sequence.total_bytes - start)

    def delivered_bytes(self, full_blocks: int) -> int:
        """Contiguous byte prefix represented by *full_blocks* blocks."""
        return min(full_blocks * self.block_size, self.sequence.total_bytes)


class Video:
    """One title in the library."""

    def __init__(self, video_id: int, sequence: FrameSequence) -> None:
        self.video_id = video_id
        self.sequence = sequence
        self._schedules: dict[int, BlockSchedule] = {}

    @property
    def total_bytes(self) -> int:
        return self.sequence.total_bytes

    @property
    def frame_count(self) -> int:
        return self.sequence.frame_count

    @property
    def fps(self) -> float:
        return self.sequence.fps

    @property
    def duration_s(self) -> float:
        return self.frame_count / self.fps

    def schedule(self, block_size: int) -> BlockSchedule:
        """The (cached) block schedule for *block_size* bytes."""
        schedule = self._schedules.get(block_size)
        if schedule is None:
            schedule = BlockSchedule(self.sequence, block_size)
            self._schedules[block_size] = schedule
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Video(id={self.video_id}, bytes={self.total_bytes})"
