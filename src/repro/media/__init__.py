"""MPEG video model, video library, and access-frequency distributions."""

from repro.media.access import (
    AccessModel,
    BoundAccessModel,
    UniformAccess,
    ZipfianAccess,
    access_model_names,
    make_access_model,
    register_access_model,
)
from repro.media.library import VideoLibrary, clear_sequence_cache
from repro.media.mpeg import (
    FRAME_B,
    FRAME_I,
    FRAME_P,
    GOP_PATTERN,
    FrameSequence,
    MpegProfile,
)
from repro.media.video import BlockSchedule, Video

__all__ = [
    "AccessModel",
    "BlockSchedule",
    "BoundAccessModel",
    "FRAME_B",
    "FRAME_I",
    "FRAME_P",
    "FrameSequence",
    "GOP_PATTERN",
    "MpegProfile",
    "UniformAccess",
    "Video",
    "VideoLibrary",
    "ZipfianAccess",
    "access_model_names",
    "clear_sequence_cache",
    "make_access_model",
    "register_access_model",
]
