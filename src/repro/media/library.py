"""The video library: the catalog of titles stored on the server.

The paper's library holds 4 one-hour videos per disk; each video's frame
sequence is fixed across plays.  Frame sequences are memoised
process-wide so that parameter sweeps re-running many simulations do not
regenerate (or re-allocate) identical videos.
"""

from __future__ import annotations

from repro.media.mpeg import FrameSequence, MpegProfile
from repro.media.video import Video

_SEQUENCE_CACHE: dict[tuple, FrameSequence] = {}


def _sequence(profile: MpegProfile, duration_s: float, seed: int) -> FrameSequence:
    # MpegProfile is a frozen dataclass, so the whole profile is a
    # safe cache key — every field that shapes the stream participates.
    key = (profile, float(duration_s), seed)
    sequence = _SEQUENCE_CACHE.get(key)
    if sequence is None:
        sequence = FrameSequence(profile, duration_s, seed)
        _SEQUENCE_CACHE[key] = sequence
    return sequence


def clear_sequence_cache() -> None:
    """Drop memoised frame sequences (frees memory between sweeps)."""
    _SEQUENCE_CACHE.clear()


class VideoLibrary:
    """All titles available on the video server, ordered by popularity.

    Video 0 is the most popular title (rank 1 of the Zipfian
    distribution), video 1 the next, and so on.

    With ``search_speedup`` set, the library also stores "a completely
    separate version of each movie ... for supporting rewind and
    fast-forward searches" (paper §8.1): a condensed copy holding
    1/speedup of each title's content, striped like any other video.
    Search copies occupy ids ``title_count .. 2*title_count-1``.
    """

    def __init__(
        self,
        video_count: int,
        duration_s: float,
        profile: MpegProfile | None = None,
        seed: int = 0,
        search_speedup: int | None = None,
    ) -> None:
        if video_count < 1:
            raise ValueError(f"need at least one video, got {video_count}")
        if search_speedup is not None and search_speedup < 2:
            raise ValueError(
                f"search_speedup must be >= 2, got {search_speedup}"
            )
        self.profile = profile or MpegProfile()
        self.duration_s = float(duration_s)
        self.seed = seed
        self.title_count = video_count
        self.search_speedup = search_speedup
        self.videos = [
            Video(i, _sequence(self.profile, duration_s, seed * 1_000_003 + i))
            for i in range(video_count)
        ]
        if search_speedup is not None:
            search_duration = max(duration_s / search_speedup, 1.0)
            self.videos.extend(
                Video(
                    video_count + i,
                    _sequence(
                        self.profile,
                        search_duration,
                        seed * 1_000_003 + video_count + i,
                    ),
                )
                for i in range(video_count)
            )

    @property
    def has_search_versions(self) -> bool:
        return self.search_speedup is not None

    def search_version_of(self, title_id: int) -> int:
        """Video id of a title's condensed search copy."""
        if not self.has_search_versions:
            raise ValueError("library was built without search versions")
        if not 0 <= title_id < self.title_count:
            raise ValueError(f"title {title_id} outside 0..{self.title_count - 1}")
        return self.title_count + title_id

    def __len__(self) -> int:
        return len(self.videos)

    def __getitem__(self, video_id: int) -> Video:
        return self.videos[video_id]

    def __iter__(self):
        return iter(self.videos)

    @property
    def total_bytes(self) -> int:
        return sum(video.total_bytes for video in self.videos)
