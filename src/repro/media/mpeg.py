"""MPEG-I compressed-video frame model.

The paper simulates the display of individual MPEG frames:

* three frame types — intra (I), predicted (P), bidirectional (B);
* I:P:B frame *frequency* ratio 1:4:10 (the classic 15-frame group of
  pictures ``I B B P B B P B B P B B P B B``);
* I:P:B frame *size* ratio 10:5:2;
* frame sizes exponentially distributed around the per-type mean;
* overall bit rate 4 Mbit/s at the NTSC rate of 30 frames/s;
* each video's frame sequence is generated once and repeats identically
  on every play.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_right

import numpy as np

#: Frame-type codes used in the ``types`` array.
FRAME_I = 0
FRAME_P = 1
FRAME_B = 2

#: The 15-frame group of pictures realising the 1:4:10 frequency ratio.
GOP_PATTERN: tuple[int, ...] = (
    FRAME_I, FRAME_B, FRAME_B,
    FRAME_P, FRAME_B, FRAME_B,
    FRAME_P, FRAME_B, FRAME_B,
    FRAME_P, FRAME_B, FRAME_B,
    FRAME_P, FRAME_B, FRAME_B,
)

#: I:P:B frame-size ratio from the paper's Table 1.
SIZE_RATIO: tuple[float, float, float] = (10.0, 5.0, 2.0)


@dataclasses.dataclass(frozen=True)
class MpegProfile:
    """Static parameters of the simulated MPEG streams."""

    bit_rate_bps: float = 4_000_000.0
    frames_per_second: float = 30.0
    gop_pattern: tuple[int, ...] = GOP_PATTERN
    size_ratio: tuple[float, float, float] = SIZE_RATIO
    #: Ablation switch: use exact per-type mean sizes instead of the
    #: exponentially distributed sizes observed in real MPEG streams.
    deterministic_sizes: bool = False

    @property
    def mean_frame_bytes(self) -> float:
        """Average frame size implied by the bit rate and frame rate."""
        return self.bit_rate_bps / 8.0 / self.frames_per_second

    def mean_type_bytes(self) -> tuple[float, float, float]:
        """Mean size per frame type honouring both Table 1 ratios.

        With frequencies ``f_t`` from the GOP pattern and size ratio
        ``r_t``, per-type means are ``r_t * unit`` where ``unit`` makes
        the pattern average equal :attr:`mean_frame_bytes`.
        """
        pattern = np.asarray(self.gop_pattern)
        freqs = [int(np.sum(pattern == t)) for t in (FRAME_I, FRAME_P, FRAME_B)]
        ratio_mass = sum(f * r for f, r in zip(freqs, self.size_ratio))
        unit = self.mean_frame_bytes * len(self.gop_pattern) / ratio_mass
        return tuple(r * unit for r in self.size_ratio)


class FrameSequence:
    """The immutable frame schedule of one video.

    Exposes numpy arrays so playback arithmetic (which frame needs which
    byte, and when) is vectorised rather than per-frame simulation
    events — the key to making this simulator laptop-fast while staying
    frame-accurate.
    """

    def __init__(self, profile: MpegProfile, duration_s: float, seed: int) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        self.profile = profile
        self.duration_s = float(duration_s)
        self.seed = seed
        self.frame_count = max(1, int(round(duration_s * profile.frames_per_second)))

        pattern = np.asarray(profile.gop_pattern, dtype=np.int8)
        repeats = -(-self.frame_count // len(pattern))
        self.types = np.tile(pattern, repeats)[: self.frame_count]

        rng = np.random.default_rng(seed)
        means = profile.mean_type_bytes()
        sizes = np.empty(self.frame_count, dtype=np.float64)
        for frame_type, mean in zip((FRAME_I, FRAME_P, FRAME_B), means):
            mask = self.types == frame_type
            if profile.deterministic_sizes:
                sizes[mask] = mean
            else:
                sizes[mask] = rng.exponential(mean, size=int(mask.sum()))
        #: Per-frame sizes in whole bytes (at least 1).
        self.sizes = np.maximum(1, np.rint(sizes)).astype(np.int64)

        #: ``cumulative[i]`` = bytes of all frames before frame ``i``;
        #: ``cumulative[frame_count]`` = total bytes of the video.
        self.cumulative = np.zeros(self.frame_count + 1, dtype=np.int64)
        np.cumsum(self.sizes, out=self.cumulative[1:])
        #: Plain-int mirror of :attr:`cumulative` for scalar lookups —
        #: ``bisect`` on a list beats ``np.searchsorted`` per call, and
        #: playback asks one frame at a time, tens of thousands of times
        #: per simulated minute.  Values are identical.
        self.cumulative_list: list[int] = self.cumulative.tolist()
        self.total_bytes: int = self.cumulative_list[-1]
        self.fps: float = profile.frames_per_second

    def frame_of_byte(self, offset: int) -> int:
        """Index of the frame containing byte *offset* (0-based)."""
        if offset < 0 or offset >= self.total_bytes:
            raise ValueError(f"byte offset {offset} outside video of {self.total_bytes}")
        return bisect_right(self.cumulative_list, offset) - 1

    def frames_displayable(self, delivered_bytes: int) -> int:
        """How many leading frames are fully displayable.

        A frame can only be decompressed and shown once *all* its bytes
        have arrived; returns the count of complete leading frames given
        a contiguous delivered prefix of *delivered_bytes*.
        """
        return bisect_right(self.cumulative_list, delivered_bytes) - 1

    def first_frames_of_blocks(self, block_size: int) -> np.ndarray:
        """For each block, the first frame whose display needs the block.

        Block ``k`` covers bytes ``[k*block_size, (k+1)*block_size)``.
        The frame containing the block's first byte may straddle the
        previous block boundary; it is still the first frame that cannot
        be displayed without block ``k``.
        """
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        starts = np.arange(0, self.total_bytes, block_size, dtype=np.int64)
        return np.searchsorted(self.cumulative, starts, side="right") - 1

    def last_frames_of_blocks(self, block_size: int) -> np.ndarray:
        """For each block, the last frame whose display needs the block."""
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        total = self.total_bytes
        ends = np.arange(block_size, total + block_size, block_size, dtype=np.int64)
        ends = np.minimum(ends, total) - 1
        return np.searchsorted(self.cumulative, ends, side="right") - 1

    def block_count(self, block_size: int) -> int:
        return -(-self.total_bytes // block_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameSequence(frames={self.frame_count}, "
            f"bytes={self.total_bytes}, seed={self.seed})"
        )
