#!/usr/bin/env python
"""Capacity planning: how many subscribers can a server support?

Uses the paper's methodology (find the largest terminal count with zero
glitches, §7.1) to size three candidate servers, then works out the
hardware cost per supported subscriber the way the paper's Table 3
does.  Demonstrates the paper's punchline: more small disks beat fewer
big disks on cost per terminal, even when they lose on cost per Mbyte.

Run:  python examples/capacity_planning.py           (about a minute)
"""

from repro.api import MB, ReplacementSpec, SpiffiConfig, find_max_terminals, format_table

#: Candidate servers, all storing the same 8-video library.
CANDIDATES = (
    # (label, nodes, disks/node, $/disk, hint)
    ("2 big disks", 1, 2, 4000, 30),
    ("4 medium disks", 2, 2, 2500, 60),
    ("8 small disks", 2, 4, 1500, 110),
)


def size(nodes: int, disks_per_node: int, hint: int) -> int:
    disks = nodes * disks_per_node
    config = SpiffiConfig(
        nodes=nodes,
        disks_per_node=disks_per_node,
        terminals=hint,
        videos_per_disk=8 // disks if disks <= 8 else 1,
        video_length_s=600.0,
        server_memory_bytes=max(64, 32 * disks) * MB,
        replacement_policy=ReplacementSpec("love_prefetch"),
        start_spread_s=5.0,
        warmup_grace_s=10.0,
        measure_s=45.0,
        seed=3,
    )
    return find_max_terminals(config, hint=hint, granularity=5).max_terminals


def main() -> None:
    rows = []
    for label, nodes, disks_per_node, dollars, hint in CANDIDATES:
        disks = nodes * disks_per_node
        capacity = size(nodes, disks_per_node, hint)
        total = disks * dollars
        per_terminal = total / capacity if capacity else float("inf")
        rows.append(
            (
                label,
                disks,
                f"${total:,}",
                capacity,
                f"${per_terminal:,.0f}",
            )
        )
    print(
        format_table(
            ("server", "disks", "disk cost", "max terminals", "cost/terminal"),
            rows,
            title="Capacity and cost per glitch-free subscriber",
        )
    )
    print()
    print("More spindles win on cost per subscriber: aggregate disk arms,")
    print("not capacity, bound a video server (paper §7.6, Table 3).")


if __name__ == "__main__":
    main()
