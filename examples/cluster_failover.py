#!/usr/bin/env python
"""A 2-node SPIFFI cluster riding out a member outage.

Runs the same open workload against a 2-node cluster twice — once with
the catalog partitioned across members, once fully replicated — while
node 1 drops dead 30 seconds into the run and rejoins 20 seconds later.

With a partitioned catalog the dead member's titles have no second
copy: its in-flight sessions are lost and new arrivals for those
titles balk.  With a replicated catalog the front door reroutes every
affected session to the surviving member, which resumes the stream
from the frame the customer had reached — nobody is lost, at the cost
of half the catalog breadth.

Run:  python examples/cluster_failover.py
"""

from repro.api import (
    ArrivalSpec,
    ClusterConfig,
    FaultSpec,
    MB,
    PlacementSpec,
    RouterSpec,
    SpiffiCluster,
    SpiffiConfig,
)

MEMBER = SpiffiConfig(
    nodes=1,
    disks_per_node=2,
    terminals=1,  # ignored: the cluster workload is open
    videos_per_disk=2,
    video_length_s=600.0,
    server_memory_bytes=64 * MB,
    start_spread_s=2.0,
    warmup_grace_s=4.0,
    measure_s=60.0,
    seed=7,
)

WORKLOAD = ArrivalSpec(
    process="poisson",
    rate_per_s=1.0,
    mean_view_duration_s=30.0,
    queue_limit=8,
    mean_patience_s=10.0,
)

OUTAGE = FaultSpec(
    fail_node_ids=(1,),        # member 1 dies...
    fail_nodes_at_s=30.0,      # ...30 s into the run...
    node_recover_after_s=20.0, # ...and rejoins 20 s later
)


def run(placement: PlacementSpec, routing: RouterSpec):
    cluster = SpiffiCluster(
        ClusterConfig(
            node=MEMBER,
            nodes=2,
            placement=placement,
            routing=routing,
            workload=WORKLOAD,
            faults=OUTAGE,
        )
    )
    cluster.run()
    return cluster


def main() -> None:
    runs = [
        ("partitioned", run(PlacementSpec("partitioned"), RouterSpec("locality"))),
        ("replicated", run(PlacementSpec("replicated"), RouterSpec("least-loaded"))),
    ]

    header = "".join(f"{name:>14}" for name, _ in runs)
    print(f"{'':26}{header}")
    for label, field in [
        ("catalog titles", None),
        ("sessions admitted", "admitted"),
        ("departed (view budget)", "abandoned"),
        ("failovers", "failed_over"),
        ("sessions lost", "lost"),
    ]:
        cells = []
        for _, cluster in runs:
            if field is None:
                cells.append(f"{cluster.placement.catalog_size:14d}")
            else:
                cells.append(f"{getattr(cluster.workload.stats, field):14d}")
        print(f"{label:26}{''.join(cells)}")
    print()
    partitioned, replicated = runs[0][1], runs[1][1]
    print(f"Partitioned lost {partitioned.workload.stats.lost} sessions when")
    print("member 1 died; the replicated catalog migrated every affected")
    print(f"session ({replicated.workload.stats.failed_over} failovers, "
          f"{replicated.workload.stats.lost} lost) to the survivor.")


if __name__ == "__main__":
    main()
