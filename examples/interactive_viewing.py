#!/usr/bin/env python
"""Interactive controls: pause, rewind, and fast-forward (paper §8.1).

Drives a single terminal through a realistic remote-control session —
watch, pause, resume, fast-forward, rewind — against a small simulated
server, printing a timeline of what the viewer experienced.  The paper's
observation holds: the server needs no special support; the terminal
just re-primes its buffers from the new position.

Run:  python examples/interactive_viewing.py
"""

from repro.api import MB, SpiffiConfig, SpiffiSystem


def main() -> None:
    config = SpiffiConfig(
        nodes=1,
        disks_per_node=2,
        terminals=1,
        videos_per_disk=1,
        video_length_s=120.0,
        server_memory_bytes=64 * MB,
        start_spread_s=0.1,
        warmup_grace_s=0.1,
        measure_s=1.0,
        initial_position_fraction=0.0,
        seed=9,
    )
    system = SpiffiSystem(config)
    env = system.env
    terminal = system.terminals[0]
    video = system.library[0]
    fps = video.fps
    timeline = []

    def note(message):
        timeline.append(f"t={env.now:7.2f}s  {message}")

    def viewer(env):
        note("viewer presses PLAY")
        play = env.process(terminal.play(0))

        yield env.timeout(20.0)
        frame = terminal._next_frame
        note(f"20s in (frame {frame}); viewer presses FAST-FORWARD +60s")
        terminal.seek(min(frame + int(60 * fps), video.frame_count - 1))
        yield play  # the old display loop winds down on the seek
        note(f"buffers re-primed at frame {terminal._next_frame}; playing")
        resumed = env.process(terminal.resume_display_after_seek())

        yield env.timeout(15.0)
        frame = terminal._next_frame
        note(f"viewer presses REWIND -30s (from frame {frame})")
        terminal.seek(max(frame - int(30 * fps), 0))
        yield resumed
        note(f"buffers re-primed at frame {terminal._next_frame}; playing")
        final = env.process(terminal.resume_display_after_seek())
        yield final
        note("credits roll — video finished")

    # Note: system.start() is NOT called — it would launch the
    # terminal's own closed-loop viewing process; here the scripted
    # viewer drives the terminal instead.
    done = env.process(viewer(env))
    env.run(until=done)

    print("Interactive viewing session")
    print("===========================")
    for line in timeline:
        print(line)
    print()
    print(f"glitches seen by the viewer : {terminal.stats.glitches}")
    print(f"blocks fetched              : {terminal.stats.blocks_received}")
    print(f"re-prime (startup) latency  : "
          f"{terminal.stats.startup_latency.mean * 1000:.1f} ms average")


if __name__ == "__main__":
    main()
