#!/usr/bin/env python
"""Quickstart: simulate a small video-on-demand server and print what
happened.

Builds a 2-node / 4-disk SPIFFI server with 8 videos, points 40 video
terminals at it, runs one simulated minute of steady-state viewing, and
reports the paper's key metrics: glitches, disk/CPU utilization, buffer
pool behaviour, and network bandwidth.

Run:  python examples/quickstart.py
"""

from repro.api import MB, SpiffiConfig, run


def main() -> None:
    config = SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=40,
        videos_per_disk=2,
        video_length_s=600.0,          # 10-minute titles keep this snappy
        server_memory_bytes=256 * MB,
        start_spread_s=5.0,
        warmup_grace_s=10.0,
        measure_s=60.0,
        seed=42,
    )
    print(f"Simulating: {config.describe()}")
    metrics = run(config)

    print()
    print(f"glitches               {metrics.glitches}")
    print(f"blocks delivered       {metrics.blocks_delivered}")
    print(f"mean response time     {metrics.mean_response_time_s * 1000:.1f} ms")
    print(f"mean startup latency   {metrics.mean_startup_latency_s * 1000:.1f} ms")
    print(f"disk utilization       {metrics.disk_utilization_mean:.1%}")
    print(f"CPU utilization        {metrics.cpu_utilization_mean:.1%}")
    print(f"buffer pool hit rate   {metrics.buffer_hit_rate:.1%}")
    print(f"re-reference rate      {metrics.rereference_rate:.1%}")
    print(f"peak network bandwidth {metrics.network_peak_mbytes_per_s:.1f} MB/s")
    print()
    if metrics.glitch_free:
        print("All terminals enjoyed uninterrupted video.")
    else:
        print(f"{metrics.glitching_terminals} terminals saw a glitch — "
              "add disks or shed viewers.")


if __name__ == "__main__":
    main()
