#!/usr/bin/env python
"""Replication and recovery: losing a disk with and without replicas.

Runs the same workload three times with disk 0 failing permanently one
second into warmup: once unreplicated, once with mirrored striping, and
once with chained declustering (both at replication factor 2, with the
background rebuild copying the dead disk's blocks onto survivors).

Without replicas every read of a lost block is "served" by error
concealment — on time, but the data is gone.  With replicas the router
sends those reads to a surviving copy (counted as failover reads) and
the rebuild restores redundancy in the background, its bandwidth cap
competing with foreground streams through the real disk model.

Run:  python examples/replication_failover.py
"""

from repro.api import (
    FaultSpec,
    LayoutSpec,
    MB,
    PrefetchSpec,
    ReplicationSpec,
    SpiffiConfig,
    run,
)

FAULTS = FaultSpec(
    fail_disk_ids=(0,),       # disk 0 dies, permanently...
    fail_at_s=1.0,            # ...one second into warmup
    request_timeout_s=1.0,    # give up on a stuck read after 1 s
    max_retries=2,
)


def simulate(layout: str, replication: ReplicationSpec):
    config = SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=20,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        layout=LayoutSpec(layout),
        replication=replication,
        # Prefetching also reroutes around the dead disk, hiding most
        # failovers behind pool hits; disable it so every replica read
        # shows up in the failover counter.
        prefetch=PrefetchSpec("none"),
        faults=FAULTS,
        start_spread_s=5.0,
        warmup_grace_s=10.0,
        measure_s=60.0,
        seed=42,
    )
    return run(config)


def main() -> None:
    runs = [
        ("unreplicated", simulate("striped", ReplicationSpec())),
        ("mirrored", simulate("mirrored", ReplicationSpec(factor=2))),
        ("chained", simulate("chained", ReplicationSpec(factor=2))),
    ]

    header = "".join(f"{name:>14}" for name, _ in runs)
    print(f"{'':26}{header}")
    for label, field in [
        ("glitches", "glitches"),
        ("reads lost (concealed)", "fault_failed_reads"),
        ("reads abandoned", "fault_abandoned_reads"),
        ("failover reads", "failover_reads"),
        ("remote replica reads", "remote_replica_reads"),
        ("blocks rebuilt", "rebuild_blocks"),
        ("rebuild I/O (MB)", None),
        ("blocks delivered", "blocks_delivered"),
    ]:
        cells = []
        for _, metrics in runs:
            if field is None:
                cells.append(f"{metrics.rebuild_io_bytes / MB:14.1f}")
            else:
                cells.append(f"{getattr(metrics, field):14d}")
        print(f"{label:26}{''.join(cells)}")
    print()
    lost = runs[0][1].fault_failed_reads + runs[0][1].fault_abandoned_reads
    print(f"Unreplicated, {lost} reads hit the dead disk and lost their data;")
    print("replicated layouts served every one from a surviving copy while")
    print("the rebuild re-created the lost blocks in the background.")


if __name__ == "__main__":
    main()
