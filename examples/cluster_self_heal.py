#!/usr/bin/env python
"""A 3-node SPIFFI cluster healing itself through a double outage.

Runs the same staggered double-outage script against a 3-node
chained-declustered cluster twice — once without self-healing, once
with catalog rebuild enabled — then once more with a recovery script to
show a rejoin resync.  Node 1 dies 5 s into measurement; node 2 (the
other host of every title node 1 primaried) follows 8 s later.

Without rebuild the second failure strands every title whose two copies
sat on the doomed pair: their in-flight sessions are lost.  With
rebuild, survivors re-replicate the dead member's catalog through the
interconnect inside the stagger window (paced at the configured
bandwidth cap), so the second outage finds a fresh third copy already
live and strictly fewer sessions are lost.  The trace shows each title
copy going live and the recovered member resyncing before it rejoins.

Run:  python examples/cluster_self_heal.py
"""

from repro.api import (
    AdmissionSpec,
    ArrivalSpec,
    ClusterConfig,
    FaultSpec,
    MB,
    PlacementSpec,
    RouterSpec,
    SelfHealSpec,
    SpiffiCluster,
    SpiffiConfig,
)

MEMBER = SpiffiConfig(
    nodes=2,
    disks_per_node=2,
    terminals=1,  # ignored: the cluster workload is open
    videos_per_disk=2,
    video_length_s=4.0,
    server_memory_bytes=64 * MB,
    zipf_skew=0.9,
    admission=AdmissionSpec("bandwidth", headroom=0.5),
    start_spread_s=2.0,
    warmup_grace_s=4.0,
    measure_s=24.0,
    seed=7,
)

WORKLOAD = ArrivalSpec(
    process="poisson",
    rate_per_s=6.0,
    mean_view_duration_s=30.0,
    queue_limit=4,
    mean_patience_s=10.0,
    startup_slo_s=10.0,
)

#: Node 1 dies at t=11 s, node 2 at t=19 s.
DOUBLE_OUTAGE = FaultSpec(
    fail_node_ids=(1, 2), fail_nodes_at_s=11.0, fail_node_stagger_s=8.0
)

#: Node 1 dies at t=11 s and is scripted to recover 8 s later; with a
#: resync fraction the rejoin is not a free flip but a paced catch-up.
RECOVERING = FaultSpec(
    fail_node_ids=(1,), fail_nodes_at_s=11.0, node_recover_after_s=8.0
)

HEAL = SelfHealSpec(rebuild=True, rebuild_bandwidth_bytes_per_s=4 * MB)


def run(faults: FaultSpec, self_heal: SelfHealSpec, trace: bool = False):
    cluster = SpiffiCluster(
        ClusterConfig(
            node=MEMBER,
            nodes=3,
            placement=PlacementSpec("chained-declustered", replicas=2),
            routing=RouterSpec("locality"),
            workload=WORKLOAD,
            faults=faults,
            self_heal=self_heal,
        )
    )
    recorder = cluster.enable_cluster_tracing() if trace else None
    metrics = cluster.run()
    return cluster, metrics, recorder


def main() -> None:
    _, unhealed, _ = run(DOUBLE_OUTAGE, SelfHealSpec())
    healed_cluster, healed, trace = run(DOUBLE_OUTAGE, HEAL, trace=True)
    _, rejoined, rejoin_trace = run(RECOVERING, HEAL, trace=True)

    print("double outage, no self-heal vs rebuild@4MB/s")
    print(f"{'':28}{'no heal':>10}{'rebuild':>10}")
    for label, field in [
        ("sessions lost", "lost_sessions"),
        ("failovers", "failed_over_sessions"),
        ("balked", "balked_sessions"),
        ("titles re-replicated", "node_titles_rebuilt"),
        ("titles unrecoverable", "node_titles_unrecoverable"),
    ]:
        print(
            f"{label:28}{getattr(unhealed, field):10d}"
            f"{getattr(healed, field):10d}"
        )
    print(
        f"{'replication restored in':28}{'-':>10}"
        f"{healed.replication_restore_s:9.1f}s"
        f"   (moved {healed.node_rebuild_bytes // MB} MB at 4 MB/s)"
    )

    print("\nrebuild trace (outage at t=11 s):")
    for event in trace.events():
        if event.kind.startswith("cluster.rebuild"):
            fields = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.fields.items())
                if key != "node"
            )
            print(
                f"  t={event.time:6.2f}s {event.kind:22} "
                f"node={event.fields['node']} {fields}"
            )

    print("\nrejoin trace (recovery scripted at t=19 s):")
    for event in rejoin_trace.events():
        if event.kind.startswith("cluster.rejoin"):
            fields = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.fields.items())
                if key != "node"
            )
            print(
                f"  t={event.time:6.2f}s {event.kind:22} "
                f"node={event.fields['node']} {fields}"
            )
    print(
        f"\nThe recovered member resynced {rejoined.rejoin_resync_bytes // MB}"
        f" MB of stale catalog before re-entering routing "
        f"({rejoined.rejoin_resyncs} rejoin resync)."
    )


if __name__ == "__main__":
    main()
