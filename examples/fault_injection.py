#!/usr/bin/env python
"""Fault injection: what happens when disks misbehave mid-stream?

Runs the same 40-terminal workload twice — once on healthy hardware and
once with a seeded schedule of disk slowdowns and temporary outages —
and compares what viewers experienced.  The fault run stays fully
deterministic: the schedule is drawn from its own random stream, so two
runs with the same seed inject the same faults at the same instants.

The metrics split glitches into *fault-attributed* (they overlapped an
active fault, or its immediate aftermath) and *scheduling* glitches, so
a capacity experiment can tell hardware pain from queueing pain.

Run:  python examples/fault_injection.py
"""

from repro.api import FaultSpec, MB, SpiffiConfig, run

FAULTS = FaultSpec(
    disk_fault_rate_per_hour=120.0,   # one fault per disk every 30 s
    slow_weight=3.0,                  # slowdowns 3x as common as outages
    outage_weight=1.0,
    slow_latency_multiplier=4.0,
    mean_slow_duration_s=15.0,
    mean_outage_duration_s=4.0,
    request_timeout_s=1.0,            # give up on a stuck read after 1 s
    max_retries=2,
)


def simulate(faults: FaultSpec):
    config = SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=40,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        faults=faults,
        start_spread_s=5.0,
        warmup_grace_s=10.0,
        measure_s=60.0,
        seed=42,
    )
    return run(config)


def main() -> None:
    healthy = simulate(FaultSpec())
    faulty = simulate(FAULTS)

    print("                          healthy    faulty")
    print(f"glitches                  {healthy.glitches:7d}   {faulty.glitches:7d}")
    print(f"  fault-attributed        {healthy.fault_glitches:7d}   "
          f"{faulty.fault_glitches:7d}")
    print(f"  scheduling              {healthy.scheduling_glitches:7d}   "
          f"{faulty.scheduling_glitches:7d}")
    print(f"fault events injected     {healthy.fault_events_injected:7d}   "
          f"{faulty.fault_events_injected:7d}")
    print(f"reads retried             {healthy.fault_retries:7d}   "
          f"{faulty.fault_retries:7d}")
    print(f"reads abandoned           {healthy.fault_abandoned_reads:7d}   "
          f"{faulty.fault_abandoned_reads:7d}")
    print(f"blocks delivered          {healthy.blocks_delivered:7d}   "
          f"{faulty.blocks_delivered:7d}")
    print(f"mean response time (ms)   {healthy.mean_response_time_s * 1e3:7.1f}   "
          f"{faulty.mean_response_time_s * 1e3:7.1f}")
    print()
    if faulty.fault_glitches:
        print("The faulty run glitches, and the metrics pin the blame on the")
        print("injected faults rather than on the disk scheduler.")
    else:
        print("Degraded mode absorbed every injected fault without a glitch.")


if __name__ == "__main__":
    main()
