#!/usr/bin/env python
"""Compare the paper's disk scheduling algorithms head to head.

Runs the same overloaded workload under each scheduling algorithm —
elevator, GSS, round-robin, the SPIFFI real-time scheduler, plus the
FCFS and EDF baselines — and prints glitch counts and response times.
Round-robin and FCFS fall over first because they ignore seek
distances; the real-time scheduler holds response times down by
servicing urgent requests first (paper §5.2.2, Figure 10).

Run:  python examples/scheduler_shootout.py
"""

from repro.api import (
    MB,
    PrefetchSpec,
    ReplacementSpec,
    SchedulerSpec,
    SpiffiConfig,
    format_table,
    run,
)

#: Load chosen to stress a 2-node / 4-disk server (~30 MB/s of disk).
TERMINALS = 57

CONTENDERS = (
    ("elevator", SchedulerSpec("elevator"), PrefetchSpec("standard")),
    ("GSS (1 group)", SchedulerSpec("gss", gss_groups=1), PrefetchSpec("standard")),
    ("GSS (4 groups)", SchedulerSpec("gss", gss_groups=4), PrefetchSpec("standard")),
    ("round-robin", SchedulerSpec("round_robin"), PrefetchSpec("standard")),
    ("FCFS", SchedulerSpec("fcfs"), PrefetchSpec("standard")),
    ("EDF", SchedulerSpec("edf"), PrefetchSpec("realtime", depth=2)),
    (
        "real-time (3 prio / 4s)",
        SchedulerSpec("realtime", priority_classes=3, priority_spacing_s=4.0),
        PrefetchSpec("realtime", processes_per_disk=4, depth=2),
    ),
)


def main() -> None:
    rows = []
    for label, scheduler, prefetch in CONTENDERS:
        config = SpiffiConfig(
            nodes=2,
            disks_per_node=2,
            terminals=TERMINALS,
            videos_per_disk=2,
            video_length_s=600.0,
            server_memory_bytes=256 * MB,
            scheduler=scheduler,
            prefetch=prefetch,
            replacement_policy=ReplacementSpec("love_prefetch"),
            start_spread_s=5.0,
            warmup_grace_s=10.0,
            measure_s=60.0,
            seed=7,
        )
        metrics = run(config)
        rows.append(
            (
                label,
                metrics.glitches,
                f"{metrics.mean_response_time_s * 1000:.0f} ms",
                f"{metrics.max_response_time_s * 1000:.0f} ms",
                f"{metrics.disk_utilization_mean:.0%}",
            )
        )
    print(
        format_table(
            ("scheduler", "glitches", "mean resp", "max resp", "disk util"),
            rows,
            title=f"Disk scheduling shootout at {TERMINALS} terminals",
        )
    )


if __name__ == "__main__":
    main()
