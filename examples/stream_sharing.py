#!/usr/bin/env python
"""A flash crowd served with and without stream sharing.

Runs the same flash-crowd workload — arrivals bursting to 3x the base
rate against a small 2x2-disk server — three times: with sharing off,
with batched admission alone, and with batching plus buffer chaining.
Near-simultaneous same-title arrivals then share one launch window,
one admission slot, and one disk stream, and close successors read
their predecessor's still-resident buffer pages instead of the disks.

The trace shows windows opening, filling, and launching; the metrics
show the burst's sessions sharing streams (and at higher load, the
glitch/startup cliff moving out — see
`python -m repro.experiments sharing` for the full capacity grid).

Run:  python examples/stream_sharing.py
"""

from repro.api import (
    ArrivalSpec,
    MB,
    SharingSpec,
    SpiffiConfig,
    SpiffiSystem,
)

FLASH = ArrivalSpec(
    process="flash",
    rate_per_s=5.0,
    flash_at_s=20.0,
    flash_duration_s=15.0,
    flash_multiplier=3.0,
    mean_view_duration_s=30.0,
    queue_limit=16,
    mean_patience_s=10.0,
    startup_slo_s=10.0,
)

POLICIES = [
    ("no sharing", SharingSpec()),
    ("batch", SharingSpec(policy="batch", window_s=2.0)),
    ("batch+chain", SharingSpec(policy="batch+chain", window_s=2.0)),
]


def config_with(sharing: SharingSpec) -> SpiffiConfig:
    return SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=1,  # ignored: the workload is open
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=64 * MB,
        zipf_skew=1.0,
        sharing=sharing,
        start_spread_s=4.0,
        warmup_grace_s=8.0,
        measure_s=45.0,
        seed=5,
        workload=FLASH,
    )


def main() -> None:
    print(f"{'policy':14}{'admitted':>9}{'shared':>8}{'frac':>6}"
          f"{'chain reads':>12}{'p99 startup':>12}{'glitches':>9}")
    trace = None
    for label, spec in POLICIES:
        system = SpiffiSystem(config_with(spec))
        if spec.enabled:
            recorder = system.enable_sharing_tracing()
        metrics = system.run()
        if spec.enabled:
            trace = recorder  # keep the last (batch+chain) run's trace
        print(
            f"{label:14}{metrics.admitted_sessions:9d}"
            f"{metrics.shared_streams:8d}{metrics.sharing_fraction:6.2f}"
            f"{metrics.chain_reads:12d}{metrics.startup_p99_s:12.2f}"
            f"{metrics.glitches:9d}"
        )

    print("\nlaunch windows during the flash burst (batch+chain run):")
    for event in trace.events():
        if event.kind != "batch.launch":
            continue
        if not FLASH.flash_at_s <= event.time <= (
            FLASH.flash_at_s + FLASH.flash_duration_s
        ):
            continue
        size = event.fields["size"]
        crowd = "*" * size
        print(
            f"  t={event.time:6.2f}s video={event.fields['video']} "
            f"launched {size:2d} viewer(s) on one stream {crowd}"
        )


if __name__ == "__main__":
    main()
