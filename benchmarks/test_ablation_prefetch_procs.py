"""Ablation: prefetch aggressiveness (processes per disk and depth).

§5.2.3: "the non-real-time disk scheduling algorithms are hurt by
aggressive prefetching ... the real-time disk scheduling algorithm can
identify and skip prefetches if necessary and, therefore, benefits from
aggressive prefetching."
"""

import dataclasses

from repro.core.system import run_simulation
from repro.experiments.presets import elevator_bundle, paper_config, realtime_bundle
from repro.experiments.report import format_table, publish


def run_ablation():
    rows = []
    load = 220
    variants = (
        ("elevator / 1 proc, depth 1", elevator_bundle(), dict()),
        ("elevator / 4 procs, depth 4",
         elevator_bundle(), dict(processes_per_disk=4, depth=4)),
        ("real-time / 1 proc, depth 1",
         realtime_bundle(), dict(processes_per_disk=1, depth=1)),
        ("real-time / 4 procs, depth 3", realtime_bundle(), dict()),
    )
    for label, bundle, prefetch_overrides in variants:
        config = paper_config(terminals=load, **bundle)
        if prefetch_overrides:
            config = config.replace(
                prefetch=dataclasses.replace(config.prefetch, **prefetch_overrides)
            )
        metrics = run_simulation(config)
        rows.append(
            (
                label,
                metrics.glitches,
                round(metrics.buffer_hit_rate, 2),
                metrics.wasted_prefetches,
                round(metrics.mean_response_time_s * 1000, 1),
            )
        )
    return rows


def test_ablation_prefetch_procs(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    publish(
        "ablation_prefetch_procs",
        format_table(
            ("configuration", "glitches", "hit rate", "wasted", "mean resp ms"),
            rows,
            title="Ablation: prefetch aggressiveness (220 terminals, 4GB)",
        ),
    )
    assert len(rows) == 4
