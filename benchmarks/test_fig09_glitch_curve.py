"""Figure 9: glitches vs terminal count — the max-terminals procedure."""

from repro.experiments.figures import fig09_glitch_curve
from repro.experiments.report import publish


def test_fig09_glitch_curve(benchmark):
    result = benchmark.pedantic(fig09_glitch_curve, rounds=1, iterations=1)
    publish(result.name, result.table())
    glitches = result.column("glitches")
    # Paper shape: zero glitches at light load, non-zero past the knee,
    # and growing rapidly beyond it.
    assert glitches[0] == 0
    assert glitches[-1] > 0
    assert glitches[-1] >= glitches[-2]
