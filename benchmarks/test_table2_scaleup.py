"""Table 2: scaleup to 2x and 4x the disks, videos, and memory."""

from repro.experiments.report import publish
from repro.experiments.tables import table2_scaleup


def test_table2_scaleup(benchmark):
    result = benchmark.pedantic(table2_scaleup, rounds=1, iterations=1)
    publish(result.name, result.table())
    # Paper shape: every configuration grows substantially when scaled;
    # the real-time configuration scales at least as well as the
    # equivalent elevator configuration (rows 3 and 4 share memory and
    # terminal memory).
    for row in result.rows:
        base, x2, x4 = row[2], row[4], row[7]
        assert x2 > base
        assert x4 > x2
    elevator_512 = result.rows[2]
    realtime_512 = result.rows[3]
    assert realtime_512[7] >= 0.9 * elevator_512[7]
