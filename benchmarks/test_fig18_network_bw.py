"""Figure 18: peak aggregate network bandwidth requirements."""

from repro.experiments.figures import fig18_network_bandwidth
from repro.experiments.report import publish


def test_fig18_network_bw(benchmark):
    result = benchmark.pedantic(fig18_network_bandwidth, rounds=1, iterations=1)
    publish(result.name, result.table())
    peaks = result.column("peak MB/s")
    per_terminal = result.column("Mbit/s per terminal")
    # Paper shape: peak bandwidth grows with scale; per-terminal demand
    # stays near the 4 Mbit/s compressed video rate.
    assert peaks == sorted(peaks)
    for rate in per_terminal:
        assert 3.0 <= rate <= 8.0
