"""Figure 13: striped vs non-striped video layouts."""

from repro.experiments.figures import fig13_striping
from repro.experiments.report import publish


def test_fig13_striping(benchmark):
    result = benchmark.pedantic(fig13_striping, rounds=1, iterations=1)
    publish(result.name, result.table())
    # Paper shape: striping wins overwhelmingly at every memory size,
    # and the non-striped Zipf case is the worst of all (hot disks).
    for row_index in range(len(result.rows)):
        striped_zipf = result.cell(row_index, "striped/zipf")
        non_zipf = result.cell(row_index, "non-striped/zipf")
        non_uniform = result.cell(row_index, "non-striped/uniform")
        assert striped_zipf > 2.5 * non_zipf
        assert striped_zipf > 1.25 * non_uniform
        assert non_zipf <= non_uniform
