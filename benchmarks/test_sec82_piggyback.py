"""Section 8.2: piggybacking same-video terminals with delayed starts."""

from repro.experiments.figures import sec82_piggyback
from repro.experiments.report import publish


def test_sec82_piggyback(benchmark):
    result = benchmark.pedantic(sec82_piggyback, rounds=1, iterations=1)
    publish(result.name, result.table())
    solo = result.cell(0, "max terminals")
    batched = result.cell(1, "max terminals")
    # Paper shape: a 5-minute start delay "more than doubles" supported
    # terminals; require a substantial (>=1.2x) gain here.
    assert batched >= 1.2 * solo
