"""Ablation: real-time scheduler priority classes and spacing.

§7.2: "we explored a wide variety of settings for these parameters and
found that regardless of how they were set there was little variation
in the performance of the system."  This bench sweeps both knobs and
checks that claim against our implementation.
"""

from repro.core.system import run_simulation
from repro.experiments.presets import paper_config, realtime_bundle
from repro.experiments.report import format_table, publish


def run_ablation():
    rows = []
    load = 220
    for classes in (2, 3, 5):
        for spacing in (2.0, 4.0, 8.0):
            config = paper_config(
                terminals=load,
                **realtime_bundle(
                    priority_classes=classes, priority_spacing_s=spacing
                ),
            )
            metrics = run_simulation(config)
            rows.append(
                (
                    classes,
                    f"{spacing:g}s",
                    metrics.glitches,
                    round(metrics.mean_response_time_s * 1000, 1),
                    round(metrics.disk_utilization_mean, 2),
                )
            )
    return rows


def test_ablation_priority_params(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    publish(
        "ablation_priority_params",
        format_table(
            ("classes", "spacing", "glitches", "mean resp ms", "disk util"),
            rows,
            title="Ablation: real-time priority classes x spacing (220 terminals)",
        ),
    )
    glitch_counts = [row[2] for row in rows]
    # The paper found little sensitivity; all settings should stay in
    # the same regime (either all near-zero or all overloaded).
    assert max(glitch_counts) - min(glitch_counts) < 200
