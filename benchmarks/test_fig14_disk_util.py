"""Figure 14: average disk utilization, striped vs non-striped."""

from repro.experiments.figures import fig14_disk_utilization
from repro.experiments.report import publish


def test_fig14_disk_util(benchmark):
    result = benchmark.pedantic(fig14_disk_utilization, rounds=1, iterations=1)
    publish(result.name, result.table())
    utils = dict(zip(result.column("layout/access"), result.column("mean util")))
    # Paper shape: fully striped utilization approaches 100%; the
    # non-striped layouts leave disks badly underutilised (<~50%).
    assert utils["striped/zipf"] > 0.8
    assert utils["non-striped/zipf"] < 0.55
    assert utils["non-striped/uniform"] < 0.75
