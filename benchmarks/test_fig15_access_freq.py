"""Figure 15: movie access frequencies vs server memory."""

from repro.experiments.figures import fig15_access_frequencies
from repro.experiments.report import publish


def test_fig15_access_freq(benchmark):
    result = benchmark.pedantic(fig15_access_frequencies, rounds=1, iterations=1)
    publish(result.name, result.table())
    # Paper shape: with little memory the curves coincide; with plenty
    # of memory the more-skewed distributions support at least as many
    # terminals (shared pages).
    uniform = result.column("uniform")
    steep = result.column("zipf z=1.5")
    assert steep[-1] >= uniform[-1]
    low_memory_spread = max(
        result.rows[0][1:]
    ) - min(result.rows[0][1:])
    granularity = max(10, result.rows[0][1] // 10)
    assert low_memory_spread <= 4 * granularity
