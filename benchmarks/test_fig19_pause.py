"""Figure 19: the effect of viewers pausing (§8.1)."""

from repro.experiments.figures import fig19_pause
from repro.experiments.report import publish


def test_fig19_pause(benchmark):
    result = benchmark.pedantic(fig19_pause, rounds=1, iterations=1)
    publish(result.name, result.table())
    baseline = result.cell(0, "max terminals")
    with_pauses = result.cell(1, "max terminals")
    # Paper shape: "performance is essentially unaffected by the
    # pausing" — within ~10% either way (paused viewers consume no
    # bandwidth, so pausing can even help slightly).
    assert with_pauses >= 0.9 * baseline
