"""Figure 17: CPU utilization under scaleup (4 CPUs throughout)."""

from repro.experiments.figures import fig17_cpu_utilization
from repro.experiments.report import publish


def test_fig17_cpu_util(benchmark):
    result = benchmark.pedantic(fig17_cpu_utilization, rounds=1, iterations=1)
    publish(result.name, result.table())
    cpu = result.column("cpu util")
    # Paper shape: CPU utilization grows with scale but "is not a
    # performance factor even with 16 disks per node".
    assert cpu == sorted(cpu)
    assert cpu[-1] < 0.5
