"""Figure 11: server memory requirements under elevator scheduling."""

from repro.experiments.figures import fig11_memory_elevator
from repro.experiments.report import publish


def test_fig11_memory_elevator(benchmark):
    result = benchmark.pedantic(fig11_memory_elevator, rounds=1, iterations=1)
    publish(result.name, result.table())
    lru = result.column("global LRU")
    love = result.column("love prefetch")
    # Paper shape: love prefetch keeps working at the smallest memory
    # (no worse than global LRU there), and both converge with plenty
    # of memory.
    assert love[0] >= lru[0]
    assert love[0] >= 0.75 * love[-1]
    # Global LRU degrades at the smallest memory sizes.
    assert lru[0] < lru[-1]
