"""Stdlib-only microbenchmarks for the discrete-event kernel.

Run ``python benchmarks/micro/kernel_bench.py --help`` (with
``PYTHONPATH=src``) for the harness; results are published to
``BENCH_kernel.json`` at the repo root.
"""
