"""Microbenchmark harness for the ``repro.sim`` kernel hot path.

Measures raw kernel throughput (events per second, derived from the
environment's ``events_processed`` counter and the wall time of the
run phase alone — building thousands of generators is setup, not
kernel hot path) over four canned, fully deterministic scenarios, each
runnable on every event-queue backend (see :mod:`repro.sim.eventqueue`):

* ``timer_storm``      — thousands of interleaved timeouts; pure
  event-queue churn with no resource or condition machinery.
* ``timer_storm_xl``   — the same mix at cluster scale: ~100k timers
  pending at all times over a minute-wide spread.  This is the
  calendar queue's home turf: at this queue depth the O(1) bucket
  operations beat the O(log n) heap; at ``timer_storm`` depth they
  don't, which is why the heap stays the default.
* ``resource_contention`` — processes fighting over a small
  :class:`~repro.sim.resources.Resource` with ``AnyOf`` timeout races;
  exercises ``Request``/``succeed``/condition scheduling.
* ``spiffi_small``     — one complete small SPIFFI system run
  (build + warmup + measure), the end-to-end number every figure pays.

Backends are measured **interleaved** (heap run, calendar run, heap
run, ...) so slow host drift hits both sides equally, and each side
reports its best-of-N; the published per-scenario ``calendar_speedup``
is the ratio of those bests.

Stdlib-only by design: no pytest-benchmark, no numpy in the hot loop.
Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/micro/kernel_bench.py                 # print a table
    PYTHONPATH=src python benchmarks/micro/kernel_bench.py --backend heap  # one backend only
    PYTHONPATH=src python benchmarks/micro/kernel_bench.py --publish BENCH_kernel.json
    PYTHONPATH=src python benchmarks/micro/kernel_bench.py --check BENCH_kernel.json

``--check`` is the CI perf-smoke mode: it re-measures every (scenario,
backend) pair and fails (exit 1) if any drops below its
``floor_events_per_s`` recorded in the published baseline.  Floors are
deliberately generous (a fraction of the tuned throughput on the
recording host) so only a genuine hot-path regression — not runner
jitter — trips them.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time

from repro.sim import Environment, Resource, SimSpec
from repro.sim.rng import RandomSource

#: Bump when scenario definitions change (results are not comparable
#: across schema versions).  ``/2`` added the per-backend axis and the
#: ``timer_storm_xl`` scenario.
SCHEMA = "repro.bench.kernel/2"

#: Fraction of freshly measured events/sec recorded as the CI floor.
FLOOR_FRACTION = 0.25

#: Backends every scenario is measured on (A/B interleaved).
BACKENDS = ("heap", "calendar")


# ----------------------------------------------------------------------
# Scenarios.  Each takes the event-queue spec plus a deterministic seed,
# builds the simulation (untimed — process/generator construction is
# not kernel hot path), and returns ``(env, go)`` where ``go()`` runs
# the simulation; the driver times ``go`` alone and reads
# ``events_processed`` off the environment.
# ----------------------------------------------------------------------
def timer_storm(
    spec: SimSpec,
    seed: int = 1,
    processes: int = 200,
    spread: float = 1.0,
    horizon: float = 500.0,
):
    """Interleaved sleep loops: the pure timeout/queue fast path."""
    env = Environment(queue=spec.build_queue())
    rng = RandomSource(seed)

    def sleeper(env, stream):
        while True:
            yield env.timeout(0.05 + stream.uniform(0.0, spread))

    for index in range(processes):
        env.process(sleeper(env, rng.spawn(f"storm-{index}")), name=f"storm-{index}")
    return env, lambda: env.run(until=horizon)


def timer_storm_xl(spec: SimSpec, seed: int = 4):
    """The timer storm at cluster scale: ~100k pending timers.

    The wide delay spread keeps the pending set deep for the whole run
    — the regime the calendar queue is built for (and where the heap's
    ``O(log n)`` with cold caches hurts the most).
    """
    return timer_storm(
        spec, seed=seed, processes=100_000, spread=60.0, horizon=30.0
    )


def resource_contention(
    spec: SimSpec,
    seed: int = 2,
    processes: int = 120,
    capacity: int = 8,
    horizon: float = 400.0,
):
    """Request/release churn with AnyOf timeout races on a shared resource."""
    env = Environment(queue=spec.build_queue())
    rng = RandomSource(seed)
    pool = Resource(env, capacity=capacity)

    def worker(env, stream):
        while True:
            req = pool.request()
            yield env.any_of([req, env.timeout(2.0)])
            if not req.processed:
                # Lost the race against the timeout: keep waiting for
                # the grant (exercises re-waiting on a pending event).
                yield req
            yield env.timeout(0.05 + stream.uniform(0.0, 0.2))
            pool.release(req)
            yield env.timeout(stream.uniform(0.0, 0.1))

    for index in range(processes):
        env.process(worker(env, rng.spawn(f"worker-{index}")), name=f"worker-{index}")
    return env, lambda: env.run(until=horizon)


def spiffi_small(spec: SimSpec, seed: int = 3):
    """One complete small SpiffiSystem run (warmup + measure)."""
    from repro import MB, SpiffiConfig
    from repro.core.system import SpiffiSystem

    config = SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=24,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=150.0,
        seed=seed,
        sim=spec,
    )
    system = SpiffiSystem(config)
    return system.env, system.run


SCENARIOS = {
    "timer_storm": timer_storm,
    "timer_storm_xl": timer_storm_xl,
    "resource_contention": resource_contention,
    "spiffi_small": spiffi_small,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def measure(
    name: str, repeat: int = 3, backends: tuple[str, ...] = BACKENDS
) -> dict[str, dict]:
    """Interleaved best-of-*repeat* measurement of one scenario.

    Runs round-robin over *backends* (heap, calendar, heap, calendar,
    ...) so host drift lands on both sides equally, and keeps the best
    wall time per backend.  Best (not mean) is the standard
    microbenchmark estimator: noise on a busy host only ever slows a
    run down.
    """
    scenario = SCENARIOS[name]
    specs = {backend: SimSpec(event_queue=backend) for backend in backends}
    best: dict[str, dict] = {
        backend: {"events": 0, "wall_s": float("inf")} for backend in backends
    }
    for _ in range(repeat):
        for backend, spec in specs.items():
            env, go = scenario(spec)
            # Identical GC state for every timed run: collect the setup
            # garbage, then keep the collector out of the hot loop.
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                go()
                wall = time.perf_counter() - started
            finally:
                gc.enable()
            if wall < best[backend]["wall_s"]:
                best[backend] = {"events": env.events_processed, "wall_s": wall}
    results = {}
    for backend, row in best.items():
        wall = row["wall_s"]
        results[backend] = {
            "events": row["events"],
            "wall_s": round(wall, 6),
            "events_per_s": round(row["events"] / wall, 1) if wall > 0 else 0.0,
        }
    return results


def run_all(
    repeat: int = 3, backends: tuple[str, ...] = BACKENDS
) -> dict[str, dict[str, dict]]:
    return {
        name: measure(name, repeat=repeat, backends=backends) for name in SCENARIOS
    }


def geometric_mean(ratios: list[float]) -> float:
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios)) if ratios else 0.0


def publish(results: dict[str, dict[str, dict]]) -> dict:
    """The BENCH_kernel.json document for freshly measured *results*.

    Per scenario: each backend's interleaved best-of numbers plus its
    CI floor (a generous :data:`FLOOR_FRACTION` of the measured
    throughput), and the calendar-vs-heap speedup when both backends
    were measured.  The aggregate is the geometric mean of the
    per-scenario speedups.
    """
    scenarios = {}
    ratios = []
    for name, by_backend in results.items():
        entry: dict = {"backends": {}}
        for backend, row in by_backend.items():
            entry["backends"][backend] = dict(
                row,
                floor_events_per_s=round(row["events_per_s"] * FLOOR_FRACTION, 1),
            )
        if "heap" in by_backend and "calendar" in by_backend:
            ratio = (
                by_backend["calendar"]["events_per_s"]
                / by_backend["heap"]["events_per_s"]
            )
            entry["calendar_speedup"] = round(ratio, 3)
            ratios.append(ratio)
        scenarios[name] = entry
    document = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenarios": scenarios,
    }
    if ratios:
        document["aggregate_calendar_speedup"] = round(geometric_mean(ratios), 3)
    return document


def check(baseline_path: str, repeat: int = 3) -> int:
    """CI perf smoke: fail if any (scenario, backend) drops below floor."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch: {baseline.get('schema')!r} != {SCHEMA!r}")
        return 1
    failures = 0
    for name, entry in baseline["scenarios"].items():
        if name not in SCENARIOS:
            print(f"SKIP {name}: unknown scenario in baseline")
            continue
        backends = tuple(
            backend for backend in entry["backends"] if backend in BACKENDS
        )
        got = measure(name, repeat=repeat, backends=backends)
        for backend in backends:
            floor = entry["backends"][backend]["floor_events_per_s"]
            ok = got[backend]["events_per_s"] >= floor
            print(
                f"{'ok  ' if ok else 'FAIL'} {name} [{backend}]: "
                f"{got[backend]['events_per_s']:>12,.0f} events/s "
                f"(floor {floor:,.0f})"
            )
            if not ok:
                failures += 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N repeats")
    parser.add_argument("--json", metavar="PATH", help="write raw scenario results as JSON")
    parser.add_argument(
        "--publish", metavar="PATH", help="write the BENCH_kernel.json document"
    )
    parser.add_argument(
        "--check", metavar="PATH", help="perf-smoke: verify against a published baseline"
    )
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), help="measure a single scenario"
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        help="measure a single event-queue backend (default: interleaved A/B)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check(args.check, repeat=args.repeat)

    backends = (args.backend,) if args.backend else BACKENDS
    if args.scenario:
        results = {
            args.scenario: measure(args.scenario, repeat=args.repeat, backends=backends)
        }
    else:
        results = run_all(repeat=args.repeat, backends=backends)
    for name, by_backend in results.items():
        for backend, row in by_backend.items():
            print(
                f"{name:>20} [{backend:>8}]: {row['events']:>10,} events "
                f"in {row['wall_s']:.3f}s = {row['events_per_s']:>12,.0f} events/s"
            )
        if "heap" in by_backend and "calendar" in by_backend:
            ratio = (
                by_backend["calendar"]["events_per_s"]
                / by_backend["heap"]["events_per_s"]
            )
            print(f"{name:>20} calendar speedup: {ratio:.3f}x")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.publish:
        document = publish(results)
        with open(args.publish, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if "aggregate_calendar_speedup" in document:
            print(
                f"aggregate calendar speedup: "
                f"{document['aggregate_calendar_speedup']}x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
