"""Microbenchmark harness for the ``repro.sim`` kernel hot path.

Measures raw kernel throughput (events per second, derived from the
environment's ``events_processed`` counter and wall time) over three
canned, fully deterministic scenarios:

* ``timer_storm``      — thousands of interleaved timeouts; pure
  event-queue churn with no resource or condition machinery.
* ``resource_contention`` — processes fighting over a small
  :class:`~repro.sim.resources.Resource` with ``AnyOf`` timeout races;
  exercises ``Request``/``succeed``/condition scheduling.
* ``spiffi_small``     — one complete small :func:`repro.run_simulation`
  (build + warmup + measure), the end-to-end number every figure pays.

Stdlib-only by design: no pytest-benchmark, no numpy in the hot loop.
Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/micro/kernel_bench.py                 # print a table
    PYTHONPATH=src python benchmarks/micro/kernel_bench.py --json out.json # machine-readable
    PYTHONPATH=src python benchmarks/micro/kernel_bench.py --check BENCH_kernel.json

``--check`` is the CI perf-smoke mode: it re-measures and fails (exit 1)
if any scenario's events/sec drops below that scenario's
``floor_events_per_s`` recorded in the published baseline.  Floors are
deliberately generous (a fraction of the tuned throughput on the
recording host) so only a genuine hot-path regression — not runner
jitter — trips them.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.sim import Environment, Resource
from repro.sim.rng import RandomSource

#: Bump when scenario definitions change (results are not comparable
#: across schema versions).
SCHEMA = "repro.bench.kernel/1"

#: Fraction of freshly measured events/sec recorded as the CI floor.
FLOOR_FRACTION = 0.25


# ----------------------------------------------------------------------
# Scenarios.  Each takes a deterministic seed, runs one simulation, and
# returns the environment so the driver can read ``events_processed``.
# ----------------------------------------------------------------------
def timer_storm(seed: int = 1, processes: int = 200, horizon: float = 500.0) -> Environment:
    """Interleaved sleep loops: the pure timeout/queue fast path."""
    env = Environment()
    rng = RandomSource(seed)

    def sleeper(env, stream):
        while True:
            yield env.timeout(0.05 + stream.uniform(0.0, 1.0))

    for index in range(processes):
        env.process(sleeper(env, rng.spawn(f"storm-{index}")), name=f"storm-{index}")
    env.run(until=horizon)
    return env


def resource_contention(
    seed: int = 2, processes: int = 120, capacity: int = 8, horizon: float = 400.0
) -> Environment:
    """Request/release churn with AnyOf timeout races on a shared resource."""
    env = Environment()
    rng = RandomSource(seed)
    pool = Resource(env, capacity=capacity)

    def worker(env, stream):
        while True:
            req = pool.request()
            yield env.any_of([req, env.timeout(2.0)])
            if not req.processed:
                # Lost the race against the timeout: keep waiting for
                # the grant (exercises re-waiting on a pending event).
                yield req
            yield env.timeout(0.05 + stream.uniform(0.0, 0.2))
            pool.release(req)
            yield env.timeout(stream.uniform(0.0, 0.1))

    for index in range(processes):
        env.process(worker(env, rng.spawn(f"worker-{index}")), name=f"worker-{index}")
    env.run(until=horizon)
    return env


def spiffi_small(seed: int = 3) -> Environment:
    """One complete small SpiffiSystem run: the end-to-end cost."""
    from repro import MB, SpiffiConfig
    from repro.core.system import SpiffiSystem

    config = SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=24,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=150.0,
        seed=seed,
    )
    system = SpiffiSystem(config)
    system.run()
    return system.env


SCENARIOS = {
    "timer_storm": timer_storm,
    "resource_contention": resource_contention,
    "spiffi_small": spiffi_small,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def measure(name: str, repeat: int = 3) -> dict:
    """Best-of-*repeat* measurement of one scenario.

    Best (not mean) wall time is the standard microbenchmark estimator:
    noise on a busy host only ever slows a run down.
    """
    scenario = SCENARIOS[name]
    best_wall = float("inf")
    events = 0
    for _ in range(repeat):
        started = time.perf_counter()
        env = scenario()
        wall = time.perf_counter() - started
        if wall < best_wall:
            best_wall = wall
            events = env.events_processed
    return {
        "events": events,
        "wall_s": round(best_wall, 6),
        "events_per_s": round(events / best_wall, 1) if best_wall > 0 else 0.0,
    }


def run_all(repeat: int = 3) -> dict:
    return {name: measure(name, repeat=repeat) for name in SCENARIOS}


def geometric_mean(ratios: list[float]) -> float:
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios)) if ratios else 0.0


def publish(results: dict, before: dict | None = None) -> dict:
    """The BENCH_kernel.json document for freshly measured *results*.

    With *before* (same shape as *results*), per-scenario and aggregate
    speedups are computed; otherwise the document carries only "after"
    numbers.  CI floors are a generous :data:`FLOOR_FRACTION` of the
    measured throughput.
    """
    scenarios = {}
    ratios = []
    for name, after in results.items():
        entry: dict = {"after": after}
        if before is not None and name in before:
            entry["before"] = before[name]
            ratio = after["events_per_s"] / before[name]["events_per_s"]
            entry["speedup"] = round(ratio, 3)
            ratios.append(ratio)
        entry["floor_events_per_s"] = round(after["events_per_s"] * FLOOR_FRACTION, 1)
        scenarios[name] = entry
    document = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenarios": scenarios,
    }
    if ratios:
        document["aggregate_speedup"] = round(geometric_mean(ratios), 3)
    return document


def check(baseline_path: str, repeat: int = 3) -> int:
    """CI perf smoke: fail if any scenario drops below its floor."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch: {baseline.get('schema')!r} != {SCHEMA!r}")
        return 1
    failures = 0
    for name, entry in baseline["scenarios"].items():
        if name not in SCENARIOS:
            print(f"SKIP {name}: unknown scenario in baseline")
            continue
        floor = entry["floor_events_per_s"]
        got = measure(name, repeat=repeat)
        ok = got["events_per_s"] >= floor
        print(
            f"{'ok  ' if ok else 'FAIL'} {name}: "
            f"{got['events_per_s']:>12,.0f} events/s (floor {floor:,.0f})"
        )
        if not ok:
            failures += 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N repeats")
    parser.add_argument("--json", metavar="PATH", help="write raw scenario results as JSON")
    parser.add_argument(
        "--before", metavar="PATH", help="raw results of the pre-optimization kernel"
    )
    parser.add_argument(
        "--publish", metavar="PATH", help="write the BENCH_kernel.json document"
    )
    parser.add_argument(
        "--check", metavar="PATH", help="perf-smoke: verify against a published baseline"
    )
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), help="measure a single scenario"
    )
    args = parser.parse_args(argv)

    if args.check:
        return check(args.check, repeat=args.repeat)

    if args.scenario:
        results = {args.scenario: measure(args.scenario, repeat=args.repeat)}
    else:
        results = run_all(repeat=args.repeat)
    for name, row in results.items():
        print(
            f"{name:>20}: {row['events']:>10,} events in {row['wall_s']:.3f}s "
            f"= {row['events_per_s']:>12,.0f} events/s"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.publish:
        before = None
        if args.before:
            with open(args.before, encoding="utf-8") as handle:
                before = json.load(handle)
        document = publish(results, before=before)
        with open(args.publish, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if "aggregate_speedup" in document:
            print(f"aggregate speedup: {document['aggregate_speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
