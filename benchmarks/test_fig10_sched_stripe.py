"""Figure 10: disk scheduling algorithms across stripe sizes."""

from repro.experiments.figures import fig10_sched_stripe
from repro.experiments.report import publish


def test_fig10_sched_stripe(benchmark):
    result = benchmark.pedantic(fig10_sched_stripe, rounds=1, iterations=1)
    publish(result.name, result.table())
    # Paper shape: round-robin never beats elevator where seeks matter
    # (at 1024 KB stripes everything converges — two terminal slots —
    # so that row is excluded).
    for row_index in range(len(result.rows)):
        if result.cell(row_index, "stripe KB") >= 1024:
            continue
        elevator = result.cell(row_index, "elevator")
        round_robin = result.cell(row_index, "round-robin")
        assert round_robin <= elevator
    # The best configuration in the paper is 512 KB stripes.
    stripes = result.column("stripe KB")
    best_by_stripe = [
        max(row[1:]) for row in result.rows
    ]
    assert best_by_stripe[stripes.index(512)] == max(best_by_stripe)
