"""Table 3: disk cost per terminal for three 64-video servers."""

from repro.experiments.report import publish
from repro.experiments.tables import table3_disk_cost


def test_table3_cost(benchmark):
    result = benchmark.pedantic(table3_disk_cost, rounds=1, iterations=1)
    publish(result.name, result.table())
    terminals = result.column("terminals")
    costs = [
        float(value.replace("$", "").replace(",", ""))
        for value in result.column("cost/terminal")
    ]
    # Paper shape: more, smaller disks support more terminals at lower
    # cost per terminal even though their cost per Mbyte is higher.
    assert terminals == sorted(terminals)
    assert costs[-1] < costs[0]
