"""Ablation: the drive's sequential read-ahead cache on vs off.

SPIFFI lays fragments out contiguously, so back-to-back reads of one
stream on one disk hit a read-ahead context and skip the seek and
rotational latency.  Disabling the 8-context cache shows how much of
the server's capacity that mechanical saving buys.
"""

import dataclasses

from repro.core.system import run_simulation
from repro.experiments.presets import elevator_bundle, paper_config
from repro.experiments.report import format_table, publish


def run_ablation():
    rows = []
    load = 220
    for label, contexts in (("8 contexts (Table 1)", 8), ("cache disabled", 0)):
        base = paper_config(terminals=load, **elevator_bundle())
        drive = dataclasses.replace(base.drive, cache_contexts=contexts)
        metrics = run_simulation(base.replace(drive=drive))
        rows.append(
            (
                label,
                metrics.glitches,
                round(metrics.mean_response_time_s * 1000, 1),
                round(metrics.disk_utilization_mean, 2),
            )
        )
    return rows


def test_ablation_diskcache(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    publish(
        "ablation_diskcache",
        format_table(
            ("drive cache", "glitches", "mean resp ms", "disk util"),
            rows,
            title="Ablation: drive read-ahead cache (220 terminals, elevator)",
        ),
    )
    with_cache, without = rows
    # Removing the cache costs mechanical time on every read: response
    # time and/or glitches must not improve (with slack for single-
    # glitch noise near the knee).
    assert without[1] >= with_cache[1] - 2
    assert without[3] >= with_cache[3] - 0.02
