"""Ablation: exponentially distributed vs constant MPEG frame sizes.

The paper simulates exponentially distributed frame sizes because "an
analysis of several MPEG videos showed that frame sizes typically are
exponentially distributed".  This ablation quantifies what the
variability changes — and the answer is not the naive one: constant
sizes make every video byte-identical, which locks concurrent streams
into the same deadline cadence and convoys their disk requests, while
exponential sizes decorrelate the streams.  Modelling the variability
matters, just not in the direction one might guess.
"""

from repro.core.system import run_simulation
from repro.experiments.presets import bench_scale, elevator_bundle, paper_config
from repro.experiments.report import format_table, publish


def run_ablation():
    scale = bench_scale()
    rows = []
    load = 220
    for label, deterministic in (("exponential sizes", False), ("constant sizes", True)):
        config = paper_config(
            terminals=load,
            mpeg_deterministic_sizes=deterministic,
            **elevator_bundle(),
        )
        metrics = run_simulation(config)
        rows.append(
            (
                label,
                metrics.glitches,
                round(metrics.mean_response_time_s * 1000, 1),
                round(metrics.max_response_time_s * 1000, 1),
                round(metrics.disk_utilization_mean, 2),
            )
        )
    return rows


def test_ablation_playback(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    publish(
        "ablation_playback",
        format_table(
            ("frame sizes", "glitches", "mean resp ms", "max resp ms", "disk util"),
            rows,
            title="Ablation: MPEG frame-size variability (220 terminals, elevator)",
        ),
    )
    exponential, constant = rows
    # Both regimes drive the disks to the same utilization; the
    # difference is stream correlation, not throughput.
    assert abs(constant[4] - exponential[4]) <= 0.05
