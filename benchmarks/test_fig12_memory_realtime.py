"""Figure 12: server memory requirements under real-time scheduling."""

from repro.experiments.figures import fig12_memory_realtime
from repro.experiments.report import publish


def test_fig12_memory_realtime(benchmark):
    result = benchmark.pedantic(fig12_memory_realtime, rounds=1, iterations=1)
    publish(result.name, result.table())
    lru = result.column("global LRU")
    love = result.column("love prefetch")
    delayed8 = result.column("love + delayed 8s")
    # Paper shape: with aggressive real-time prefetching, global LRU is
    # the worst policy at reduced memory; love+delayed(8s) holds up at
    # small memory.
    assert lru[0] <= love[0]
    assert lru[0] <= delayed8[0]
    assert delayed8[1] >= 0.8 * delayed8[-1]
