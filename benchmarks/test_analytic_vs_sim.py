"""The paper's §4 argument, quantified: analytical capacity bounds vs
the simulator's measured maximum.

"Often analytical studies make worst case assumptions ... thus, such a
system may be over-designed or pessimistic and may not achieve the
maximum possible utilization of the hardware."
"""

from repro.analytic import StreamParameters, estimate_capacity
from repro.experiments.presets import HINTS, bench_scale, elevator_bundle, paper_config
from repro.experiments.report import format_table, publish
from repro.experiments.search import find_max_terminals

GB = 1024 ** 3


def run_comparison():
    config = paper_config(**elevator_bundle())
    scale = bench_scale()
    estimates = estimate_capacity(
        config.drive,
        StreamParameters(config.video_bit_rate_bps, config.stripe_bytes),
        config.disk_count,
        5 * GB,
    )
    simulated = find_max_terminals(
        config,
        hint=HINTS["elevator_512k_bigmem"],
        granularity=scale.granularity,
    ).max_terminals
    rows = [(label, value) for label, value in estimates.as_rows()]
    rows.append(("simulated (this work)", simulated))
    return rows, estimates, simulated


def test_analytic_vs_sim(benchmark):
    rows, estimates, simulated = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    publish(
        "analytic_vs_sim",
        format_table(
            ("design method", "max terminals"),
            rows,
            title="Analytical capacity bounds vs simulation "
            "(16 disks, elevator, 4GB)",
        ),
    )
    # The paper's claim: worst-case analytical design leaves capacity
    # on the table relative to what simulation shows is achievable.
    assert estimates.worst_case < simulated
    # And simulation cannot beat the pure transfer limit.
    assert simulated <= estimates.transfer_limit * 1.05
