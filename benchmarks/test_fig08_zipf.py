"""Figure 8: the Zipfian access-frequency distribution (analytic)."""

from repro.experiments.figures import fig08_zipf
from repro.experiments.report import publish


def test_fig08_zipf(benchmark):
    result = benchmark.pedantic(fig08_zipf, rounds=1, iterations=1)
    publish(result.name, result.table())
    z10 = result.column("z=1.0")
    z15 = result.column("z=1.5")
    uniform = result.column("uniform")
    # Paper shape: skewed curves start high and fall with rank; the
    # steeper z concentrates more mass on rank 1.
    assert z10[0] > z10[-1]
    assert z15[0] > z10[0] > uniform[0]
