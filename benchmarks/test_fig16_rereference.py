"""Figure 16: % of buffer references previously referenced by another
terminal, vs memory and access skew."""

from repro.experiments.figures import fig16_rereference_rate
from repro.experiments.report import publish


def test_fig16_rereference(benchmark):
    result = benchmark.pedantic(fig16_rereference_rate, rounds=1, iterations=1)
    publish(result.name, result.table())
    # Paper shape: more skew → more cross-terminal re-references, and
    # the effect grows with memory.
    last = len(result.rows) - 1
    assert result.cell(last, "zipf z=1.5") > result.cell(last, "uniform")
    assert result.cell(last, "zipf z=1.0") >= result.cell(0, "zipf z=1.0")
