"""§8.1: server load of the two visual-search schemes.

"Since the skipped video segments need not be read, this scheme will
not significantly increase the load on the video server."  We run a
population of terminals where a fraction is continuously searching and
compare aggregate disk load against everyone watching normally.
"""

from repro import MB, SpiffiConfig
from repro.core.metrics import collect_metrics
from repro.core.system import SpiffiSystem
from repro.experiments.report import format_table, publish
from repro.terminal import SkimParameters, skim_search


def run_search_load(searching_terminals):
    config = SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=24,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=128 * MB,
        start_spread_s=2.0,
        warmup_grace_s=8.0,
        measure_s=45.0,
        seed=17,
    )
    system = SpiffiSystem(config)
    env = system.env

    def searcher(env, terminal):
        """Hold fast-forward, skimming, for the whole run."""
        yield env.timeout(config.warmup_s * 0.5)
        video = system.library[0]
        session = env.process(terminal.play(0, start_frame=1))
        yield env.timeout(1.0)
        while True:
            if terminal._next_frame >= video.frame_count - 200:
                terminal.seek(1)
                yield from terminal._wait_primed()
                terminal._anchor = env.now - terminal._next_frame / video.fps
            yield from skim_search(
                terminal, +1, 10.0, SkimParameters(show_s=1.0, skip_s=8.0)
            )

    # The first N terminals search instead of watching normally.
    for terminal in system.terminals[:searching_terminals]:
        env.process(searcher(env, terminal))
    for terminal in system.terminals[searching_terminals:]:
        terminal.start(system._rng.spawn(f"start-{terminal.terminal_id}").uniform(
            0.0, config.start_spread_s
        ))
    system._started = True
    env.run(until=config.warmup_s)
    system.reset_stats()
    env.run(until=config.warmup_s + config.measure_s)
    return collect_metrics(system, config.measure_s)


def test_sec81_visual_search(benchmark):
    def compare():
        normal = run_search_load(searching_terminals=0)
        searching = run_search_load(searching_terminals=6)
        return normal, searching

    normal, searching = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        ("all watching", round(normal.disk_utilization_mean, 3),
         normal.blocks_delivered),
        ("6 of 24 skim-searching", round(searching.disk_utilization_mean, 3),
         searching.blocks_delivered),
    ]
    publish(
        "sec81_visual_search",
        format_table(
            ("population", "disk util", "blocks delivered"),
            rows,
            title="Section 8.1: skim search does not significantly "
            "increase server load",
        ),
    )
    # Paper claim: no significant extra load (skipped segments unread).
    assert searching.disk_utilization_mean < normal.disk_utilization_mean + 0.15
