"""Ensure the in-tree package is importable even without installation.

``pip install -e .`` needs the ``wheel`` package for PEP 660 editable
installs, which is unavailable in offline environments; this fallback
makes ``pytest`` work straight from a checkout either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
