"""Ensure the in-tree package is importable even without installation,
and put a global wall-clock timeout on every test.

``pip install -e .`` needs the ``wheel`` package for PEP 660 editable
installs, which is unavailable in offline environments; this fallback
makes ``pytest`` work straight from a checkout either way.

The timeout (``REPRO_TEST_TIMEOUT_S`` seconds per test, default 300;
0 disables) turns a hung simulation — an event loop that stops making
progress — into a failing test instead of a CI job that idles until
the runner is killed.  It is implemented with ``SIGALRM`` so it needs
no third-party plugin; on platforms without ``SIGALRM`` it is a no-op.
"""

import os
import signal
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

TEST_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT_S", "300"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if TEST_TIMEOUT_S <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT_S={TEST_TIMEOUT_S}s "
            f"(hung simulation?): {item.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
