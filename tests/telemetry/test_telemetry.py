"""Tests for tracing and sampling."""

import pytest

from repro.sim import Environment
from repro.telemetry import PeriodicSampler, TraceRecorder, standard_probes


class TestTraceRecorder:
    def test_records_with_time(self):
        env = Environment()
        trace = TraceRecorder(env)

        def proc(env):
            trace.record("io", disk=3)
            yield env.timeout(5)
            trace.record("glitch", terminal=7)

        env.process(proc(env))
        env.run()
        events = trace.events()
        assert [(e.time, e.kind) for e in events] == [(0.0, "io"), (5.0, "glitch")]
        assert events[1].fields == {"terminal": 7}

    def test_kind_filtering(self):
        env = Environment()
        trace = TraceRecorder(env, kinds={"glitch"})
        trace.record("io", disk=1)
        trace.record("glitch")
        assert len(trace) == 1
        assert trace.summary() == {"glitch": 1}

    def test_bounded_capacity_drops_oldest(self):
        env = Environment()
        trace = TraceRecorder(env, capacity=3)
        for i in range(5):
            trace.record("tick", i=i)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.fields["i"] for e in trace.events()] == [2, 3, 4]
        assert trace.counts["tick"] == 5  # counts are exact

    def test_between(self):
        env = Environment()
        trace = TraceRecorder(env)

        def proc(env):
            for _ in range(5):
                trace.record("tick")
                yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert len(trace.between(1.0, 3.0)) == 2

    def test_events_by_kind(self):
        env = Environment()
        trace = TraceRecorder(env)
        trace.record("a")
        trace.record("b")
        trace.record("a")
        assert len(trace.events("a")) == 2

    def test_clear(self):
        env = Environment()
        trace = TraceRecorder(env)
        trace.record("x")
        trace.clear()
        assert len(trace) == 0
        assert trace.summary() == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(Environment(), capacity=0)


class TestPeriodicSampler:
    def test_samples_on_interval(self):
        env = Environment()
        state = {"v": 0.0}

        def bump(env):
            for _ in range(10):
                yield env.timeout(1.0)
                state["v"] += 1.0

        env.process(bump(env))
        sampler = PeriodicSampler(env, 2.0, {"v": lambda: state["v"]})
        env.run(until=9.0)
        series = sampler.series("v")
        assert [t for t, _ in series] == [0.0, 2.0, 4.0, 6.0, 8.0]
        # At t=8 the sampler's event was scheduled before the bumper's,
        # so it observes the pre-bump value — deterministic tie-break.
        assert series[-1][1] == 7.0

    def test_latest(self):
        env = Environment()
        sampler = PeriodicSampler(env, 1.0, {"x": lambda: 42.0})
        env.run(until=0.5)
        assert sampler.latest() == {"x": 42.0}

    def test_csv_export(self):
        env = Environment()
        sampler = PeriodicSampler(env, 1.0, {"x": lambda: 1.5, "y": lambda: 2.0})
        env.run(until=2.5)
        csv = sampler.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "time,x,y"
        assert lines[1] == "0,1.5,2"
        assert len(lines) == 4

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            PeriodicSampler(env, 0.0, {"x": lambda: 1})
        with pytest.raises(ValueError):
            PeriodicSampler(env, 1.0, {})


class TestStandardProbes:
    def test_probes_on_live_system(self):
        from repro import MB, SpiffiConfig
        from repro.core.system import SpiffiSystem

        system = SpiffiSystem(SpiffiConfig(
            nodes=1, disks_per_node=2, terminals=6, videos_per_disk=2,
            video_length_s=60.0, server_memory_bytes=64 * MB,
            start_spread_s=1.0, warmup_grace_s=1.0, measure_s=10.0,
        ))
        sampler = PeriodicSampler(system.env, 2.0, standard_probes(system))
        system.start()
        system.env.run(until=12.0)
        latest = sampler.latest()
        assert set(latest) == {"disk_queue", "pool_occupancy",
                               "prefetched_fraction", "glitches",
                               "admission_queue"}
        assert 0.0 <= latest["pool_occupancy"] <= 1.0
        assert latest["glitches"] == 0.0
        assert len(sampler.rows) == 7
