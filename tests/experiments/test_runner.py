"""Tests for the parallel experiment engine: executors, determinism,
picklability, serialization, and the on-disk run cache.

The serial-vs-process comparisons run *real* (tiny) simulations —
stubbing the simulator would bypass exactly the pickling and
cross-process determinism this file exists to verify.
"""

import pickle
import random

import pytest

import repro.experiments.runner as runner_module
from repro.bufferpool.registry import ReplacementSpec
from repro.core.config import MB, SpiffiConfig
from repro.core.metrics import RunMetrics
from repro.experiments.results import (
    ExperimentResult,
    RunCache,
    config_digest,
    config_to_dict,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.faults import FaultSpec
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunRequest,
    SerialExecutor,
    default_runner,
    run_grid,
    search_grid,
    set_default_runner,
    using_runner,
)


def tiny_config(**overrides):
    """A real config small enough for sub-second simulation runs."""
    defaults = dict(
        terminals=4,
        measure_s=3.0,
        start_spread_s=1.0,
        warmup_grace_s=1.0,
        videos_per_disk=1,
        video_length_s=40.0,
        server_memory_bytes=256 * MB,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


def example_metrics(**overrides):
    values = dict(
        terminals=10,
        measure_s=5.0,
        glitches=2,
        glitching_terminals=1,
        mean_glitch_duration_s=0.5,
        disk_utilization_mean=0.8,
        disk_utilization_min=0.5,
        disk_utilization_max=0.9,
        cpu_utilization_mean=0.2,
        network_peak_bytes_per_s=1e6,
        network_mean_bytes_per_s=5e5,
        buffer_references=100,
        buffer_hit_rate=0.9,
        buffer_inflight_hit_rate=0.05,
        rereference_rate=0.3,
        wasted_prefetches=1,
        dropped_prefetches=0,
        allocation_waits=2,
        prefetches_issued=50,
        prefetches_completed=49,
        mean_response_time_s=0.01,
        max_response_time_s=0.2,
        deadline_misses=0,
        blocks_delivered=500,
        mean_startup_latency_s=0.1,
        videos_completed=3,
        pauses_taken=0,
        admissions_queued=0,
        admission_mean_wait_s=0.0,
        wall_time_s=1.25,
        events_processed=4321,
    )
    values.update(overrides)
    return RunMetrics(**values)


class TestPicklability:
    def test_config_round_trips_through_pickle(self):
        config = tiny_config(
            replacement_policy=ReplacementSpec("love_prefetch"),
            access_model="zipf",
            zipf_skew=1.5,
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.scheduler == config.scheduler
        assert clone.prefetch == config.prefetch

    def test_metrics_round_trip_through_pickle(self):
        metrics = example_metrics()
        assert pickle.loads(pickle.dumps(metrics)) == metrics

    def test_run_request_round_trips_through_pickle(self):
        request = RunRequest(tiny_config(), tag="demo")
        assert pickle.loads(pickle.dumps(request)) == request


class TestDeterminism:
    """Identical metrics for any executor, job count, or order."""

    def grid(self):
        return [
            tiny_config(terminals=terminals, seed=seed)
            for terminals in (2, 4)
            for seed in (1, 2)
        ]

    def test_serial_vs_process_identical(self):
        configs = self.grid()
        requests = [RunRequest(config) for config in configs]
        serial = Runner(SerialExecutor()).run_batch(requests)
        with ProcessExecutor(jobs=2) as executor:
            parallel = Runner(executor).run_batch(requests)
        for a, b in zip(serial, parallel):
            assert a.metrics.deterministic_dict() == b.metrics.deterministic_dict()

    def test_shuffled_submission_order_identical(self):
        configs = self.grid()
        order = list(range(len(configs)))
        random.Random(7).shuffle(order)
        runner = Runner(SerialExecutor())
        straight = runner.run_batch([RunRequest(c) for c in configs])
        shuffled = runner.run_batch([RunRequest(configs[i]) for i in order])
        for index, outcome in zip(order, shuffled):
            assert (
                outcome.metrics.deterministic_dict()
                == straight[index].metrics.deterministic_dict()
            )

    def test_outcomes_keep_request_order_and_tags(self):
        requests = [
            RunRequest(tiny_config(terminals=t), tag=f"t{t}") for t in (2, 3, 4)
        ]
        outcomes = Runner(SerialExecutor()).run_batch(requests)
        assert [o.tag for o in outcomes] == ["t2", "t3", "t4"]
        assert [o.metrics.terminals for o in outcomes] == [2, 3, 4]


class TestRunCache:
    def patch_counting_sim(self, monkeypatch):
        calls = []

        def fake_run(config):
            calls.append(config)
            return example_metrics(
                terminals=config.terminals, glitches=0, wall_time_s=0.5
            )

        monkeypatch.setattr(runner_module, "run", fake_run)
        return calls

    def test_second_batch_is_all_cache_hits(self, tmp_path, monkeypatch):
        calls = self.patch_counting_sim(monkeypatch)
        requests = [RunRequest(tiny_config(terminals=t)) for t in (2, 3)]
        cache = RunCache(str(tmp_path / "cache"))
        runner = Runner(SerialExecutor(), cache=cache)
        first = runner.run_batch(requests)
        assert len(calls) == 2
        assert all(not outcome.cached for outcome in first)
        second = runner.run_batch(requests)
        assert len(calls) == 2  # nothing re-simulated
        assert all(outcome.cached for outcome in second)
        for a, b in zip(first, second):
            assert a.metrics == b.metrics

    def test_no_cache_forces_recompute(self, tmp_path, monkeypatch):
        calls = self.patch_counting_sim(monkeypatch)
        requests = [RunRequest(tiny_config(terminals=2))]
        cache = RunCache(str(tmp_path / "cache"))
        Runner(SerialExecutor(), cache=cache).run_batch(requests)
        Runner(SerialExecutor(), cache=None).run_batch(requests)
        assert len(calls) == 2

    def test_changed_config_misses(self, tmp_path, monkeypatch):
        calls = self.patch_counting_sim(monkeypatch)
        cache = RunCache(str(tmp_path / "cache"))
        runner = Runner(SerialExecutor(), cache=cache)
        runner.run_batch([RunRequest(tiny_config(terminals=2, seed=1))])
        runner.run_batch([RunRequest(tiny_config(terminals=2, seed=2))])
        assert len(calls) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path, monkeypatch):
        calls = self.patch_counting_sim(monkeypatch)
        cache = RunCache(str(tmp_path / "cache"))
        runner = Runner(SerialExecutor(), cache=cache)
        config = tiny_config(terminals=2)
        path = cache.store(config, example_metrics())
        with open(path, "w") as handle:
            handle.write("not json")
        outcome = runner.run(RunRequest(config))
        assert not outcome.cached
        assert len(calls) == 1

    def test_progress_reports_cache_state(self, tmp_path, monkeypatch):
        self.patch_counting_sim(monkeypatch)
        seen = []
        cache = RunCache(str(tmp_path / "cache"))
        runner = Runner(
            SerialExecutor(), cache=cache, progress=lambda o: seen.append(o.cached)
        )
        request = RunRequest(tiny_config(terminals=2))
        runner.run(request)
        runner.run(request)
        assert seen == [False, True]


class TestConfigDigest:
    def test_stable_for_equal_configs(self):
        assert config_digest(tiny_config()) == config_digest(tiny_config())

    def test_any_field_changes_digest(self):
        base = config_digest(tiny_config())
        assert config_digest(tiny_config(seed=9)) != base
        assert config_digest(tiny_config(zipf_skew=1.2)) != base

    def test_nested_spec_changes_digest(self):
        from repro.sched.registry import SchedulerSpec

        base = config_digest(tiny_config())
        other = config_digest(
            tiny_config(scheduler=SchedulerSpec("gss", gss_groups=2))
        )
        assert other != base


class TestFaultSpecCaching:
    """FaultSpec participates in run identity without disturbing it.

    A default (empty) spec must hash exactly like a config from before
    the field existed — cache entries stay valid — while any non-empty
    spec must produce a distinct digest.
    """

    def test_empty_faults_dropped_from_canonical_dict(self):
        data = config_to_dict(tiny_config())
        assert "faults" not in data

    def test_nonempty_faults_serialized(self):
        config = tiny_config(faults=FaultSpec(disk_fault_rate_per_hour=6.0))
        data = config_to_dict(config)
        assert data["faults"]["disk_fault_rate_per_hour"] == 6.0

    def test_fault_spec_changes_digest(self):
        base = config_digest(tiny_config())
        faulty = config_digest(
            tiny_config(faults=FaultSpec(disk_fault_rate_per_hour=6.0))
        )
        assert faulty != base
        # Degraded-mode knobs are part of run identity too.
        tweaked = config_digest(
            tiny_config(
                faults=FaultSpec(disk_fault_rate_per_hour=6.0, max_retries=5)
            )
        )
        assert tweaked not in (base, faulty)

    def test_explicit_default_spec_matches_omitted(self):
        assert config_digest(tiny_config(faults=FaultSpec())) == config_digest(
            tiny_config()
        )

    def test_cache_round_trips_fault_metrics(self, tmp_path):
        config = tiny_config(faults=FaultSpec(disk_fault_rate_per_hour=6.0))
        metrics = example_metrics(
            fault_glitches=2,
            fault_events_injected=3,
            fault_retries=7,
            fault_abandoned_reads=1,
            fault_failed_reads=4,
        )
        cache = RunCache(str(tmp_path / "cache"))
        cache.store(config, metrics)
        loaded = cache.load(config)
        assert loaded == metrics
        assert loaded.fault_retries == 7
        # The clean config does not see the faulty entry.
        assert cache.load(tiny_config()) is None

    def test_fault_config_round_trips_through_pickle(self):
        config = tiny_config(
            faults=FaultSpec(disk_fault_rate_per_hour=6.0, fail_weight=0.5)
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.faults == config.faults


class TestSerialization:
    def test_metrics_dict_round_trip(self):
        metrics = example_metrics()
        assert metrics_from_dict(metrics_to_dict(metrics)) == metrics

    def test_experiment_result_json_round_trip(self):
        result = ExperimentResult(
            name="demo",
            title="A demo",
            headers=("k", "v"),
            rows=((1, "a"), (2.5, "b")),
            notes="note",
        )
        clone = ExperimentResult.from_json(result.to_json())
        assert clone == result
        assert clone.table() == result.table()


class TestGridHelpers:
    def test_run_grid_orders_by_cell(self, monkeypatch):
        def fake_run(config):
            return example_metrics(terminals=config.terminals)

        monkeypatch.setattr(runner_module, "run", fake_run)
        metrics = run_grid([
            ("a", tiny_config(terminals=3)),
            ("b", tiny_config(terminals=5)),
        ])
        assert [m.terminals for m in metrics] == [3, 5]

    def test_search_grid_matches_individual_searches(self, monkeypatch):
        from repro.experiments.runner import SearchCell
        from repro.experiments.search import find_max_terminals

        def fake_run(config):
            capacity = 200 if config.zipf_skew == 1.0 else 120
            glitches = 0 if config.terminals <= capacity else 3
            return example_metrics(terminals=config.terminals, glitches=glitches)

        monkeypatch.setattr(runner_module, "run", fake_run)
        cells = [
            SearchCell("z1", tiny_config(), hint=150, granularity=10),
            SearchCell("z2", tiny_config(zipf_skew=1.5), hint=150, granularity=10),
        ]
        results = search_grid(cells)
        assert [r.max_terminals for r in results] == [200, 120]
        solo = find_max_terminals(tiny_config(), hint=150, granularity=10)
        assert solo.max_terminals == results[0].max_terminals
        assert [
            (p.terminals, p.seed) for p in solo.probes
        ] == [(p.terminals, p.seed) for p in results[0].probes]


class TestDefaultRunner:
    def test_fallback_is_serial_and_uncached(self):
        runner = default_runner()
        assert isinstance(runner.executor, SerialExecutor)
        assert runner.cache is None

    def test_using_runner_installs_and_restores(self):
        special = Runner(SerialExecutor())
        before = default_runner()
        with using_runner(special):
            assert default_runner() is special
        assert default_runner() is before

    def test_set_default_runner_cleared_with_none(self):
        special = Runner(SerialExecutor())
        set_default_runner(special)
        try:
            assert default_runner() is special
        finally:
            set_default_runner(None)
        assert default_runner() is not special


class TestProcessExecutor:
    def test_rejects_bad_job_count(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)

    def test_parallel_search_identical_to_serial(self):
        """A real (tiny) search: same result and probe sequence under a
        process pool as in-process."""
        from repro.experiments.search import find_max_terminals

        config = tiny_config()
        serial = find_max_terminals(
            config, hint=4, granularity=2, low=2, high=8,
            runner=Runner(SerialExecutor()),
        )
        with ProcessExecutor(jobs=2) as executor:
            parallel = find_max_terminals(
                config, hint=4, granularity=2, low=2, high=8,
                runner=Runner(executor),
            )
        assert parallel.max_terminals == serial.max_terminals
        assert [
            (p.terminals, p.seed, p.metrics.deterministic_dict())
            for p in parallel.probes
        ] == [
            (p.terminals, p.seed, p.metrics.deterministic_dict())
            for p in serial.probes
        ]
