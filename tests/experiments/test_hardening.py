"""Failure containment in the experiment engine.

One crashed, hung, or poisoned run must never sink its batch: it is
retried once and then surfaced as an error :class:`RunOutcome`, and the
sweep drivers report the casualties only after the survivors finish.
"""

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.results import RunCache
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunRequest,
    SerialExecutor,
    run_grid,
)
from repro.experiments.search import find_max_terminals

from tests.experiments.test_runner import example_metrics, tiny_config

#: A request whose "config" explodes inside any worker: the frozen
#: dataclass is only validated at construction, so a bogus payload
#: rides through pickling and crashes the runnable dispatch.
POISON = RunRequest(config="not a config", tag="poison")


class TestSerialExecutorContainment:
    def test_crash_becomes_error_outcome(self):
        outcome = SerialExecutor().run_batch([POISON])[0]
        assert outcome.failed
        assert outcome.metrics is None
        assert outcome.tag == "poison"
        assert "TypeError" in outcome.error

    def test_crash_keeps_siblings(self):
        outcomes = SerialExecutor().run_batch(
            [RunRequest(tiny_config(), tag="good"), POISON]
        )
        assert not outcomes[0].failed
        assert outcomes[0].metrics.terminals == 4
        assert outcomes[1].failed

    def test_flaky_run_succeeds_on_the_single_retry(self, monkeypatch):
        attempts = []

        def flaky(config):
            attempts.append(config)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return example_metrics()

        monkeypatch.setattr(runner_module, "run", flaky)
        outcome = SerialExecutor().run_batch([RunRequest(tiny_config())])[0]
        assert not outcome.failed
        assert len(attempts) == 2

    def test_persistent_failure_stops_after_one_retry(self, monkeypatch):
        attempts = []

        def broken(config):
            attempts.append(config)
            raise RuntimeError("still broken")

        monkeypatch.setattr(runner_module, "run", broken)
        outcome = SerialExecutor().run_batch([RunRequest(tiny_config())])[0]
        assert outcome.failed
        assert "still broken" in outcome.error
        assert len(attempts) == 2


class TestProcessExecutorContainment:
    def test_worker_crash_becomes_error_outcome(self):
        with ProcessExecutor(jobs=2) as executor:
            outcomes = executor.run_batch(
                [RunRequest(tiny_config(), tag="good"), POISON]
            )
        assert not outcomes[0].failed
        assert outcomes[1].failed
        assert outcomes[1].metrics is None

    def test_watchdog_expiry_becomes_error_outcome(self):
        """A run that cannot finish inside ``max_wall_s`` is killed off
        (pool recycled) and reported, not waited on forever."""
        request = RunRequest(tiny_config(), tag="hung", max_wall_s=0.001)
        with ProcessExecutor(jobs=1) as executor:
            outcome = executor.run_batch([request])[0]
        assert outcome.failed
        assert "max_wall_s" in outcome.error

    def test_pool_survives_the_watchdog_for_later_requests(self):
        with ProcessExecutor(jobs=1) as executor:
            hung = executor.run_batch(
                [RunRequest(tiny_config(), max_wall_s=0.001)]
            )[0]
            healthy = executor.run_batch([RunRequest(tiny_config())])[0]
        assert hung.failed
        assert not healthy.failed
        assert healthy.metrics.terminals == 4


class TestRunnerAndDrivers:
    def test_error_outcomes_are_never_cached(self, tmp_path, monkeypatch):
        def broken(config):
            raise RuntimeError("doomed")

        monkeypatch.setattr(runner_module, "run", broken)
        config = tiny_config()
        cache = RunCache(str(tmp_path / "cache"))
        runner = Runner(SerialExecutor(), cache=cache)
        outcome = runner.run(RunRequest(config))
        assert outcome.failed
        assert cache.load(config) is None  # nothing stored
        # Rerunning the config actually reruns it — no replayed failure.
        assert runner.run(RunRequest(config)).cached is False

    def test_run_grid_raises_after_finishing_the_batch(self):
        with pytest.raises(RuntimeError, match="poison"):
            run_grid(
                [("good", tiny_config()), ("poison", "not a config")],
                runner=Runner(SerialExecutor()),
            )

    def test_search_surfaces_probe_errors(self, monkeypatch):
        def broken(config):
            raise RuntimeError("probe exploded")

        monkeypatch.setattr(runner_module, "run", broken)
        with pytest.raises(RuntimeError, match="probe exploded"):
            find_max_terminals(
                tiny_config(), hint=4, granularity=2, low=2, high=8,
                runner=Runner(SerialExecutor()),
            )
