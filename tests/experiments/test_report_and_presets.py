"""Tests for report formatting, presets, and experiment plumbing."""

import pytest

from repro.experiments import (
    ExperimentResult,
    bench_scale,
    elevator_bundle,
    format_table,
    paper_config,
    realtime_bundle,
)
from repro.experiments.figures import fig08_zipf


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ("name", "value"),
            (("alpha", 1), ("b", 22)),
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        assert lines[4].startswith("alpha")
        # Columns align: 'value' column starts at the same offset.
        assert lines[4].index("1") == lines[5].index("2")

    def test_no_title(self):
        text = format_table(("x",), ((1,),))
        assert text.splitlines()[0].startswith("x")


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            name="demo",
            title="A demo",
            headers=("k", "v"),
            rows=((1, "a"), (2, "b")),
            notes="note",
        )

    def test_table_includes_notes(self):
        assert "note" in self.make().table()

    def test_column_lookup(self):
        assert self.make().column("v") == ["a", "b"]

    def test_cell_lookup(self):
        assert self.make().cell(1, "k") == 2


class TestPresets:
    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert bench_scale().name == "quick"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale().granularity == 5

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "warp")
        with pytest.raises(ValueError):
            bench_scale()

    def test_paper_config_matches_table1(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        config = paper_config()
        assert config.disk_count == 16
        assert config.video_count == 64
        assert config.video_length_s == 3600.0

    def test_elevator_bundle_limited_prefetch(self):
        bundle = elevator_bundle()
        assert bundle["scheduler"].name == "elevator"
        assert bundle["prefetch"].pool_share < 1.0
        assert bundle["prefetch"].depth == 1

    def test_realtime_bundle_aggressive_prefetch(self):
        bundle = realtime_bundle()
        assert bundle["scheduler"].name == "realtime"
        assert bundle["prefetch"].mode == "realtime"
        assert bundle["prefetch"].pool_share == 1.0
        assert bundle["prefetch"].depth > 1

    def test_realtime_bundle_delayed_variant(self):
        bundle = realtime_bundle(prefetch_mode="delayed", max_advance_s=4.0)
        assert bundle["prefetch"].mode == "delayed"
        assert bundle["prefetch"].max_advance_s == 4.0


class TestFig08:
    def test_zipf_table_analytic(self):
        result = fig08_zipf(video_count=64)
        assert result.headers == ("rank", "uniform", "z=0.5", "z=1.0", "z=1.5")
        # Rank 1 of z=1.0 over 64 videos ≈ 0.21 (Figure 8's left edge).
        first = result.rows[0]
        assert first[result.headers.index("z=1.0")] == pytest.approx(0.21, abs=0.01)
        # Uniform is flat.
        uniform = result.column("uniform")
        assert all(value == uniform[0] for value in uniform)
