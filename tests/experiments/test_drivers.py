"""Tests for the figure/table drivers with a stubbed simulator.

These verify driver plumbing (headers, rows, config wiring) without
running real simulations; the benchmark suite runs them for real.
The stub replaces the runnable ``run`` dispatch underneath the runner,
so the real grid declaration, search planner, and executor plumbing
are all exercised.
"""


import pytest

import repro.experiments.figures as figures
import repro.experiments.runner as runner_module
import repro.experiments.tables as tables
from repro.core.metrics import RunMetrics


def fake_metrics(config, **overrides):
    terminals = config.terminals
    values = dict(
        terminals=terminals,
        measure_s=config.measure_s,
        glitches=0 if terminals <= 220 else terminals,
        glitching_terminals=0,
        mean_glitch_duration_s=0.0,
        disk_utilization_mean=min(0.99, terminals / 230),
        disk_utilization_min=0.1,
        disk_utilization_max=0.99,
        cpu_utilization_mean=min(0.4, terminals / 2000),
        network_peak_bytes_per_s=terminals * 5e5,
        network_mean_bytes_per_s=terminals * 5e5,
        buffer_references=1000,
        buffer_hit_rate=0.9,
        buffer_inflight_hit_rate=0.02,
        rereference_rate=0.1 + 0.1 * config.zipf_skew
        if config.access_model == "zipf"
        else 0.05,
        wasted_prefetches=0,
        dropped_prefetches=0,
        allocation_waits=0,
        prefetches_issued=500,
        prefetches_completed=500,
        mean_response_time_s=0.03,
        max_response_time_s=0.2,
        deadline_misses=0,
        blocks_delivered=terminals * 60,
        mean_startup_latency_s=0.2,
        videos_completed=1,
        pauses_taken=0,
        admissions_queued=0,
        admission_mean_wait_s=0.0,
    )
    values.update(overrides)
    return RunMetrics(**values)


def fake_capacity(config):
    # Capacity depends deterministically on a few config fields so
    # drivers produce stable, assertable tables.
    capacity = 220
    if config.layout.name == "nonstriped":
        capacity = 40 if config.access_model == "zipf" else 80
    capacity += 10 * (config.disk_count // 16 - 1) * 16
    return capacity


@pytest.fixture()
def stubbed(monkeypatch):
    """Stub the simulator underneath the experiment runner; searches
    run for real against the stub's capacity model."""

    def fake_run(config):
        glitches = 0 if config.terminals <= fake_capacity(config) else config.terminals
        return fake_metrics(config, glitches=glitches)

    monkeypatch.setattr(runner_module, "run", fake_run)
    monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
    return fake_run


class TestFigureDrivers:
    def test_fig09(self, stubbed):
        result = figures.fig09_glitch_curve()
        assert result.headers[0] == "terminals"
        assert len(result.rows) == 7

    def test_fig10(self, stubbed):
        result = figures.fig10_sched_stripe()
        assert "elevator" in result.headers
        assert len(result.rows) == 3  # quick scale stripe points

    def test_fig11(self, stubbed):
        result = figures.fig11_memory_elevator()
        assert result.headers == ("server MB", "global LRU", "love prefetch")
        assert [row[0] for row in result.rows] == [128, 512, 4096]

    def test_fig12(self, stubbed):
        result = figures.fig12_memory_realtime()
        assert len(result.headers) == 5
        assert "love + delayed 8s" in result.headers

    def test_fig13(self, stubbed):
        result = figures.fig13_striping()
        striped = result.column("striped/zipf")
        non = result.column("non-striped/zipf")
        assert all(s > n for s, n in zip(striped, non))

    def test_fig14(self, stubbed):
        result = figures.fig14_disk_utilization()
        assert len(result.rows) == 3

    def test_fig15(self, stubbed):
        result = figures.fig15_access_frequencies()
        assert "zipf z=1.5" in result.headers

    def test_fig16(self, stubbed):
        result = figures.fig16_rereference_rate(terminals=100)
        # Skewed columns show larger re-reference percentages.
        assert result.cell(0, "zipf z=1.5") > result.cell(0, "uniform")

    def test_fig17(self, stubbed):
        result = figures.fig17_cpu_utilization()
        assert result.column("disks") == [16, 32, 64]

    def test_fig18(self, stubbed):
        result = figures.fig18_network_bandwidth()
        peaks = result.column("peak MB/s")
        assert peaks == sorted(peaks)

    def test_fig19(self, stubbed):
        result = figures.fig19_pause()
        assert len(result.rows) == 2

    def test_sec82(self, stubbed):
        result = figures.sec82_piggyback()
        assert len(result.rows) == 2
        assert "no piggybacking" in result.rows[0][0]


class TestTableDrivers:
    def test_table2(self, stubbed):
        result = tables.table2_scaleup()
        assert len(result.rows) == 4
        for row in result.rows:
            assert row[1] == 16  # base disks
            assert row[3] == 32
            assert row[6] == 64

    def test_table2_ratios_parenthesised(self, stubbed):
        result = tables.table2_scaleup()
        assert result.rows[0][5].startswith("(")

    def test_table3_with_supplied_capacities(self, stubbed):
        result = tables.table3_disk_cost(
            measured_terminals={16: 200, 32: 395, 64: 760}
        )
        assert result.column("terminals") == [200, 395, 760]
        # Paper's own numbers: $320 / $200 / $125 per terminal.
        costs = result.column("cost/terminal")
        assert costs == ["$320", "$203", "$126"]

    def test_table3_searches_when_not_supplied(self, stubbed):
        result = tables.table3_disk_cost()
        assert len(result.rows) == 3
