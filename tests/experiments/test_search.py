"""Tests for the max-terminals search (with a stubbed simulator)."""

import dataclasses

import pytest

import repro.experiments.runner as runner_module
from repro import SpiffiConfig
from repro.experiments.search import find_max_terminals, plan_probes


@dataclasses.dataclass
class FakeMetrics:
    glitches: int


class Oracle:
    """Pretends the true capacity is `capacity` (seed-dependent shift)."""

    def __init__(self, capacity, seed_shift=0):
        self.capacity = capacity
        self.seed_shift = seed_shift
        self.calls = []

    def __call__(self, config):
        self.calls.append((config.terminals, config.seed))
        effective = self.capacity + self.seed_shift * (config.seed % 2)
        return FakeMetrics(glitches=0 if config.terminals <= effective else 7)


@pytest.fixture()
def patch_runner(monkeypatch):
    def apply(oracle):
        monkeypatch.setattr(runner_module, "run", oracle)
        return oracle
    return apply


def config():
    return SpiffiConfig(terminals=10, measure_s=10.0)


class TestSearch:
    def test_finds_exact_boundary(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=223))
        result = find_max_terminals(config(), hint=200, granularity=10)
        assert result.max_terminals == 220

    def test_hint_above_boundary_descends(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=100))
        result = find_max_terminals(config(), hint=400, granularity=10)
        assert result.max_terminals == 100

    def test_hint_below_boundary_climbs(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=800))
        result = find_max_terminals(config(), hint=100, granularity=10)
        assert result.max_terminals == 800

    def test_granularity_respected(self, patch_runner):
        patch_runner(Oracle(capacity=223))
        result = find_max_terminals(config(), hint=200, granularity=50)
        assert result.max_terminals == 200
        assert result.max_terminals % 50 == 0

    def test_zero_capacity(self, patch_runner):
        patch_runner(Oracle(capacity=0))
        result = find_max_terminals(config(), hint=100, granularity=10, low=10)
        assert result.max_terminals == 0

    def test_everything_fits_returns_high_limit(self, patch_runner):
        patch_runner(Oracle(capacity=10**9))
        result = find_max_terminals(config(), hint=100, granularity=100, high=1000)
        assert result.max_terminals == 1000

    def test_probe_count_logarithmic(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=517))
        result = find_max_terminals(config(), hint=200, granularity=10, high=4000)
        assert result.max_terminals == 510
        assert result.runs <= 16

    def test_no_duplicate_probes(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=300))
        find_max_terminals(config(), hint=250, granularity=10)
        terminals_probed = [t for t, _ in oracle.calls]
        assert len(terminals_probed) == len(set(terminals_probed))

    def test_replications_must_all_pass(self, patch_runner):
        # Odd seeds support 40 fewer terminals.
        patch_runner(Oracle(capacity=300, seed_shift=-40))
        strict = find_max_terminals(
            config(), hint=300, granularity=10, replications=2
        )
        assert strict.max_terminals == 260

    def test_metrics_at_max_available(self, patch_runner):
        patch_runner(Oracle(capacity=200))
        result = find_max_terminals(config(), hint=200, granularity=10)
        assert result.metrics_at_max().glitches == 0

    def test_validation(self, patch_runner):
        patch_runner(Oracle(capacity=100))
        with pytest.raises(ValueError):
            find_max_terminals(config(), granularity=0)
        with pytest.raises(ValueError):
            find_max_terminals(config(), replications=0)
        with pytest.raises(ValueError):
            find_max_terminals(config(), low=500, high=100)


class TestSearchEdgeCases:
    def test_hint_clamped_at_low(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=50))
        result = find_max_terminals(config(), hint=3, granularity=10, low=10)
        assert result.max_terminals == 50
        assert min(t for t, _ in oracle.calls) >= 10

    def test_hint_clamped_at_high(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=10**9))
        result = find_max_terminals(
            config(), hint=99999, granularity=10, high=500
        )
        assert result.max_terminals == 500
        assert max(t for t, _ in oracle.calls) <= 500

    def test_zero_capacity_evidence_recorded(self, patch_runner):
        patch_runner(Oracle(capacity=0))
        result = find_max_terminals(config(), hint=100, granularity=10, low=10)
        assert result.max_terminals == 0
        assert result.runs > 0
        assert all(not probe.glitch_free for probe in result.probes)
        assert result.metrics_at_max() is None

    def test_granularity_one_finds_exact_capacity(self, patch_runner):
        patch_runner(Oracle(capacity=223))
        result = find_max_terminals(config(), hint=200, granularity=1)
        assert result.max_terminals == 223

    def test_metrics_at_max_with_replications(self, patch_runner):
        patch_runner(Oracle(capacity=200))
        result = find_max_terminals(
            config(), hint=200, granularity=10, replications=3
        )
        assert result.max_terminals == 200
        assert result.metrics_at_max().glitches == 0
        at_max = [p for p in result.probes if p.terminals == 200]
        assert len(at_max) == 3
        assert [p.seed for p in at_max] == [1, 2, 3]

    def test_full_replication_batch_always_recorded(self, patch_runner):
        """A glitching replication must not truncate its point's record
        (the old early `break` made evidence order-dependent)."""
        patch_runner(Oracle(capacity=300, seed_shift=-40))
        result = find_max_terminals(
            config(), hint=300, granularity=10, replications=2
        )
        by_point = {}
        for probe in result.probes:
            by_point.setdefault(probe.terminals, []).append(probe.seed)
        assert all(seeds == [1, 2] for seeds in by_point.values())

    def test_probe_sequence_deterministic(self, patch_runner):
        patch_runner(Oracle(capacity=340))
        first = find_max_terminals(config(), hint=150, granularity=10)
        second = find_max_terminals(config(), hint=150, granularity=10)
        assert first.max_terminals == second.max_terminals
        assert [
            (p.terminals, p.seed) for p in first.probes
        ] == [(p.terminals, p.seed) for p in second.probes]


class TestPlanProbes:
    """The planner alone: a pure generator over verdicts."""

    def drive(self, plan, capacity):
        asked = []
        try:
            batch = next(plan)
            while True:
                assert isinstance(batch, tuple) and batch
                asked.extend(batch)
                batch = plan.send({t: t <= capacity for t in batch})
        except StopIteration as stop:
            return stop.value, asked

    def test_batches_never_repeat_a_point(self):
        best, asked = self.drive(
            plan_probes(10, 4000, 200, 10), capacity=517
        )
        assert best == 510
        assert len(asked) == len(set(asked))

    def test_all_points_snapped_and_bounded(self):
        best, asked = self.drive(
            plan_probes(50, 1000, 300, 50), capacity=10**9
        )
        assert best == 1000
        assert all(50 <= t <= 1000 and t % 50 == 0 for t in asked)

    def test_speculation_validated(self):
        with pytest.raises(ValueError):
            next(plan_probes(10, 100, 50, 10, speculation=0))

    def test_wider_speculation_same_answer(self):
        for speculation in (1, 2, 3, 5):
            best, _ = self.drive(
                plan_probes(10, 4000, 200, 10, speculation=speculation),
                capacity=517,
            )
            assert best == 510
