"""Tests for the max-terminals search (with a stubbed simulator)."""

import dataclasses

import pytest

import repro.experiments.search as search_module
from repro import SpiffiConfig
from repro.experiments.search import find_max_terminals


@dataclasses.dataclass
class FakeMetrics:
    glitches: int


class Oracle:
    """Pretends the true capacity is `capacity` (seed-dependent shift)."""

    def __init__(self, capacity, seed_shift=0):
        self.capacity = capacity
        self.seed_shift = seed_shift
        self.calls = []

    def __call__(self, config):
        self.calls.append((config.terminals, config.seed))
        effective = self.capacity + self.seed_shift * (config.seed % 2)
        return FakeMetrics(glitches=0 if config.terminals <= effective else 7)


@pytest.fixture()
def patch_runner(monkeypatch):
    def apply(oracle):
        monkeypatch.setattr(search_module, "run_simulation", oracle)
        return oracle
    return apply


def config():
    return SpiffiConfig(terminals=10, measure_s=10.0)


class TestSearch:
    def test_finds_exact_boundary(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=223))
        result = find_max_terminals(config(), hint=200, granularity=10)
        assert result.max_terminals == 220

    def test_hint_above_boundary_descends(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=100))
        result = find_max_terminals(config(), hint=400, granularity=10)
        assert result.max_terminals == 100

    def test_hint_below_boundary_climbs(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=800))
        result = find_max_terminals(config(), hint=100, granularity=10)
        assert result.max_terminals == 800

    def test_granularity_respected(self, patch_runner):
        patch_runner(Oracle(capacity=223))
        result = find_max_terminals(config(), hint=200, granularity=50)
        assert result.max_terminals == 200
        assert result.max_terminals % 50 == 0

    def test_zero_capacity(self, patch_runner):
        patch_runner(Oracle(capacity=0))
        result = find_max_terminals(config(), hint=100, granularity=10, low=10)
        assert result.max_terminals == 0

    def test_everything_fits_returns_high_limit(self, patch_runner):
        patch_runner(Oracle(capacity=10**9))
        result = find_max_terminals(config(), hint=100, granularity=100, high=1000)
        assert result.max_terminals == 1000

    def test_probe_count_logarithmic(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=517))
        result = find_max_terminals(config(), hint=200, granularity=10, high=4000)
        assert result.max_terminals == 510
        assert result.runs <= 16

    def test_no_duplicate_probes(self, patch_runner):
        oracle = patch_runner(Oracle(capacity=300))
        find_max_terminals(config(), hint=250, granularity=10)
        terminals_probed = [t for t, _ in oracle.calls]
        assert len(terminals_probed) == len(set(terminals_probed))

    def test_replications_must_all_pass(self, patch_runner):
        # Odd seeds support 40 fewer terminals.
        patch_runner(Oracle(capacity=300, seed_shift=-40))
        strict = find_max_terminals(
            config(), hint=300, granularity=10, replications=2
        )
        assert strict.max_terminals == 260

    def test_metrics_at_max_available(self, patch_runner):
        patch_runner(Oracle(capacity=200))
        result = find_max_terminals(config(), hint=200, granularity=10)
        assert result.metrics_at_max().glitches == 0

    def test_validation(self, patch_runner):
        patch_runner(Oracle(capacity=100))
        with pytest.raises(ValueError):
            find_max_terminals(config(), granularity=0)
        with pytest.raises(ValueError):
            find_max_terminals(config(), replications=0)
        with pytest.raises(ValueError):
            find_max_terminals(config(), low=500, high=100)
