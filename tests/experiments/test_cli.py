"""Tests for the `python -m repro.experiments` command line."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_every_paper_artifact_registered(self):
        expected = {
            "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "fig19",
            "table2", "table3", "sec82",
        }
        assert expected == set(EXPERIMENTS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_analytic_experiment(self, capsys):
        # fig08 is pure math — safe to execute in a unit test.
        assert main(["fig08"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
