"""Tests for the `python -m repro.experiments` command line."""


from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_every_paper_artifact_registered(self):
        expected = {
            "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "fig19",
            "table2", "table3", "sec82", "faultsweep", "availability",
            "saturation", "sharing", "cluster", "prefixsweep", "resilience",
        }
        assert expected == set(EXPERIMENTS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_analytic_experiment(self, capsys):
        # fig08 is pure math — safe to execute in a unit test.
        assert main(["fig08"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_scale_flag_stamps_output(self, capsys):
        assert main(["fig08", "--scale", "quick"]) == 0
        assert "[scale: quick]" in capsys.readouterr().out

    def test_scale_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert main(["fig08", "--scale", "quick"]) == 0
        assert "[scale: quick]" in capsys.readouterr().out

    def test_paper_scale_alias(self, capsys):
        assert main(["fig08", "--scale", "paper"]) == 0
        assert "[scale: full]" in capsys.readouterr().out

    def test_scale_flag_does_not_leak(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert main(["fig08", "--scale", "quick"]) == 0
        capsys.readouterr()
        assert main(["fig08"]) == 0
        assert "[scale: default]" in capsys.readouterr().out

    def test_bad_jobs_rejected(self, capsys):
        assert main(["fig08", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_and_cache_flags_accepted(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path / "cache"))
        assert main(["fig08", "--jobs", "2", "--quiet"]) == 0
        assert main(["fig08", "--no-cache"]) == 0
