"""Tests for the analytical capacity and memory models."""

import pytest

from repro.analytic import (
    StreamParameters,
    average_case_streams_per_disk,
    caching_pays_for_video,
    estimate_capacity,
    five_minute_rule_break_even,
    predicted_memory_demand,
    scan_streams_per_disk,
    worst_case_streams_per_disk,
)
from repro.storage import DriveParameters

GB = 1024 ** 3
DRIVE = DriveParameters()
STREAM = StreamParameters()
CYLINDERS = 5 * GB // DRIVE.cylinder_bytes


class TestStreamParameters:
    def test_block_period(self):
        # 512 KB at 0.5 MB/s ≈ 1.05 s of video per block.
        assert STREAM.block_period_s == pytest.approx(512 * 1024 / 5e5)


class TestCapacityBounds:
    def test_ordering_worst_below_average_below_scan(self):
        worst = worst_case_streams_per_disk(DRIVE, STREAM, CYLINDERS)
        average = average_case_streams_per_disk(DRIVE, STREAM, CYLINDERS)
        scan = scan_streams_per_disk(DRIVE, STREAM, CYLINDERS)
        assert 0 < worst < average <= scan

    def test_scan_below_transfer_limit(self):
        scan = scan_streams_per_disk(DRIVE, STREAM, CYLINDERS)
        transfer_limit = DRIVE.transfer_rate_bytes / STREAM.bytes_per_second
        assert scan <= transfer_limit

    def test_worst_case_magnitude(self):
        """Full-stroke seek (~19 ms) + rotation (~8 ms) + transfer
        (~69 ms) per 1.05 s block → ~10 streams."""
        worst = worst_case_streams_per_disk(DRIVE, STREAM, CYLINDERS)
        assert 8 <= worst <= 12

    def test_estimate_scales_with_disks(self):
        one = estimate_capacity(DRIVE, STREAM, 1, 5 * GB)
        sixteen = estimate_capacity(DRIVE, STREAM, 16, 5 * GB)
        assert sixteen.scan == 16 * one.scan
        assert sixteen.transfer_limit == pytest.approx(16 * one.transfer_limit, abs=16)

    def test_paper_scale_sanity(self):
        """The simulator finds ~230 terminals on 16 disks; the scan
        bound should be in that neighbourhood and the worst-case bound
        far below it (the paper's over-provisioning argument)."""
        estimates = estimate_capacity(DRIVE, STREAM, 16, 5 * GB)
        assert estimates.worst_case < estimates.scan
        assert 150 <= estimates.scan <= 240

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_capacity(DRIVE, STREAM, 0, 5 * GB)


class TestMemoryModel:
    def test_transient_scales_with_streams(self):
        demand = predicted_memory_demand(100, 16, STREAM, prefetch_depth=0)
        assert demand.prefetched_bytes == 0
        assert demand.transient_bytes == 100 * 2 * STREAM.block_bytes

    def test_depth_multiplies_prefetched_residency(self):
        shallow = predicted_memory_demand(100, 16, STREAM, prefetch_depth=1)
        deep = predicted_memory_demand(100, 16, STREAM, prefetch_depth=3)
        assert deep.prefetched_bytes == 3 * shallow.prefetched_bytes

    def test_max_advance_caps_demand(self):
        unbounded = predicted_memory_demand(100, 16, STREAM, prefetch_depth=3)
        capped = predicted_memory_demand(
            100, 16, STREAM, prefetch_depth=3, max_advance_s=8.0
        )
        assert capped.prefetched_bytes < unbounded.prefetched_bytes

    def test_paper_regime(self):
        """~190 streams with depth-1 prefetching over 16 disks demand
        on the order of 1-2 GB — which is why 512 MB pressures global
        LRU (Figure 11)."""
        demand = predicted_memory_demand(190, 16, STREAM, prefetch_depth=1)
        assert 1 * GB < demand.total_bytes < 3 * GB

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_memory_demand(-1, 16, STREAM)
        with pytest.raises(ValueError):
            predicted_memory_demand(10, 0, STREAM)


class TestFiveMinuteRule:
    def test_break_even_magnitude_1995(self):
        """Gray's 1990s numbers: ~$4000 disk doing ~60 accesses/s,
        memory at $40/MB → break-even of minutes for 4 KB pages."""
        interval = five_minute_rule_break_even(
            page_bytes=4096,
            disk_dollars=4000.0,
            disk_accesses_per_second=60.0,
            memory_dollars_per_mb=40.0,
        )
        assert 60 <= interval <= 1200

    def test_video_pages_never_cache(self):
        """A 512 KB stripe block re-referenced (if ever) an hour later:
        caching never pays — the paper's "no five minute rule for
        video servers"."""
        interval = five_minute_rule_break_even(
            page_bytes=512 * 1024,
            disk_dollars=4000.0,
            disk_accesses_per_second=14.0,
            memory_dollars_per_mb=40.0,
        )
        assert not caching_pays_for_video(3600.0, interval)

    def test_validation(self):
        with pytest.raises(ValueError):
            five_minute_rule_break_even(0, 1, 1, 1)
