"""End-to-end failover behaviour under a permanent disk failure.

The headline contract: with replicas, every read of a dead disk's
blocks is served *intact* from a surviving copy (counted as a failover
read); without replicas the same reads are "served" by error
concealment and the data is lost.
"""

from repro import MB, SpiffiConfig, run_simulation
from repro.core.system import SpiffiSystem
from repro.faults import FaultSpec
from repro.layout.registry import LayoutSpec
from repro.prefetch.spec import PrefetchSpec
from repro.replication.spec import ReplicationSpec
from repro.telemetry import trace as trace_events


def failover_config(layout="mirrored", factor=2, **overrides):
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=20,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        layout=LayoutSpec(layout),
        replication=ReplicationSpec(factor=factor),
        # Prefetching reroutes around the dead disk itself; disabling it
        # funnels every read through the failover path under test.
        prefetch=PrefetchSpec("none"),
        faults=FaultSpec(
            fail_disk_ids=(0,), fail_at_s=1.0, request_timeout_s=1.0
        ),
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=30.0,
        seed=7,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


class TestFailoverKeepsDataIntact:
    def test_unreplicated_loses_reads(self):
        metrics = run_simulation(failover_config("striped", factor=1))
        assert metrics.fault_failed_reads > 0
        assert metrics.failover_reads == 0

    def test_mirrored_serves_every_read_from_the_replica(self):
        metrics = run_simulation(failover_config("mirrored"))
        assert metrics.failover_reads > 0
        assert metrics.fault_failed_reads == 0
        assert metrics.fault_abandoned_reads == 0
        assert metrics.glitches == 0

    def test_chained_serves_every_read_from_the_replica(self):
        metrics = run_simulation(failover_config("chained"))
        assert metrics.failover_reads > 0
        assert metrics.fault_failed_reads == 0
        assert metrics.fault_abandoned_reads == 0
        assert metrics.glitches == 0

    def test_replication_sustains_delivery(self):
        lone = run_simulation(failover_config("striped", factor=1))
        mirrored = run_simulation(failover_config("mirrored"))
        # Intact delivery = delivered minus reads whose data was lost.
        intact_lone = lone.blocks_delivered - lone.fault_failed_reads
        assert mirrored.blocks_delivered > intact_lone


class TestDeterminism:
    def test_replicated_faulty_run_repeats_bit_identically(self):
        config = failover_config("chained")
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.deterministic_dict() == second.deterministic_dict()


class TestFailoverTracing:
    def test_trace_records_failover_and_health(self):
        system = SpiffiSystem(failover_config("mirrored"))
        recorder = system.enable_fault_tracing()
        system.start()
        system.env.run(until=system.config.total_sim_time_s)
        kinds = {event.kind for event in recorder.events()}
        assert trace_events.FAILOVER_READ in kinds
        assert trace_events.HEALTH_CHANGE in kinds
        failovers = [
            event for event in recorder.events()
            if event.kind == trace_events.FAILOVER_READ
        ]
        # Every failover read fled the failed disk for its mirror.
        assert all(event.fields["from_disk"] == 0 for event in failovers)
        assert all(event.fields["to_disk"] == 2 for event in failovers)
