"""Background rebuild: counters, directory updates, bandwidth pacing."""

from repro import MB, SpiffiConfig, run_simulation
from repro.core.system import SpiffiSystem
from repro.faults import FaultSpec
from repro.layout.registry import LayoutSpec
from repro.replication.spec import ReplicationSpec
from repro.telemetry import trace as trace_events

FAILED_DISK = 0


def rebuild_config(**overrides):
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=8,
        videos_per_disk=1,
        # Short videos keep the lost-copy set small enough for the
        # rebuild to finish inside the measurement window.
        video_length_s=30.0,
        server_memory_bytes=256 * MB,
        layout=LayoutSpec("chained"),
        replication=ReplicationSpec(
            factor=2, rebuild_bandwidth_bytes_per_s=64 * MB
        ),
        # Fail after measurement starts (warmup ends at 10s) so the
        # rebuild completion is not wiped by the stats reset.
        faults=FaultSpec(
            fail_disk_ids=(FAILED_DISK,), fail_at_s=12.0, request_timeout_s=1.0
        ),
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=60.0,
        seed=7,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


def run_system(config):
    system = SpiffiSystem(config)
    recorder = system.enable_fault_tracing()
    system.start()
    system.env.run(until=config.total_sim_time_s)
    return system, recorder


class TestRebuildRestoresRedundancy:
    def test_rebuild_completes_and_counts(self):
        metrics = run_simulation(rebuild_config())
        assert metrics.rebuilds_completed == 1
        assert metrics.rebuild_blocks > 0
        assert metrics.rebuild_reads >= metrics.rebuild_blocks
        assert metrics.rebuild_io_bytes > 0
        assert metrics.mean_time_to_rebuild_s > 0.0

    def test_directory_moves_every_copy_off_the_dead_disk(self):
        system, _ = run_system(rebuild_config())
        runtime = system.replication
        assert runtime.relocated_copies > 0
        layout = system.layout
        for video_id, count in enumerate(layout.video_block_counts):
            for block in range(count):
                disks = [
                    p.disk_global for p in runtime.placements(video_id, block)
                ]
                assert FAILED_DISK not in disks
                assert len(set(disks)) == len(disks)

    def test_relocated_copies_follow_the_layout_inverse(self):
        """Every copy the dead disk held is either relocated or was
        already elsewhere; relocation targets never hold two copies."""
        system, _ = run_system(rebuild_config())
        runtime = system.replication
        for video_id, block, replica_index in system.layout.copies_on_disk(
            FAILED_DISK
        ):
            placement = runtime.placements(video_id, block)[replica_index]
            assert placement.disk_global != FAILED_DISK

    def test_trace_records_rebuild_lifecycle(self):
        _, recorder = run_system(rebuild_config())
        starts = recorder.events(trace_events.REBUILD_START)
        ends = recorder.events(trace_events.REBUILD_END)
        blocks = recorder.events(trace_events.REBUILD_BLOCK)
        assert [event.fields["disk"] for event in starts] == [FAILED_DISK]
        assert [event.fields["disk"] for event in ends] == [FAILED_DISK]
        assert len(blocks) == ends[0].fields["blocks"]
        assert all(
            event.fields["target"] != FAILED_DISK for event in blocks
        )
        assert ends[0].time - starts[0].time > 0.0


class TestRebuildKnobs:
    def test_rebuild_can_be_disabled(self):
        config = rebuild_config(
            replication=ReplicationSpec(factor=2, rebuild=False)
        )
        system = SpiffiSystem(config)
        assert system.rebuild is None
        metrics = run_simulation(config)
        assert metrics.rebuild_blocks == 0
        assert metrics.rebuilds_completed == 0
        # Reads still fail over; redundancy just never comes back.
        assert metrics.failover_reads >= 0
        assert system.replication is not None

    def test_bandwidth_cap_paces_the_rebuild(self):
        """A tighter cap rebuilds strictly less within the same window."""
        slow = run_simulation(
            rebuild_config(
                replication=ReplicationSpec(
                    factor=2, rebuild_bandwidth_bytes_per_s=100_000.0
                )
            )
        )
        fast = run_simulation(rebuild_config())
        assert fast.rebuilds_completed == 1
        assert slow.rebuilds_completed == 0
        assert 0 < slow.rebuild_blocks < fast.rebuild_blocks

    def test_rebuild_deterministic(self):
        config = rebuild_config()
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.deterministic_dict() == second.deterministic_dict()
