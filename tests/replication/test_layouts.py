"""Replicated layout geometry: placement, inverses, and validation.

The load-bearing invariant is that replication *never moves the
primary copy*: with any factor, every block's primary placement — and
therefore every byte offset an unreplicated run reads — is exactly
what plain ``StripedLayout`` produces.  That is what makes the
``factor=1`` golden baseline hold.
"""

import pytest

from repro.layout.base import Layout
from repro.layout.registry import (
    LayoutSpec,
    layout_supports_replication,
    register_layout,
    replicated_layout_names,
)
from repro.layout.striped import StripedLayout
from repro.replication.layouts import ReplicatedStripedLayout

BLOCK = 1000
COUNTS = [13, 8, 21]
NODES = 2
DISKS_PER_NODE = 4
DISK_COUNT = NODES * DISKS_PER_NODE


def striped():
    return StripedLayout(COUNTS, NODES, DISKS_PER_NODE, BLOCK)


def replicated(factor, step):
    return ReplicatedStripedLayout(
        COUNTS, NODES, DISKS_PER_NODE, BLOCK, factor, step
    )


def all_blocks():
    for video_id, count in enumerate(COUNTS):
        for block in range(count):
            yield video_id, block


class TestPrimaryPreservation:
    @pytest.mark.parametrize("name", ["mirrored", "chained"])
    def test_factor_one_is_plain_striping(self, name):
        base = striped()
        layout = LayoutSpec(name).build(
            COUNTS, NODES, DISKS_PER_NODE, BLOCK, None, replication_factor=1
        )
        for video_id, block in all_blocks():
            assert layout.locate(video_id, block) == base.locate(video_id, block)
        for disk in range(DISK_COUNT):
            assert layout.disk_used_bytes(disk) == base.disk_used_bytes(disk)
        assert layout.replica_count == 1
        for video_id, block in all_blocks():
            assert layout.replica_placements(video_id, block) == (
                base.locate(video_id, block),
            )

    @pytest.mark.parametrize("factor,step", [(2, 4), (2, 1), (4, 1), (4, 2)])
    def test_replication_never_moves_the_primary(self, factor, step):
        base = striped()
        layout = replicated(factor, step)
        for video_id, block in all_blocks():
            assert layout.locate(video_id, block) == base.locate(video_id, block)
            assert layout.replica_placements(video_id, block)[0] == base.locate(
                video_id, block
            )


class TestReplicaGeometry:
    def test_mirrored_partner_is_half_rotation(self):
        layout = replicated(2, DISK_COUNT // 2)
        for video_id, block in all_blocks():
            primary, mirror = layout.replica_placements(video_id, block)
            assert mirror.disk_global == (
                primary.disk_global + DISK_COUNT // 2
            ) % DISK_COUNT

    def test_chained_partner_is_successor(self):
        layout = replicated(2, 1)
        for video_id, block in all_blocks():
            primary, copy = layout.replica_placements(video_id, block)
            assert copy.disk_global == (primary.disk_global + 1) % DISK_COUNT

    def test_copies_of_one_block_on_distinct_disks(self):
        layout = replicated(4, 2)
        for video_id, block in all_blocks():
            placements = layout.replica_placements(video_id, block)
            assert len(placements) == 4
            assert len({p.disk_global for p in placements}) == 4

    def test_replica_placement_fields_consistent(self):
        layout = replicated(2, 1)
        for video_id, block in all_blocks():
            placements = layout.replica_placements(video_id, block)
            for placement in placements:
                node, disk_in_node = layout.split_disk_index(placement.disk_global)
                assert (placement.node, placement.disk_in_node) == (
                    node, disk_in_node
                )
            # Replica copies stay inside the accounted extent.  (The
            # primary copy inherits StripedLayout's historical remainder
            # accounting, pinned by the golden baseline, which can place
            # one block past its accounted fill.)
            for placement in placements[1:]:
                assert 0 <= placement.byte_offset
                assert placement.byte_offset + BLOCK <= layout.disk_used_bytes(
                    placement.disk_global
                )

    @pytest.mark.parametrize("factor,step", [(2, 4), (2, 1), (4, 1)])
    def test_replica_copies_never_overlap_on_disk(self, factor, step):
        """Replica extents occupy distinct block-sized slots per disk and
        never intrude into the region primary accounting reserved."""
        primary_fill = {
            disk: striped().disk_used_bytes(disk) for disk in range(DISK_COUNT)
        }
        layout = replicated(factor, step)
        extents = {disk: [] for disk in range(DISK_COUNT)}
        for video_id, block in all_blocks():
            for placement in layout.replica_placements(video_id, block)[1:]:
                extents[placement.disk_global].append(placement.byte_offset)
        for disk, offsets in extents.items():
            assert all(offset >= primary_fill[disk] for offset in offsets)
            assert len(offsets) == len(set(offsets))
            offsets.sort()
            for a, b in zip(offsets, offsets[1:]):
                assert b - a >= BLOCK

    def test_disk_used_grows_with_factor(self):
        base = striped()
        layout = replicated(2, 1)
        total_base = sum(base.disk_used_bytes(d) for d in range(DISK_COUNT))
        total_repl = sum(layout.disk_used_bytes(d) for d in range(DISK_COUNT))
        assert total_repl == 2 * total_base


class TestCopiesOnDisk:
    @pytest.mark.parametrize("factor,step", [(2, 4), (2, 1), (4, 2)])
    def test_inverse_of_replica_placements(self, factor, step):
        """copies_on_disk(d) lists exactly the copies whose placement
        lands on d — the rebuild walks precisely what the disk held."""
        layout = replicated(factor, step)
        expected = {disk: set() for disk in range(DISK_COUNT)}
        for video_id, block in all_blocks():
            placements = layout.replica_placements(video_id, block)
            for index, placement in enumerate(placements):
                expected[placement.disk_global].add((video_id, block, index))
        for disk in range(DISK_COUNT):
            listed = list(layout.copies_on_disk(disk))
            assert len(listed) == len(set(listed))
            assert set(listed) == expected[disk]

    def test_plain_layout_has_no_copy_walk(self):
        with pytest.raises(NotImplementedError):
            list(striped().copies_on_disk(0))


class TestValidation:
    def test_factor_above_disk_count_rejected(self):
        with pytest.raises(ValueError, match="disks available"):
            replicated(DISK_COUNT + 1, 1)

    def test_colliding_replica_step_rejected(self):
        # step = disk_count maps every copy back onto the primary disk.
        with pytest.raises(ValueError, match="same disk"):
            replicated(2, DISK_COUNT)

    def test_mirrored_needs_divisible_disk_count(self):
        with pytest.raises(ValueError, match="divisible"):
            LayoutSpec("mirrored").build(
                COUNTS, 1, 5, BLOCK, None, replication_factor=2
            )

    def test_single_copy_layout_rejects_factor(self):
        with pytest.raises(ValueError, match="single copy"):
            LayoutSpec("striped").build(
                COUNTS, NODES, DISKS_PER_NODE, BLOCK, None, replication_factor=2
            )

    def test_registry_reports_replication_support(self):
        assert layout_supports_replication("mirrored")
        assert layout_supports_replication("chained")
        assert not layout_supports_replication("striped")
        assert set(replicated_layout_names()) >= {"mirrored", "chained"}


class TestPluginBackCompat:
    def test_five_arg_factory_still_registers_and_builds(self):
        """Pre-replication plugin factories keep working unchanged."""

        class Dummy(Layout):
            pass

        register_layout(
            "compat_probe",
            lambda counts, nodes, disks, block_size, rng: Dummy(
                nodes, disks, block_size
            ),
        )
        try:
            layout = LayoutSpec("compat_probe").build(
                COUNTS, NODES, DISKS_PER_NODE, BLOCK, None
            )
            assert isinstance(layout, Dummy)
            with pytest.raises(ValueError, match="single copy"):
                LayoutSpec("compat_probe").build(
                    COUNTS, NODES, DISKS_PER_NODE, BLOCK, None,
                    replication_factor=2,
                )
        finally:
            from repro.layout import registry

            registry._REGISTRY.pop("compat_probe", None)
