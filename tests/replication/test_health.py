"""Unit tests of the per-disk health model."""

import math

import pytest

from repro.faults.schedule import NETWORK_TARGET, FaultEvent
from repro.faults.spec import DISK_FAIL, DISK_OUTAGE, DISK_SLOW
from repro.replication.health import (
    DOWN,
    FAILED,
    HEALTHY,
    SUSPECT,
    HealthMonitor,
)
from repro.sim.environment import Environment


def event(kind, target=0, duration=5.0, magnitude=0.0):
    return FaultEvent(
        start_s=0.0, kind=kind, target=target,
        duration_s=duration, magnitude=magnitude,
    )


def monitor(disks=4, cooldown=10.0):
    return HealthMonitor(Environment(), disks, cooldown)


class TestStates:
    def test_initially_all_healthy(self):
        m = monitor()
        assert all(m.state(d) == HEALTHY for d in range(4))
        assert all(m.rank(d) == 0 for d in range(4))

    def test_timeout_suspects_until_cooldown(self):
        m = monitor(cooldown=10.0)
        m.note_timeout(1)
        assert m.state(1) == SUSPECT
        assert m.state(0) == HEALTHY
        m.env.run(until=10.0)
        assert m.state(1) == SUSPECT  # boundary inclusive
        m.env.run(until=10.5)
        assert m.state(1) == HEALTHY

    def test_repeat_timeouts_extend_the_cooldown(self):
        m = monitor(cooldown=10.0)
        m.note_timeout(1)
        m.env.run(until=8.0)
        m.note_timeout(1)
        m.env.run(until=12.0)
        assert m.state(1) == SUSPECT

    def test_slow_fault_suspects_while_active(self):
        m = monitor()
        m.fault_applied(event(DISK_SLOW, target=2))
        assert m.state(2) == SUSPECT
        m.fault_reverted(event(DISK_SLOW, target=2))
        assert m.state(2) == HEALTHY

    def test_outage_is_down_and_recovers(self):
        m = monitor()
        m.fault_applied(event(DISK_OUTAGE, target=2))
        assert m.state(2) == DOWN
        m.fault_reverted(event(DISK_OUTAGE, target=2))
        assert m.state(2) == HEALTHY

    def test_overlapping_outages_recover_only_when_all_end(self):
        m = monitor()
        m.fault_applied(event(DISK_OUTAGE, target=2))
        m.fault_applied(event(DISK_OUTAGE, target=2))
        m.fault_reverted(event(DISK_OUTAGE, target=2))
        assert m.state(2) == DOWN
        m.fault_reverted(event(DISK_OUTAGE, target=2))
        assert m.state(2) == HEALTHY

    def test_permanent_failure_is_terminal(self):
        m = monitor()
        m.fault_applied(event(DISK_FAIL, target=3, duration=math.inf))
        assert m.state(3) == FAILED
        m.note_timeout(3)
        assert m.state(3) == FAILED

    def test_ranks_order_by_severity(self):
        m = monitor()
        m.note_timeout(1)
        m.fault_applied(event(DISK_OUTAGE, target=2))
        m.fault_applied(event(DISK_FAIL, target=3, duration=math.inf))
        ranks = [m.rank(d) for d in range(4)]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == 4

    def test_network_events_are_ignored(self):
        m = monitor()
        m.fault_applied(event(DISK_OUTAGE, target=NETWORK_TARGET))
        assert all(m.state(d) == HEALTHY for d in range(4))


class TestFailureCallbacks:
    def test_callback_fires_once_per_disk(self):
        m = monitor()
        failed = []
        m.subscribe_failed(failed.append)
        m.fault_applied(event(DISK_FAIL, target=2, duration=math.inf))
        m.fault_applied(event(DISK_FAIL, target=2, duration=math.inf))
        m.fault_applied(event(DISK_FAIL, target=0, duration=math.inf))
        assert failed == [2, 0]


class TestValidation:
    def test_rejects_empty_disk_set(self):
        with pytest.raises(ValueError):
            HealthMonitor(Environment(), 0, 10.0)
