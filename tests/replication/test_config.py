"""Config-time validation and cache identity of the replication knobs."""

import pytest

from repro.core.config import MB, SpiffiConfig
from repro.experiments.results import config_digest, config_to_dict
from repro.faults import FaultSpec
from repro.layout.registry import LayoutSpec
from repro.replication.spec import ReplicationSpec


def config(**overrides):
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=4,
        videos_per_disk=1,
        video_length_s=60.0,
        server_memory_bytes=256 * MB,
        measure_s=5.0,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


class TestSpecValidation:
    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError, match=">= 1"):
            ReplicationSpec(factor=0)

    def test_rejects_nonpositive_rebuild_bandwidth(self):
        with pytest.raises(ValueError, match="positive"):
            ReplicationSpec(rebuild_bandwidth_bytes_per_s=0.0)

    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError, match="suspect_cooldown_s"):
            ReplicationSpec(suspect_cooldown_s=-1.0)

    def test_enabled_and_label(self):
        assert not ReplicationSpec().enabled
        assert ReplicationSpec().label() == "r=1"
        assert ReplicationSpec(factor=2).enabled
        assert ReplicationSpec(factor=2, rebuild=False).label() == "r=2 no-rebuild"


class TestConfigValidation:
    def test_single_copy_layout_rejects_replication(self):
        with pytest.raises(ValueError) as excinfo:
            config(replication=ReplicationSpec(factor=2))
        # The error steers to the layouts that can host replicas.
        assert "mirrored" in str(excinfo.value)
        assert "chained" in str(excinfo.value)

    def test_factor_cannot_exceed_disk_count(self):
        with pytest.raises(ValueError, match="4 disks available"):
            config(
                layout=LayoutSpec("chained"),
                replication=ReplicationSpec(factor=5),
            )

    def test_fail_disk_ids_validated_against_disk_count(self):
        with pytest.raises(ValueError, match=r"valid: 0\.\.3"):
            config(faults=FaultSpec(fail_disk_ids=(4,)))

    def test_unreplicated_config_may_fail_all_but_one_disk(self):
        assert config(faults=FaultSpec(fail_disk_ids=(0, 1, 2))) is not None
        with pytest.raises(ValueError, match="at most 3 may fail"):
            config(faults=FaultSpec(fail_disk_ids=(0, 1, 2, 3)))

    def test_replication_tightens_the_fail_limit(self):
        """Factor f needs f survivors, so at most D - f disks may fail."""
        replicated = dict(
            layout=LayoutSpec("chained"), replication=ReplicationSpec(factor=2)
        )
        assert config(faults=FaultSpec(fail_disk_ids=(0, 1)), **replicated)
        with pytest.raises(ValueError, match="at most 2 may fail"):
            config(faults=FaultSpec(fail_disk_ids=(0, 1, 2)), **replicated)

    def test_replication_factor_property(self):
        assert config().replication_factor == 1
        replicated = config(
            layout=LayoutSpec("mirrored"), replication=ReplicationSpec(factor=2)
        )
        assert replicated.replication_factor == 2


class TestCacheIdentity:
    """Default replication hashes exactly like a pre-replication config."""

    def test_default_spec_dropped_from_canonical_dict(self):
        assert "replication" not in config_to_dict(config())

    def test_nondefault_spec_serialized(self):
        data = config_to_dict(
            config(
                layout=LayoutSpec("chained"),
                replication=ReplicationSpec(factor=2),
            )
        )
        assert data["replication"]["factor"] == 2
        assert data["replication"]["rebuild"] is True

    def test_explicit_default_spec_matches_omitted(self):
        assert config_digest(
            config(replication=ReplicationSpec())
        ) == config_digest(config())

    def test_replication_knobs_change_the_digest(self):
        base = config_digest(config())
        mirrored = config_digest(
            config(
                layout=LayoutSpec("mirrored"),
                replication=ReplicationSpec(factor=2),
            )
        )
        chained = config_digest(
            config(
                layout=LayoutSpec("chained"),
                replication=ReplicationSpec(factor=2),
            )
        )
        throttled = config_digest(
            config(
                layout=LayoutSpec("chained"),
                replication=ReplicationSpec(
                    factor=2, rebuild_bandwidth_bytes_per_s=1.0
                ),
            )
        )
        assert len({base, mirrored, chained, throttled}) == 4
