"""Tests for visual search (§8.1): skim search and version search."""

import pytest

from repro import MB, SpiffiConfig
from repro.core.system import SpiffiSystem
from repro.terminal import SkimParameters, skim_search, version_search


def make_system(search_speedup=None):
    config = SpiffiConfig(
        nodes=1,
        disks_per_node=2,
        terminals=1,
        videos_per_disk=1,
        video_length_s=120.0,
        server_memory_bytes=64 * MB,
        start_spread_s=0.1,
        warmup_grace_s=0.1,
        measure_s=1.0,
        initial_position_fraction=0.0,
        search_version_speedup=search_speedup,
        seed=13,
    )
    return SpiffiSystem(config)


class TestSkimParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            SkimParameters(show_s=0)
        with pytest.raises(ValueError):
            SkimParameters(skip_s=-1)


class TestSkimSearch:
    def run_skim(self, direction, start_fraction=0.5, duration=6.0):
        system = make_system()
        env = system.env
        terminal = system.terminals[0]
        video = system.library[0]
        outcome = {}

        def driver(env):
            start = int(video.frame_count * start_fraction)
            session = env.process(terminal.play(0, start_frame=start))
            yield env.timeout(3.0)
            final = yield env.process(
                skim_search(terminal, direction, duration,
                            SkimParameters(show_s=0.5, skip_s=4.0))
            )
            outcome["final"] = final
            outcome["start"] = start
            # End the original session cleanly.
            if session.is_alive:
                terminal._epoch += 1
                yield session

        done = env.process(driver(env))
        env.run(until=done)
        return outcome, terminal, video

    def test_forward_moves_forward(self):
        outcome, terminal, video = self.run_skim(+1)
        assert outcome["final"] > outcome["start"]

    def test_rewind_moves_backward(self):
        outcome, terminal, video = self.run_skim(-1)
        assert outcome["final"] < outcome["start"]

    def test_covers_more_content_than_realtime(self):
        """6 seconds of skimming at show 0.5 / skip 4.0 covers ~9x more
        video than 6 seconds of normal viewing."""
        outcome, terminal, video = self.run_skim(+1, duration=6.0)
        moved_s = (outcome["final"] - outcome["start"]) / video.fps
        assert moved_s > 12.0

    def test_direction_validation(self):
        system = make_system()
        terminal = system.terminals[0]
        with pytest.raises(ValueError):
            list(skim_search(terminal, 0, 5.0))
        with pytest.raises(ValueError):
            list(skim_search(terminal, +1, -1.0))


class TestVersionSearch:
    def test_library_stores_condensed_copies(self):
        system = make_system(search_speedup=10)
        library = system.library
        assert library.has_search_versions
        assert library.title_count == 2
        assert len(library) == 4  # 2 titles + 2 search copies
        copy = library[library.search_version_of(0)]
        assert copy.duration_s == pytest.approx(12.0, abs=0.5)

    def test_search_copies_consume_disk_space(self):
        with_copies = make_system(search_speedup=10)
        without = make_system()
        used_with = sum(
            with_copies.layout.disk_used_bytes(d) for d in range(2)
        )
        used_without = sum(without.layout.disk_used_bytes(d) for d in range(2))
        assert used_with > used_without

    def test_forward_search_advances_position(self):
        system = make_system(search_speedup=10)
        env = system.env
        terminal = system.terminals[0]
        video = system.library[0]
        outcome = {}

        def driver(env):
            start = video.frame_count // 4
            session = env.process(terminal.play(0, start_frame=start))
            yield env.timeout(2.0)
            final = yield env.process(
                version_search(terminal, 0, +1, duration_s=3.0)
            )
            outcome["final"] = final
            outcome["start"] = start
            if session.is_alive:
                terminal._epoch += 1
                yield session

        done = env.process(driver(env))
        env.run(until=done)
        assert outcome["final"] > outcome["start"]
        # 3 s at 10x speedup ≈ 30 s of content ≈ 900 frames.
        moved = outcome["final"] - outcome["start"]
        assert 300 <= moved <= 1400

    def test_requires_search_versions(self):
        system = make_system()  # no copies stored
        terminal = system.terminals[0]
        with pytest.raises(ValueError):
            list(version_search(terminal, 0, +1, 5.0))

    def test_speedup_validation(self):
        from repro.media import VideoLibrary

        with pytest.raises(ValueError):
            VideoLibrary(2, 60.0, seed=1, search_speedup=1)

    def test_search_version_of_bounds(self):
        system = make_system(search_speedup=10)
        with pytest.raises(ValueError):
            system.library.search_version_of(5)
