"""Property tests: terminal playback arithmetic over random videos."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media import FrameSequence, MpegProfile
from repro.media.video import BlockSchedule


@given(
    seed=st.integers(0, 500),
    duration=st.floats(2.0, 20.0),
    block_kb=st.sampled_from([32, 64, 256]),
)
@settings(max_examples=25, deadline=None)
def test_property_block_schedule_covers_video_exactly(seed, duration, block_kb):
    sequence = FrameSequence(MpegProfile(), duration, seed)
    schedule = BlockSchedule(sequence, block_kb * 1024)
    # Delivering all blocks makes every frame displayable.
    assert (
        sequence.frames_displayable(schedule.delivered_bytes(schedule.block_count))
        == sequence.frame_count
    )
    # Delivering none makes none displayable.
    assert sequence.frames_displayable(0) == 0


@given(
    seed=st.integers(0, 500),
    block_kb=st.sampled_from([32, 64]),
    prefix=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_property_displayable_monotone_in_delivery(seed, block_kb, prefix):
    sequence = FrameSequence(MpegProfile(), 5.0, seed)
    schedule = BlockSchedule(sequence, block_kb * 1024)
    prefix = min(prefix, schedule.block_count)
    shorter = sequence.frames_displayable(schedule.delivered_bytes(prefix))
    if prefix < schedule.block_count:
        longer = sequence.frames_displayable(schedule.delivered_bytes(prefix + 1))
        assert longer >= shorter
    # A displayable frame's bytes are inside the delivered prefix.
    if shorter > 0:
        assert sequence.cumulative[shorter] <= schedule.delivered_bytes(prefix)


@given(seed=st.integers(0, 300), block_kb=st.sampled_from([32, 128]))
@settings(max_examples=25, deadline=None)
def test_property_first_frame_deadline_monotone(seed, block_kb):
    """Deadlines assigned in block order never decrease (the terminal
    sends the disk a nondecreasing deadline sequence)."""
    sequence = FrameSequence(MpegProfile(), 5.0, seed)
    schedule = BlockSchedule(sequence, block_kb * 1024)
    first = schedule.first_frame
    assert all(first[i] <= first[i + 1] for i in range(len(first) - 1))


@given(seed=st.integers(0, 300))
@settings(max_examples=20, deadline=None)
def test_property_frame_span_at_least_one_block_each(seed):
    """Every frame's bytes lie within consecutive blocks (span >= 1)."""
    sequence = FrameSequence(MpegProfile(), 3.0, seed)
    block = 64 * 1024
    for frame in range(0, sequence.frame_count, 37):
        first = int(sequence.cumulative[frame]) // block
        last = (int(sequence.cumulative[frame + 1]) - 1) // block
        assert last >= first
