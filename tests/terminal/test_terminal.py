"""Tests for the video terminal against a controllable fake server."""

import pytest

from repro.layout import StripedLayout
from repro.media import VideoLibrary
from repro.netsim import NetworkBus, NetworkParameters
from repro.sim import Environment, RandomSource
from repro.terminal import PauseModel, Terminal

BLOCK = 64 * 1024


class FakeNode:
    """A server stand-in with a fixed per-block service time."""

    def __init__(self, env, service_time=0.001, stall_blocks=None, stall_for=0.0):
        self.env = env
        self.service_time = service_time
        self.stall_blocks = stall_blocks or set()
        self.stall_for = stall_for
        self.requests = []  # (time, block, deadline)

    def request_block(self, terminal_id, video_id, block, size, placement, deadline):
        self.requests.append((self.env.now, block, deadline))
        done = self.env.event()

        def serve(env):
            delay = self.service_time
            if block in self.stall_blocks:
                delay += self.stall_for
            yield env.timeout(delay)
            done.succeed(env.now)

        self.env.process(serve(self.env))
        return done


class FakeFabric:
    def __init__(self, env, duration_s=4.0, service_time=0.001, **node_kwargs):
        self.library = VideoLibrary(1, duration_s, seed=7)
        self.block_size = BLOCK
        counts = [video.sequence.block_count(BLOCK) for video in self.library]
        self.layout = StripedLayout(counts, 1, 1, BLOCK)
        self.bus = NetworkBus(env, NetworkParameters())
        self.control_message_bytes = 128
        self._node = FakeNode(env, service_time, **node_kwargs)

    def node(self, index):
        return self._node

    def request_start(self, video_id):
        return None


def make_terminal(env, fabric, slots=4, pause_model=None):
    class FixedAccess:
        def select(self):
            return 0

    return Terminal(
        env=env,
        terminal_id=0,
        fabric=fabric,
        access=FixedAccess(),
        rng=RandomSource(3),
        memory_bytes=slots * BLOCK,
        pause_model=pause_model,
    )


def play_once(env, terminal, video_id=0, start_frame=0):
    done = env.process(terminal.play(video_id, start_frame))
    env.run(until=done)
    return terminal


class TestSmoothPlayback:
    def test_completes_without_glitches(self):
        env = Environment()
        fabric = FakeFabric(env)
        terminal = play_once(env, make_terminal(env, fabric))
        assert terminal.stats.glitches == 0
        assert terminal.stats.videos_completed == 1
        video = fabric.library[0]
        assert terminal.stats.blocks_received == video.sequence.block_count(BLOCK)

    def test_duration_close_to_video_length(self):
        env = Environment()
        fabric = FakeFabric(env, duration_s=4.0)
        terminal = make_terminal(env, fabric)
        done = env.process(terminal.play(0))
        env.run(until=done)
        # Priming is fast; total ≈ video duration.
        assert env.now == pytest.approx(4.0, abs=0.5)

    def test_startup_latency_recorded(self):
        env = Environment()
        fabric = FakeFabric(env)
        terminal = play_once(env, make_terminal(env, fabric))
        assert terminal.stats.startup_latency.count == 1
        assert terminal.stats.startup_latency.mean > 0

    def test_outstanding_never_exceeds_slots(self):
        env = Environment()
        fabric = FakeFabric(env, service_time=0.05)
        terminal = make_terminal(env, fabric, slots=4)
        done = env.process(terminal.play(0))
        env.run(until=done)
        # The fake node saw at most 4 concurrent outstanding requests:
        # request k+4 must come after request k's completion window.
        times = [t for t, _, _ in fabric._node.requests]
        blocks = [b for _, b, _ in fabric._node.requests]
        assert blocks == sorted(blocks)

    def test_mid_video_start(self):
        env = Environment()
        fabric = FakeFabric(env, duration_s=4.0)
        terminal = make_terminal(env, fabric)
        video = fabric.library[0]
        half = video.frame_count // 2
        done = env.process(terminal.play(0, start_frame=half))
        env.run(until=done)
        assert terminal.stats.glitches == 0
        assert env.now == pytest.approx(2.0, abs=0.5)
        # Only the second half's blocks were requested.
        first_block = min(b for _, b, _ in fabric._node.requests)
        expected = int(video.sequence.cumulative[half]) // BLOCK
        assert first_block == expected


class TestDeadlines:
    def test_deadlines_nondecreasing_in_block_order(self):
        env = Environment()
        fabric = FakeFabric(env)
        play_once(env, make_terminal(env, fabric))
        by_block = sorted(fabric._node.requests, key=lambda r: r[1])
        deadlines = [d for _, _, d in by_block]
        assert all(a <= b + 1e-9 for a, b in zip(deadlines, deadlines[1:]))

    def test_deadline_matches_display_time_of_first_frame(self):
        env = Environment()
        fabric = FakeFabric(env)
        terminal = make_terminal(env, fabric)
        done = env.process(terminal.play(0))
        env.run(until=done)
        video = fabric.library[0]
        schedule = video.schedule(BLOCK)
        # For a steady-state request (block issued while playing), the
        # deadline is anchor + first_frame/fps; check consistency.
        late_requests = [
            (t, b, d) for t, b, d in fabric._node.requests if b >= terminal.slots
        ]
        t, block, deadline = late_requests[-1]
        first_frame = int(schedule.first_frame[block])
        expected = terminal._anchor + first_frame / video.fps
        assert deadline == pytest.approx(expected, abs=1e-6)


class TestGlitches:
    def test_slow_server_causes_glitches(self):
        env = Environment()
        # Each block holds ~0.5s of video at 4 Mbit/s; a 0.8s service
        # time cannot sustain playback.
        fabric = FakeFabric(env, service_time=0.8)
        terminal = play_once(env, make_terminal(env, fabric))
        assert terminal.stats.glitches > 0
        assert terminal.stats.glitch_durations.count == terminal.stats.glitches

    def test_single_stalled_block_one_glitch(self):
        env = Environment()
        fabric = FakeFabric(env, stall_blocks={10}, stall_for=3.0)
        terminal = play_once(env, make_terminal(env, fabric))
        assert terminal.stats.glitches == 1

    def test_deadline_misses_counted(self):
        env = Environment()
        fabric = FakeFabric(env, stall_blocks={10}, stall_for=3.0)
        terminal = play_once(env, make_terminal(env, fabric))
        assert terminal.stats.deadline_misses >= 1

    def test_glitch_reprimes_buffer(self):
        """After a glitch the terminal refills before restarting, so a
        short stall produces one glitch, not a burst."""
        env = Environment()
        fabric = FakeFabric(env, stall_blocks={8, 9}, stall_for=1.5)
        terminal = play_once(env, make_terminal(env, fabric))
        assert terminal.stats.glitches <= 2


class TestPauses:
    def test_pause_extends_playback(self):
        env = Environment()
        fabric = FakeFabric(env, duration_s=4.0)
        model = PauseModel(enabled=True, mean_pauses_per_video=3.0,
                           mean_pause_duration_s=1.0)
        terminal = make_terminal(env, fabric, pause_model=model)
        done = env.process(terminal.play(0))
        env.run(until=done)
        if terminal.stats.pauses_taken:
            assert env.now > 4.0
        assert terminal.stats.glitches == 0

    def test_pause_plan_sampling(self):
        model = PauseModel(enabled=True, mean_pauses_per_video=2.0,
                           mean_pause_duration_s=120.0)
        plan = model.sample(RandomSource(1), 10_000)
        assert plan == sorted(plan)
        assert all(0 <= frame < 10_000 for frame, _ in plan)
        assert all(duration > 0 for _, duration in plan)

    def test_disabled_model_empty_plan(self):
        assert PauseModel(enabled=False).sample(RandomSource(1), 100) == []


class TestSeek:
    def test_seek_restarts_at_new_position(self):
        env = Environment()
        fabric = FakeFabric(env, duration_s=4.0)
        terminal = make_terminal(env, fabric)
        video = fabric.library[0]
        target = int(video.frame_count * 0.75)

        play = env.process(terminal.play(0))

        def seeker(env):
            yield env.timeout(1.0)
            terminal.seek(target)

        env.process(seeker(env))
        env.run(until=play)  # old display loop exits on epoch change
        resume = env.process(terminal.resume_display_after_seek())
        env.run(until=resume)
        assert terminal._next_frame == video.frame_count
        assert env.now == pytest.approx(1.0 + 1.0, abs=0.5)

    def test_seek_validation(self):
        env = Environment()
        fabric = FakeFabric(env)
        terminal = make_terminal(env, fabric)
        with pytest.raises(ValueError):
            terminal.seek(0)  # no active video


class TestConstruction:
    def test_too_little_memory_rejected(self):
        env = Environment()
        fabric = FakeFabric(env)
        with pytest.raises(ValueError):
            make_terminal(env, fabric, slots=1)

    def test_bad_initial_fraction_rejected(self):
        env = Environment()
        fabric = FakeFabric(env)

        class FixedAccess:
            def select(self):
                return 0

        with pytest.raises(ValueError):
            Terminal(env, 0, fabric, FixedAccess(), RandomSource(1),
                     4 * BLOCK, initial_position_fraction=1.5)
