"""Tests for SpiffiConfig validation and derived quantities."""

import pytest

from repro import GB, KB, LayoutSpec, MB, ReplacementSpec, SpiffiConfig
from repro.prefetch import PrefetchSpec
from repro.sched import SchedulerSpec


class TestDefaults:
    def test_table1_base_configuration(self):
        config = SpiffiConfig()
        assert config.nodes == 4
        assert config.disks_per_node == 4
        assert config.disk_count == 16
        assert config.video_count == 64
        assert config.stripe_bytes == 512 * KB
        assert config.server_memory_bytes == 4 * GB
        assert config.terminal_memory_bytes == 2 * MB
        assert config.video_bit_rate_bps == 4_000_000.0
        assert config.cpu.speed_mips == 40.0
        assert config.drive.seek_factor_ms == 0.283
        assert config.drive.rotation_time_ms == 8.333

    def test_derived_pages(self):
        config = SpiffiConfig()
        # 1 GB per node at 512 KB pages.
        assert config.pages_per_node == 2048
        assert config.terminal_slots == 4

    def test_warmup_composition(self):
        config = SpiffiConfig(start_spread_s=10, warmup_grace_s=5, measure_s=60)
        assert config.warmup_s == 15
        assert config.total_sim_time_s == 75


class TestValidation:
    def test_bad_layout(self):
        # The error names the registered layouts so plugin authors can
        # see what is actually available.
        with pytest.raises(ValueError, match="striped"):
            SpiffiConfig(layout=LayoutSpec("raid5"))

    def test_bad_policy(self):
        with pytest.raises(ValueError, match="global_lru"):
            SpiffiConfig(replacement_policy=ReplacementSpec("mru"))

    def test_bad_access_model(self):
        with pytest.raises(ValueError, match="zipf"):
            SpiffiConfig(access_model="pareto")

    def test_wrong_spec_type(self):
        with pytest.raises(TypeError):
            SpiffiConfig(layout=42)
        with pytest.raises(TypeError):
            SpiffiConfig(replacement_policy=3.5)

    def test_terminal_memory_too_small(self):
        with pytest.raises(ValueError):
            SpiffiConfig(terminal_memory_bytes=512 * KB)

    def test_server_memory_too_small(self):
        with pytest.raises(ValueError):
            SpiffiConfig(server_memory_bytes=1 * MB)

    def test_zero_terminals(self):
        with pytest.raises(ValueError):
            SpiffiConfig(terminals=0)

    def test_zero_measure(self):
        with pytest.raises(ValueError):
            SpiffiConfig(measure_s=0)


class TestLegacyStrings:
    """Bare component-name strings no longer coerce: specs only."""

    def test_layout_string_rejected(self):
        with pytest.raises(TypeError, match="LayoutSpec"):
            SpiffiConfig(layout="nonstriped")

    def test_replacement_string_rejected(self):
        with pytest.raises(TypeError, match="ReplacementSpec"):
            SpiffiConfig(replacement_policy="love_prefetch")

    def test_admission_string_rejected(self):
        with pytest.raises(TypeError, match="AdmissionSpec"):
            SpiffiConfig(admission="bandwidth")


class TestReplace:
    def test_replace_returns_new_config(self):
        config = SpiffiConfig()
        other = config.replace(terminals=50)
        assert other.terminals == 50
        assert config.terminals == 100
        assert other.disk_count == config.disk_count

    def test_describe_mentions_algorithms(self):
        config = SpiffiConfig(
            scheduler=SchedulerSpec("realtime"),
            prefetch=PrefetchSpec("delayed"),
            replacement_policy=ReplacementSpec("love_prefetch"),
        )
        text = config.describe()
        assert "real-time" in text
        assert "delayed" in text
        assert "love_prefetch" in text
