"""Third-party components plug in through the registries alone.

These tests register a new scheduler, layout, and replacement policy
via the public ``register_*`` entry points and run full simulations
selecting them by spec — without modifying ``repro.core.system`` (or
any other core module).  This is the extension contract the spec
redesign exists to provide.
"""

import pytest

from repro.api import (
    LayoutSpec,
    MB,
    ReplacementSpec,
    SchedulerSpec,
    SpiffiConfig,
    layout_names,
    register_layout,
    register_replacement,
    register_scheduler,
    replacement_names,
    run_simulation,
    scheduler_names,
)
from repro.bufferpool.policies import GlobalLru
from repro.bufferpool.registry import _REGISTRY as _replacement_registry
from repro.layout.registry import _REGISTRY as _layout_registry
from repro.layout.striped import StripedLayout
from repro.sched.elevator import ElevatorScheduler
from repro.sched.registry import _REGISTRY as _scheduler_registry


def tiny_config(**overrides):
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=8,
        videos_per_disk=2,
        video_length_s=60.0,
        server_memory_bytes=64 * MB,
        start_spread_s=2.0,
        warmup_grace_s=2.0,
        measure_s=10.0,
        seed=5,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


@pytest.fixture
def scratch_registries():
    """Roll back any names the test registers."""
    before = (
        set(_scheduler_registry),
        set(_layout_registry),
        set(_replacement_registry),
    )
    yield
    for registry, names in zip(
        (_scheduler_registry, _layout_registry, _replacement_registry), before
    ):
        for name in set(registry) - names:
            del registry[name]


class CountingLru(GlobalLru):
    """A plugin policy: global LRU that counts its insertions."""

    name = "counting_lru"

    def __init__(self):
        super().__init__()
        self.inserts = 0

    def on_insert(self, page, prefetched):
        self.inserts += 1
        super().on_insert(page, prefetched)


class TestSchedulerPlugin:
    def test_registered_scheduler_runs(self, scratch_registries):
        built = []

        def factory(spec):
            scheduler = ElevatorScheduler()
            built.append(scheduler)
            return scheduler

        register_scheduler("plugin_elevator", factory)
        assert "plugin_elevator" in scheduler_names()
        metrics = run_simulation(
            tiny_config(scheduler=SchedulerSpec("plugin_elevator"))
        )
        assert metrics.blocks_delivered > 0
        assert len(built) == 4  # one scheduler per disk

    def test_plugin_matches_builtin_it_wraps(self, scratch_registries):
        register_scheduler("plugin_elevator", lambda spec: ElevatorScheduler())
        plugin = run_simulation(
            tiny_config(scheduler=SchedulerSpec("plugin_elevator"))
        )
        builtin = run_simulation(tiny_config(scheduler=SchedulerSpec("elevator")))
        assert plugin.deterministic_dict() == builtin.deterministic_dict()


class TestLayoutPlugin:
    def test_registered_layout_runs(self, scratch_registries):
        register_layout(
            "plugin_striped",
            lambda counts, nodes, disks, block_size, rng: StripedLayout(
                counts, nodes, disks, block_size
            ),
        )
        assert "plugin_striped" in layout_names()
        metrics = run_simulation(tiny_config(layout=LayoutSpec("plugin_striped")))
        builtin = run_simulation(tiny_config(layout=LayoutSpec("striped")))
        assert metrics.deterministic_dict() == builtin.deterministic_dict()


class TestReplacementPlugin:
    def test_registered_policy_runs(self, scratch_registries):
        instances = []

        def factory():
            policy = CountingLru()
            instances.append(policy)
            return policy

        register_replacement("counting_lru", factory)
        assert "counting_lru" in replacement_names()
        metrics = run_simulation(
            tiny_config(replacement_policy=ReplacementSpec("counting_lru"))
        )
        assert metrics.blocks_delivered > 0
        assert len(instances) == 2  # one policy per node pool
        assert sum(policy.inserts for policy in instances) > 0


class TestRegistryErrors:
    def test_unknown_names_list_registry(self, scratch_registries):
        register_layout(
            "plugin_probe",
            lambda counts, nodes, disks, block_size, rng: StripedLayout(
                counts, nodes, disks, block_size
            ),
        )
        # The error message reflects the live registry, plugins included.
        with pytest.raises(ValueError, match="plugin_probe"):
            LayoutSpec("definitely_not_registered")

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_layout("", None)
        with pytest.raises(ValueError):
            register_replacement(None, GlobalLru)
        with pytest.raises(ValueError):
            register_scheduler(42, lambda spec: ElevatorScheduler())
