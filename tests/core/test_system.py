"""End-to-end tests of the assembled system (small configurations)."""

import dataclasses

import pytest

from repro import LayoutSpec, MB, ReplacementSpec, SpiffiConfig, SpiffiSystem, run_simulation
from repro.prefetch import PrefetchSpec
from repro.sched import SchedulerSpec


def tiny_config(**overrides):
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=8,
        videos_per_disk=2,
        video_length_s=60.0,
        server_memory_bytes=64 * MB,
        stripe_bytes=256 * 1024,
        terminal_memory_bytes=1 * MB,
        start_spread_s=2.0,
        warmup_grace_s=3.0,
        measure_s=20.0,
        seed=11,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


class TestEndToEnd:
    def test_light_load_glitch_free(self):
        metrics = run_simulation(tiny_config())
        assert metrics.glitches == 0
        assert metrics.blocks_delivered > 0
        assert 0 < metrics.disk_utilization_mean < 1.0

    def test_metrics_cover_measurement_window_only(self):
        config = tiny_config()
        metrics = run_simulation(config)
        # ~0.5 blocks/s per terminal at 4 Mbit/s with 256 KB blocks is
        # 2/s; 8 terminals over 20s ≈ 320 blocks at most.
        assert metrics.blocks_delivered <= 8 * 2.1 * config.measure_s

    def test_determinism_same_seed(self):
        a = run_simulation(tiny_config())
        b = run_simulation(tiny_config())
        assert a == b

    def test_different_seed_differs(self):
        a = run_simulation(tiny_config(seed=1))
        b = run_simulation(tiny_config(seed=2))
        assert a != b

    def test_overload_produces_glitches(self):
        # 4 disks * 7.4 MB/s ≈ 30 MB/s; 120 terminals need 60 MB/s.
        metrics = run_simulation(tiny_config(terminals=120))
        assert metrics.glitches > 0
        assert metrics.glitching_terminals > 0

    def test_network_peak_tracks_load(self):
        metrics = run_simulation(tiny_config())
        per_terminal = 4e6 / 8  # bytes/s of compressed video
        assert metrics.network_peak_bytes_per_s >= per_terminal
        assert metrics.network_peak_bytes_per_s < 40 * per_terminal

    def test_cpu_utilization_low_as_paper_claims(self):
        metrics = run_simulation(tiny_config())
        assert metrics.cpu_utilization_mean < 0.2

    def test_run_twice_rejected(self):
        system = SpiffiSystem(tiny_config())
        system.run()
        with pytest.raises(RuntimeError):
            system.start()

    def test_disk_utilizations_per_disk(self):
        system = SpiffiSystem(tiny_config())
        system.run()
        utils = system.disk_utilizations()
        assert len(utils) == 4
        assert all(0 <= u <= 1 for u in utils)


class TestAlgorithmWiring:
    @pytest.mark.parametrize("name", ["elevator", "round_robin", "gss", "realtime", "fcfs", "edf"])
    def test_every_scheduler_runs(self, name):
        config = tiny_config(
            scheduler=SchedulerSpec(name), measure_s=10.0, terminals=4
        )
        metrics = run_simulation(config)
        assert metrics.blocks_delivered > 0

    @pytest.mark.parametrize("mode", ["none", "standard", "realtime", "delayed"])
    def test_every_prefetch_mode_runs(self, mode):
        config = tiny_config(
            prefetch=PrefetchSpec(mode), measure_s=10.0, terminals=4
        )
        metrics = run_simulation(config)
        assert metrics.blocks_delivered > 0

    @pytest.mark.parametrize(
        "policy", [ReplacementSpec("global_lru"), ReplacementSpec("love_prefetch")]
    )
    def test_every_policy_runs(self, policy):
        metrics = run_simulation(
            tiny_config(replacement_policy=policy, measure_s=10.0, terminals=4)
        )
        assert metrics.blocks_delivered > 0

    def test_nonstriped_layout_runs(self):
        metrics = run_simulation(tiny_config(layout=LayoutSpec("nonstriped"), measure_s=10.0))
        assert metrics.blocks_delivered > 0

    def test_prefetching_yields_buffer_hits(self):
        with_prefetch = run_simulation(tiny_config(prefetch=PrefetchSpec("standard")))
        without = run_simulation(tiny_config(prefetch=PrefetchSpec("none")))
        assert with_prefetch.buffer_hit_rate > without.buffer_hit_rate

    def test_piggyback_increases_sharing(self):
        # A small pool makes accidental sharing between staggered
        # streams impossible, while exactly-synchronised piggybacked
        # streams still merge onto the same pages and I/Os.
        base = tiny_config(
            terminals=12,
            initial_position_fraction=0.0,
            start_spread_s=10.0,
            warmup_grace_s=35.0,
            measure_s=15.0,
            zipf_skew=1.5,
            server_memory_bytes=8 * MB,
        )
        solo = run_simulation(base)
        batched = run_simulation(base.replace(piggyback_window_s=20.0))
        assert batched.rereference_rate > solo.rereference_rate

    def test_metrics_are_frozen_dataclass(self):
        metrics = run_simulation(tiny_config(measure_s=5.0, terminals=2))
        with pytest.raises(dataclasses.FrozenInstanceError):
            metrics.glitches = 5
