"""Tests for RunMetrics helpers and collection plumbing."""

import pytest

from repro import MB, SpiffiConfig
from repro.core.metrics import collect_metrics
from repro.core.system import SpiffiSystem


@pytest.fixture(scope="module")
def finished_system():
    system = SpiffiSystem(SpiffiConfig(
        nodes=1, disks_per_node=2, terminals=6, videos_per_disk=2,
        video_length_s=60.0, server_memory_bytes=64 * MB,
        start_spread_s=1.0, warmup_grace_s=2.0, measure_s=15.0, seed=3,
    ))
    metrics = system.run()
    return system, metrics


class TestRunMetrics:
    def test_glitch_free_property(self, finished_system):
        _, metrics = finished_system
        assert metrics.glitch_free == (metrics.glitches == 0)

    def test_network_unit_conversion(self, finished_system):
        _, metrics = finished_system
        assert metrics.network_peak_mbytes_per_s == pytest.approx(
            metrics.network_peak_bytes_per_s / MB
        )

    def test_summary_mentions_key_numbers(self, finished_system):
        _, metrics = finished_system
        summary = metrics.summary()
        assert f"terminals={metrics.terminals}" in summary
        assert f"glitches={metrics.glitches}" in summary

    def test_utilizations_are_fractions(self, finished_system):
        _, metrics = finished_system
        assert 0.0 <= metrics.disk_utilization_min <= metrics.disk_utilization_mean
        assert metrics.disk_utilization_mean <= metrics.disk_utilization_max <= 1.0
        assert 0.0 <= metrics.cpu_utilization_mean <= 1.0

    def test_rates_are_fractions(self, finished_system):
        _, metrics = finished_system
        for rate in (metrics.buffer_hit_rate, metrics.buffer_inflight_hit_rate,
                     metrics.rereference_rate):
            assert 0.0 <= rate <= 1.0

    def test_recollection_is_idempotent(self, finished_system):
        system, metrics = finished_system
        again = collect_metrics(system, metrics.measure_s)
        assert again == metrics

    def test_blocks_consistency(self, finished_system):
        _, metrics = finished_system
        # Every delivered block was a buffer reference at some node.
        assert metrics.buffer_references >= metrics.blocks_delivered > 0
