"""Tests for admission control."""

import pytest

from repro.analytic import StreamParameters
from repro.server.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionSpec,
    admission_policy_names,
    register_admission_policy,
)
from repro.sim import Environment
from repro.storage import DriveParameters

GB = 1024 ** 3


class TestAdmissionSpec:
    def test_none_has_no_limit(self):
        spec = AdmissionSpec()
        limit = spec.stream_limit(16, DriveParameters(), StreamParameters(), 5 * GB)
        assert limit is None

    def test_fixed_cap(self):
        spec = AdmissionSpec(policy="fixed", max_streams=42)
        assert spec.stream_limit(16, DriveParameters(), StreamParameters(), 5 * GB) == 42

    def test_bandwidth_reservation(self):
        spec = AdmissionSpec(policy="bandwidth", headroom=0.5)
        limit = spec.stream_limit(16, DriveParameters(), StreamParameters(), 5 * GB)
        # 16 disks * 7.4 MB/s * 0.5 / 0.5 MB/s ≈ 118 streams.
        assert limit == int(16 * 7.4e6 * 0.5 / 5e5)

    def test_analytic_bound_conservative(self):
        spec = AdmissionSpec(policy="analytic")
        analytic = spec.stream_limit(16, DriveParameters(), StreamParameters(), 5 * GB)
        bandwidth = AdmissionSpec(policy="bandwidth", headroom=1.0).stream_limit(
            16, DriveParameters(), StreamParameters(), 5 * GB
        )
        assert 0 < analytic < bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionSpec(policy="vibes")
        with pytest.raises(ValueError):
            AdmissionSpec(policy="fixed", max_streams=0)
        with pytest.raises(ValueError):
            AdmissionSpec(headroom=0.0)

    def test_labels(self):
        assert AdmissionSpec().label() == "none"
        assert AdmissionSpec("fixed", max_streams=7).label() == "fixed(7)"
        assert AdmissionSpec("bandwidth", headroom=0.5).label() == "bandwidth(0.5)"


class TestAdmissionRegistry:
    def test_builtins_registered(self):
        names = admission_policy_names()
        for builtin in ADMISSION_POLICIES:
            assert builtin in names

    def test_unknown_policy_error_names_registry(self):
        with pytest.raises(ValueError) as err:
            AdmissionSpec(policy="vibes")
        message = str(err.value)
        assert "vibes" in message
        for name in admission_policy_names():
            assert name in message

    def test_plugin_policy(self, monkeypatch):
        import repro.server.admission as admission_module

        monkeypatch.setattr(
            admission_module, "_REGISTRY", dict(admission_module._REGISTRY)
        )
        register_admission_policy("ten", lambda spec, *context: 10)
        spec = AdmissionSpec(policy="ten")
        assert "ten" in admission_policy_names()
        limit = spec.stream_limit(16, DriveParameters(), StreamParameters(), 5 * GB)
        assert limit == 10

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_admission_policy("", lambda spec, *context: None)
        with pytest.raises(ValueError):
            register_admission_policy(None, lambda spec, *context: None)


class TestAdmissionController:
    def test_unlimited_admits_all(self):
        env = Environment()
        controller = AdmissionController(env, limit=None)
        for _ in range(100):
            assert controller.request_slot().triggered
        assert controller.queued == 0

    def test_cap_queues_excess(self):
        env = Environment()
        controller = AdmissionController(env, limit=2)
        first = controller.request_slot()
        second = controller.request_slot()
        third = controller.request_slot()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert controller.queue_length == 1

    def test_release_admits_waiter_fifo(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        waiter_a = controller.request_slot()
        waiter_b = controller.request_slot()
        controller.release_slot()
        assert waiter_a.triggered
        assert not waiter_b.triggered
        controller.release_slot()
        assert waiter_b.triggered

    def test_wait_time_recorded(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        waiter = controller.request_slot()

        def releaser(env):
            yield env.timeout(7.0)
            controller.release_slot()

        env.process(releaser(env))
        env.run(until=waiter)
        assert controller.wait_times.maximum == pytest.approx(7.0)

    def test_release_without_active_rejected(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        with pytest.raises(ValueError):
            controller.release_slot()


class TestWaitQueueStats:
    """The bounded-queue hooks the open-system workload layer uses."""

    def test_would_queue_tracks_capacity(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        assert not controller.would_queue
        controller.request_slot()
        assert controller.would_queue

    def test_would_queue_unlimited_only_when_shedding(self):
        env = Environment()
        controller = AdmissionController(env, limit=None)
        assert not controller.would_queue
        controller.begin_shed()
        assert controller.would_queue

    def test_cancel_removes_waiter(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        waiter = controller.request_slot()
        assert controller.queue_length == 1
        assert controller.cancel(waiter)
        assert controller.queue_length == 0
        # The slot now goes to nobody: release keeps capacity free.
        controller.release_slot()
        assert controller.active == 0

    def test_cancel_admitted_event_is_noop(self):
        env = Environment()
        controller = AdmissionController(env, limit=2)
        admitted = controller.request_slot()
        assert admitted.triggered
        assert not controller.cancel(admitted)

    def test_cancelled_waiter_never_admitted(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        first = controller.request_slot()
        second = controller.request_slot()
        controller.cancel(first)
        controller.release_slot()
        assert not first.triggered
        assert second.triggered

    def test_queue_length_time_series(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()

        def scenario(env):
            yield env.timeout(4.0)  # queue empty for 4s
            controller.request_slot()
            yield env.timeout(4.0)  # one waiter for 4s
            controller.release_slot()
            yield env.timeout(8.0)  # empty again for 8s

        env.process(scenario(env))
        env.run(until=16.0)
        assert controller.queue_lengths.maximum == 1
        assert controller.queue_lengths.mean(16.0) == pytest.approx(4.0 / 16.0)

    def test_max_wait_reported(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        waiter = controller.request_slot()

        def releaser(env):
            yield env.timeout(9.0)
            controller.release_slot()

        env.process(releaser(env))
        env.run(until=waiter)
        assert controller.max_wait_s == pytest.approx(9.0)

    def test_reset_clears_queue_series(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        controller.request_slot()
        controller.reset_stats()
        assert controller.max_wait_s == 0.0
        # The waiter is still queued: the level survives the reset.
        assert controller.queue_lengths.level == 1


class TestShedding:
    """Degraded mode: admission pauses while a disk outage is active."""

    def test_shed_queues_even_with_capacity(self):
        env = Environment()
        controller = AdmissionController(env, limit=4)
        controller.begin_shed()
        waiter = controller.request_slot()
        assert not waiter.triggered
        assert controller.shed_admissions == 1
        controller.end_shed()
        assert waiter.triggered

    def test_release_does_not_admit_while_shedding(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        waiter = controller.request_slot()
        controller.begin_shed()
        controller.release_slot()
        assert not waiter.triggered
        controller.end_shed()
        assert waiter.triggered

    def test_nested_sheds_drain_at_zero(self):
        env = Environment()
        controller = AdmissionController(env, limit=2)
        controller.begin_shed()
        controller.begin_shed()
        waiter = controller.request_slot()
        controller.end_shed()
        assert controller.shedding
        assert not waiter.triggered
        controller.end_shed()
        assert not controller.shedding
        assert waiter.triggered

    def test_drain_respects_capacity(self):
        env = Environment()
        controller = AdmissionController(env, limit=1)
        controller.request_slot()
        controller.begin_shed()
        waiter = controller.request_slot()
        controller.end_shed()
        # The slot is still held; the waiter keeps waiting.
        assert not waiter.triggered
        controller.release_slot()
        assert waiter.triggered


class TestEndToEndAdmission:
    def test_fixed_cap_prevents_overload_glitches(self):
        from repro import MB, SpiffiConfig, run_simulation

        base = dict(
            nodes=2, disks_per_node=2, videos_per_disk=2,
            video_length_s=120.0, server_memory_bytes=128 * MB,
            start_spread_s=3.0, warmup_grace_s=10.0, measure_s=40.0,
            terminals=90,  # far beyond 4-disk capacity (~59)
            seed=5,
        )
        unlimited = run_simulation(SpiffiConfig(**base))
        capped = run_simulation(
            SpiffiConfig(admission=AdmissionSpec(policy="fixed", max_streams=40), **base)
        )
        assert unlimited.glitches > 0
        assert capped.glitches == 0
        assert capped.admissions_queued > 0
        assert capped.admission_mean_wait_s >= 0.0
