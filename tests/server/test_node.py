"""Tests for the video server node service path."""



from repro.bufferpool import BufferPool, make_policy
from repro.cpu import CpuParameters, Processor
from repro.layout import StripedLayout
from repro.media import VideoLibrary
from repro.netsim import NetworkBus, NetworkParameters
from repro.prefetch import DiskPrefetcher, PrefetchSpec
from repro.sched import SchedulerSpec
from repro.server import VideoServerNode
from repro.sim import Environment, RandomSource
from repro.storage import DiskDrive, DiskGeometry, DriveParameters

BLOCK = 64 * 1024


def make_node(env, prefetch_mode="standard", depth=1, pool_pages=64):
    library = VideoLibrary(1, 4.0, seed=2)
    counts = [video.sequence.block_count(BLOCK) for video in library]
    layout = StripedLayout(counts, 1, 2, BLOCK)
    drive_params = DriveParameters()
    drives = []
    for disk in range(2):
        used = max(layout.disk_used_bytes(disk), drive_params.cylinder_bytes)
        geometry = DiskGeometry(drive_params.cylinder_bytes, used)
        drives.append(
            DiskDrive(env, disk, drive_params, geometry,
                      SchedulerSpec("elevator").build(), RandomSource(disk))
        )
    pool = BufferPool(env, pool_pages, make_policy("love_prefetch"))
    cpu_params = CpuParameters()
    cpu = Processor(env, cpu_params, 0)
    spec = PrefetchSpec(prefetch_mode, depth=depth) if prefetch_mode != "none" else PrefetchSpec("none")
    prefetchers = [
        DiskPrefetcher(env, spec, drive, pool, cpu, cpu_params) for drive in drives
    ]
    bus = NetworkBus(env, NetworkParameters())
    node = VideoServerNode(
        env=env, node_id=0, cpu=cpu, cpu_params=cpu_params, drives=drives,
        pool=pool, bus=bus, library=library, layout=layout, block_size=BLOCK,
        prefetch_spec=spec, prefetchers=prefetchers,
    )
    return node, library, layout


def request(env, node, layout, block, deadline=60.0, terminal=1):
    placement = layout.locate(0, block)
    return node.request_block(
        terminal_id=terminal, video_id=0, block=block,
        size=BLOCK, placement=placement, deadline=deadline,
    )


class TestServicePath:
    def test_miss_reads_disk_and_replies(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="none")
        done = request(env, node, layout, block=0)
        env.run(until=done)
        assert node.stats.requests == 1
        assert node.stats.disk_reads == 1
        assert node.pool.lookup((0, 0)) is not None
        # Reply of 64 KB crossed the bus.
        assert node.bus.traffic.total >= BLOCK

    def test_second_request_hits(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="none")
        first = request(env, node, layout, block=0)
        env.run(until=first)
        reads_before = node.stats.disk_reads
        second = request(env, node, layout, block=0, terminal=2)
        env.run(until=second)
        assert node.stats.disk_reads == reads_before
        assert node.pool.stats.hits == 1
        assert node.pool.stats.rereferences == 1

    def test_concurrent_same_block_merges_onto_one_io(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="none")
        first = request(env, node, layout, block=0, terminal=1)
        second = request(env, node, layout, block=0, terminal=2)
        env.run(until=second)
        env.run(until=first)
        assert node.stats.disk_reads == 1
        assert node.pool.stats.inflight_hits == 1

    def test_page_unpinned_after_reply(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="none")
        done = request(env, node, layout, block=0)
        env.run(until=done)
        env.run()
        assert node.pool.lookup((0, 0)).pins == 0

    def test_prefetch_triggered_for_same_disk_successor(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="standard")
        done = request(env, node, layout, block=0)
        env.run(until=done)
        env.run()  # let the prefetcher drain
        successor = layout.next_block_on_same_disk(0, 0)
        page = node.pool.lookup((0, successor))
        assert page is not None
        assert page.loaded_by_prefetch

    def test_prefetch_depth_covers_multiple_blocks(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="standard", depth=3)
        done = request(env, node, layout, block=0)
        env.run(until=done)
        env.run()
        blocks = [0]
        current = 0
        for _ in range(3):
            current = layout.next_block_on_same_disk(0, current)
            assert node.pool.lookup((0, current)) is not None

    def test_realtime_prefetch_estimates_deadline(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="realtime")
        done = request(env, node, layout, block=0, deadline=10.0)
        env.run(until=done)
        env.run()
        successor = layout.next_block_on_same_disk(0, 0)
        schedule = library[0].schedule(BLOCK)
        frames_ahead = int(schedule.first_frame[successor]) - int(schedule.first_frame[0])
        # The prefetched page's disk request carried base + frames/fps.
        # It has completed by now; verify via prefetcher stats instead.
        prefetcher = node.prefetchers[layout.locate(0, successor).disk_in_node]
        assert prefetcher.stats.issued >= 1
        assert frames_ahead > 0

    def test_deadline_tightening_on_inflight_merge(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="none")
        first = request(env, node, layout, block=0, deadline=1000.0)
        # Merge immediately with a much tighter deadline.
        second = request(env, node, layout, block=0, deadline=1.0, terminal=2)
        page = None

        def check(env):
            yield env.timeout(0.002)  # after CPU receive + start I/O
            page = node.pool.lookup((0, 0))
            assert page is not None
            if page.disk_request is not None:
                assert page.disk_request.deadline < 2.0

        env.process(check(env))
        env.run(until=second)

    def test_reply_allowance_positive(self):
        env = Environment()
        node, _, _ = make_node(env)
        allowance = node._reply_allowance(BLOCK)
        expected_wire = NetworkParameters().transit_time(BLOCK)
        assert allowance > expected_wire
        assert allowance < expected_wire + 0.001

    def test_last_block_triggers_no_prefetch(self):
        env = Environment()
        node, library, layout = make_node(env, prefetch_mode="standard")
        last = library[0].sequence.block_count(BLOCK) - 1
        done = request(env, node, layout, block=last)
        env.run(until=done)
        env.run()
        # No successor exists; prefetcher scheduled nothing beyond.
        assert layout.next_block_on_same_disk(0, last) is None
