"""Tests for the piggybacking coordinator (§8.2)."""

import pytest

from repro.server import PiggybackCoordinator
from repro.sim import Environment


class TestPiggyback:
    def test_disabled_returns_none(self):
        env = Environment()
        coordinator = PiggybackCoordinator(env, window_s=0.0)
        assert coordinator.request_start(3) is None

    def test_batch_launches_after_window(self):
        env = Environment()
        coordinator = PiggybackCoordinator(env, window_s=10.0)
        launched = []

        def starter(env, delay, tag):
            yield env.timeout(delay)
            event = coordinator.request_start(0)
            yield event
            launched.append((tag, env.now))

        env.process(starter(env, 0.0, "first"))
        env.process(starter(env, 4.0, "second"))
        env.run()
        # Both launch together, 10s after the batch opened.
        assert launched == [("first", 10.0), ("second", 10.0)]
        assert coordinator.terminals_batched == 1
        assert coordinator.batches_launched == 1

    def test_late_requester_opens_new_batch(self):
        env = Environment()
        coordinator = PiggybackCoordinator(env, window_s=5.0)
        launched = []

        def starter(env, delay, tag):
            yield env.timeout(delay)
            event = coordinator.request_start(0)
            yield event
            launched.append((tag, env.now))

        env.process(starter(env, 0.0, "a"))
        env.process(starter(env, 7.0, "b"))  # after batch a launched
        env.run()
        assert launched == [("a", 5.0), ("b", 12.0)]
        assert coordinator.batches_launched == 2

    def test_different_videos_different_batches(self):
        env = Environment()
        coordinator = PiggybackCoordinator(env, window_s=5.0)
        coordinator.request_start(0)
        coordinator.request_start(1)
        assert coordinator.batches_launched == 2
        assert coordinator.terminals_batched == 0

    def test_sharing_fraction(self):
        env = Environment()
        coordinator = PiggybackCoordinator(env, window_s=5.0)
        coordinator.request_start(0)
        coordinator.request_start(0)
        coordinator.request_start(0)
        assert coordinator.sharing_fraction == pytest.approx(2 / 3)

    def test_negative_window_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            PiggybackCoordinator(env, window_s=-1.0)
