"""The public-API audit: ``repro.api`` is complete, sorted, and
uniform.

Three contracts:

* ``__all__`` is exactly the module's public surface, ASCII-sorted —
  nothing exported that isn't declared, nothing declared that isn't
  there;
* every registry-backed ``*Spec`` ships its ``*_names()`` enumerator
  and ``register_*`` extension hook alongside it (pure value specs are
  exempt — they have nothing to register);
* the examples are written against ``repro.api`` (or the ``repro``
  root) only — no deep imports into the package internals.
"""

import ast
import os
import types

import repro.api as api

#: Registry-backed spec -> (its names enumerator, its register hook).
SPEC_REGISTRIES = {
    "AdmissionSpec": ("admission_policy_names", "register_admission_policy"),
    "ArrivalSpec": ("arrival_process_names", "register_arrival_process"),
    "LayoutSpec": ("layout_names", "register_layout"),
    "PlacementSpec": ("placement_names", "register_placement"),
    "ProxySpec": ("prefix_policy_names", "register_prefix_policy"),
    "ReplacementSpec": ("replacement_names", "register_replacement"),
    "RouterSpec": ("router_names", "register_router"),
    "SchedulerSpec": ("scheduler_names", "register_scheduler"),
    "SharingSpec": ("sharing_policy_names", "register_sharing_policy"),
}

#: Pure value specs: parameters only, no registry behind them.
VALUE_SPECS = {"FaultSpec", "PrefetchSpec", "ReplicationSpec", "SelfHealSpec"}


def public_attributes():
    return {
        name
        for name, value in vars(api).items()
        if not name.startswith("_") and not isinstance(value, types.ModuleType)
    }


class TestAllList:
    def test_every_export_exists(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_all_matches_the_public_surface(self):
        assert public_attributes() == set(api.__all__)

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_ascii_sorted(self):
        assert list(api.__all__) == sorted(api.__all__)


class TestSpecUniformity:
    def spec_names(self):
        return {name for name in api.__all__ if name.endswith("Spec")}

    def test_every_spec_is_classified(self):
        unclassified = (
            self.spec_names() - set(SPEC_REGISTRIES) - VALUE_SPECS
        )
        assert unclassified == set(), (
            f"new spec(s) {sorted(unclassified)} must be added to "
            "SPEC_REGISTRIES (with their names/register hooks) or to "
            "VALUE_SPECS"
        )

    def test_registry_specs_ship_their_hooks(self):
        for spec, (names, register) in SPEC_REGISTRIES.items():
            assert spec in api.__all__, spec
            assert names in api.__all__, f"{spec} without {names}"
            assert register in api.__all__, f"{spec} without {register}"
            assert callable(getattr(api, names))
            assert callable(getattr(api, register))

    def test_enumerators_return_names(self):
        for _, (names, _) in SPEC_REGISTRIES.items():
            listed = getattr(api, names)()
            assert len(listed) > 0
            assert all(isinstance(name, str) for name in listed)

    def test_runnable_registry_is_exported(self):
        assert "run" in api.__all__
        assert "register_runnable" in api.__all__
        assert "runnable_kinds" in api.__all__
        assert set(api.runnable_kinds()) >= {"cluster", "system"}


class TestExamplesImportSurface:
    def examples_dir(self):
        return os.path.join(os.path.dirname(api.__file__), "..", "..", "examples")

    def repro_imports(self, path):
        tree = ast.parse(open(path).read())
        found = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                found += [a.name for a in node.names if a.name.startswith("repro")]
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.startswith("repro"):
                    found.append(node.module)
        return found

    def test_examples_exist(self):
        assert len(os.listdir(self.examples_dir())) >= 5

    def test_examples_import_only_the_api(self):
        offenders = {}
        for name in sorted(os.listdir(self.examples_dir())):
            if not name.endswith(".py"):
                continue
            path = os.path.join(self.examples_dir(), name)
            deep = [
                module
                for module in self.repro_imports(path)
                if module not in ("repro", "repro.api")
            ]
            if deep:
                offenders[name] = deep
        assert offenders == {}, (
            f"examples must import from repro.api only: {offenders}"
        )
