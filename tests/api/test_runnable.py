"""The unified ``run()`` entry point and its registry: dispatch by
config type, third-party registration, the legacy wrappers' type
guards, and cache integration."""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, run_cluster
from repro.core.system import run_simulation
from repro.experiments.results import RunCache, config_digest
from repro.experiments.runner import Runner, RunRequest, SerialExecutor
from repro.runnable import (
    RunnableConfig,
    register_runnable,
    run,
    runnable_cache_dict,
    runnable_entry,
    runnable_kinds,
)

from tests.experiments.test_runner import example_metrics, tiny_config


class TestDispatch:
    def test_spiffi_config_dispatches_to_the_system(self):
        assert runnable_entry(tiny_config()).kind == "system"

    def test_cluster_config_dispatches_to_the_cluster(self):
        assert runnable_entry(ClusterConfig(node=tiny_config())).kind == "cluster"

    def test_run_executes_a_standalone_config(self):
        metrics = run(tiny_config())
        assert metrics.terminals == 4
        assert metrics.events_processed > 0

    def test_run_and_the_legacy_wrapper_agree(self):
        config = tiny_config()
        assert (
            run(config).deterministic_dict()
            == run_simulation(config).deterministic_dict()
        )

    def test_run_and_run_cluster_agree(self):
        config = ClusterConfig(node=tiny_config())
        assert (
            run(config).deterministic_dict()
            == run_cluster(config).deterministic_dict()
        )

    def test_unregistered_type_raises_with_the_known_kinds(self):
        with pytest.raises(TypeError, match="cluster, system"):
            run("not a config")

    def test_builtin_kinds_are_listed(self):
        assert set(runnable_kinds()) >= {"cluster", "system"}

    def test_configs_satisfy_the_protocol(self):
        assert isinstance(tiny_config(), RunnableConfig)
        assert isinstance(ClusterConfig(node=tiny_config()), RunnableConfig)


class TestLegacyWrapperGuards:
    def test_run_simulation_rejects_cluster_configs(self):
        with pytest.raises(TypeError, match="repro.api.run"):
            run_simulation(ClusterConfig(node=tiny_config()))

    def test_run_cluster_rejects_spiffi_configs(self):
        with pytest.raises(TypeError, match="repro.api.run"):
            run_cluster(tiny_config())


@dataclasses.dataclass(frozen=True)
class EchoConfig:
    """A minimal third-party runnable for registration tests."""

    seed: int = 3
    terminals: int = 2

    @property
    def measure_s(self) -> float:
        return 1.0

    def replace(self, **changes) -> "EchoConfig":
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        return f"echo seed={self.seed}"


def _echo_run(config):
    return example_metrics(terminals=config.terminals)


def _echo_cache_dict(config):
    return {"echo": {"seed": config.seed, "terminals": config.terminals}}


@pytest.fixture()
def echo_registered():
    register_runnable(
        EchoConfig, kind="echo", run=_echo_run, cache_dict=_echo_cache_dict
    )
    try:
        yield
    finally:
        from repro import runnable

        del runnable._REGISTRY[EchoConfig]


class TestThirdPartyRegistration:
    def test_registered_type_runs(self, echo_registered):
        assert run(EchoConfig(terminals=9)).terminals == 9
        assert "echo" in runnable_kinds()

    def test_protocol_accepts_the_custom_type(self, echo_registered):
        assert isinstance(EchoConfig(), RunnableConfig)

    def test_cache_dict_and_digest_flow_through(self, echo_registered):
        config = EchoConfig(seed=5)
        assert runnable_cache_dict(config) == _echo_cache_dict(config)
        assert config_digest(config) != config_digest(EchoConfig(seed=6))

    def test_the_runner_and_cache_drive_it(self, echo_registered, tmp_path):
        runner = Runner(SerialExecutor(), cache=RunCache(str(tmp_path)))
        first = runner.run(RunRequest(EchoConfig(), tag="echo"))
        second = runner.run(RunRequest(EchoConfig(), tag="echo"))
        assert not first.failed and not first.cached
        assert second.cached
        assert (
            first.metrics.deterministic_dict()
            == second.metrics.deterministic_dict()
        )

    def test_reregistration_replaces_the_entry(self, echo_registered):
        register_runnable(
            EchoConfig,
            kind="echo",
            run=lambda config: example_metrics(terminals=99),
            cache_dict=_echo_cache_dict,
        )
        assert run(EchoConfig()).terminals == 99

    def test_bad_registrations_are_rejected(self):
        with pytest.raises(TypeError, match="class"):
            register_runnable(
                "EchoConfig", kind="echo", run=_echo_run, cache_dict=_echo_cache_dict
            )
        with pytest.raises(ValueError, match="kind"):
            register_runnable(
                EchoConfig, kind="", run=_echo_run, cache_dict=_echo_cache_dict
            )
