"""Tests for the per-disk prefetchers (standard, real-time, delayed)."""

import math

import pytest

from repro.bufferpool import BufferPool, make_policy
from repro.cpu import CpuParameters, Processor
from repro.prefetch import DiskPrefetcher, PrefetchOrder, PrefetchSpec
from repro.sched import FcfsScheduler
from repro.sim import Environment, RandomSource
from repro.storage import DiskDrive, DiskGeometry, DriveParameters


def make_rig(env, spec, pool_capacity=16):
    params = DriveParameters()
    geometry = DiskGeometry(params.cylinder_bytes, 100 * params.cylinder_bytes)
    drive = DiskDrive(env, 0, params, geometry, FcfsScheduler(), RandomSource(1))
    pool = BufferPool(env, pool_capacity, make_policy("love_prefetch"))
    cpu_params = CpuParameters()
    cpu = Processor(env, cpu_params, 0)
    prefetcher = DiskPrefetcher(env, spec, drive, pool, cpu, cpu_params)
    return prefetcher, pool, drive


def order(block, deadline=math.inf, size=1024):
    return PrefetchOrder(
        key=("v", block),
        size=size,
        byte_offset=block * 512 * 1024,
        cylinder=0,
        deadline=deadline,
    )


class TestSpec:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PrefetchSpec("psychic")
        with pytest.raises(ValueError):
            PrefetchSpec("standard", processes_per_disk=0)
        with pytest.raises(ValueError):
            PrefetchSpec("delayed", max_advance_s=0)
        with pytest.raises(ValueError):
            PrefetchSpec("standard", depth=0)
        with pytest.raises(ValueError):
            PrefetchSpec("standard", pool_share=0)

    def test_uses_deadlines(self):
        assert PrefetchSpec("realtime").uses_deadlines
        assert PrefetchSpec("delayed").uses_deadlines
        assert not PrefetchSpec("standard").uses_deadlines

    def test_labels(self):
        assert "8" in PrefetchSpec("delayed", max_advance_s=8.0).label()
        assert "real-time" in PrefetchSpec("realtime").label()


class TestStandardPrefetch:
    def test_fetch_lands_in_pool(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(env, PrefetchSpec("standard"))
        assert prefetcher.schedule(order(0)) is True
        env.run(until=5.0)
        page = pool.lookup(("v", 0))
        assert page is not None
        assert not page.in_flight
        assert page.is_prefetched
        assert drive.reads == 1
        assert prefetcher.stats.completed == 1

    def test_duplicate_key_deduplicated(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(env, PrefetchSpec("standard"))
        assert prefetcher.schedule(order(0)) is True
        assert prefetcher.schedule(order(0)) is False
        assert prefetcher.stats.deduplicated == 1

    def test_resident_key_skipped(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(env, PrefetchSpec("standard"))
        prefetcher.schedule(order(0))
        env.run(until=5.0)
        assert prefetcher.schedule(order(0)) is False
        assert prefetcher.stats.already_resident == 1

    def test_disabled_mode_schedules_nothing(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(env, PrefetchSpec("none"))
        assert prefetcher.schedule(order(0)) is False
        env.run(until=5.0)
        assert drive.reads == 0

    def test_fifo_service_order(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(
            env, PrefetchSpec("standard", processes_per_disk=1)
        )
        for block in (3, 1, 2):
            prefetcher.schedule(order(block))
        env.run(until=10.0)
        # completed in FIFO order: block 3's page loaded first.
        assert prefetcher.stats.completed == 3


class TestRealtimePrefetch:
    def test_deadline_order_served_first(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(
            env, PrefetchSpec("realtime", processes_per_disk=1)
        )
        prefetcher.schedule(order(1, deadline=50.0))
        prefetcher.schedule(order(2, deadline=5.0))

        completions = []
        original = pool.finish_io

        def spy(page):
            completions.append(page.key)
            original(page)

        pool.finish_io = spy
        env.run(until=10.0)
        assert completions[0] == ("v", 2)


class TestDelayedPrefetch:
    def test_held_until_max_advance(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(
            env, PrefetchSpec("delayed", max_advance_s=8.0)
        )
        prefetcher.schedule(order(0, deadline=20.0))
        env.run(until=11.0)
        # Issue time = deadline - 8 = 12s; nothing read yet at t=11.
        assert drive.reads == 0
        env.run(until=20.0)
        assert drive.reads == 1
        assert pool.lookup(("v", 0)) is not None

    def test_more_urgent_arrival_swaps_ahead(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(
            env, PrefetchSpec("delayed", max_advance_s=2.0, processes_per_disk=1)
        )
        prefetcher.schedule(order(0, deadline=100.0))

        def later(env):
            yield env.timeout(10.0)
            prefetcher.schedule(order(1, deadline=20.0))

        env.process(later(env))
        env.run(until=30.0)
        page = pool.lookup(("v", 1))
        assert page is not None and not page.in_flight
        assert pool.lookup(("v", 0)) is None  # still held back

    def test_queue_depth_visible(self):
        env = Environment()
        prefetcher, pool, drive = make_rig(env, PrefetchSpec("standard"))
        prefetcher.schedule(order(0))
        assert prefetcher.queue_depth >= 0  # drained asynchronously
