"""Batched admission x the admission controller.

A batch holds exactly ONE admission slot (the leader's): followers
join slot-free and the last member out releases it.  This is the
deliberate divergence from the piggyback discipline (one slot per
session) — so ``AdmissionController.admitted`` counts leaders only
while ``SessionStats.admitted`` counts leaders and followers alike.
These tests run without the warmup stats reset so every counter covers
the whole run and the invariants can be checked as exact totals.
"""

from repro import MB, SpiffiConfig, SpiffiSystem, run_simulation
from repro.server.admission import AdmissionSpec
from repro.sharing import SharingSpec
from repro.workload import ArrivalSpec


def batch_config(**overrides):
    """Heavy arrivals on few titles: launch windows fill up."""
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=1,
        videos_per_disk=1,  # 4 titles: concurrent same-title starts
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        sharing=SharingSpec(policy="batch", window_s=2.0),
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=30.0,
        seed=11,
        workload=ArrivalSpec(
            process="poisson",
            rate_per_s=1.0,
            mean_view_duration_s=20.0,
            queue_limit=16,
            mean_patience_s=8.0,
        ),
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


def run_whole(config, until=40.0):
    """Run without the warmup reset so counters are whole-run totals."""
    system = SpiffiSystem(config)
    system.start()
    system.env.run(until=until)
    return system


class _Silence:
    """Zero-rate profile: swapping it in stops further arrivals."""

    def rate_at(self, t):
        return 0.0


class TestOneSlotPerBatch:
    def test_followers_are_admitted_without_a_slot(self):
        system = run_whole(batch_config())
        stats = system.workload.stats
        sharing = system.sharing
        assert sharing.stats.batches_launched > 0
        assert sharing.stats.batch_followers > 0
        # Leaders take slots; followers ride them.  This identity holds
        # at any instant: an open window's leader is counted on both
        # sides, its joiners on neither until launch.
        assert stats.admitted == (
            system.admission.admitted + sharing.stats.batch_followers
        )

    def test_sessions_ledger_closes_after_drain(self):
        system = run_whole(batch_config())
        # Let open windows drain with arrivals silenced: every admitted
        # session (leader or follower) must then own its own terminal.
        system.workload.process = _Silence()
        system.env.run(until=50.0)
        stats = system.workload.stats
        assert len(system.terminals) == stats.admitted
        in_queue = system.admission.queue_length
        assert stats.offered == (
            stats.admitted + stats.balked + stats.reneged + in_queue
        )


class TestQueuedThenBatched:
    def cap_config(self, cap, **overrides):
        return batch_config(
            admission=AdmissionSpec("fixed", max_streams=cap), **overrides
        )

    def test_converts_never_double_consume_slots(self):
        cap = 3
        system = run_whole(self.cap_config(cap), until=60.0)
        sharing = system.sharing
        stats = system.workload.stats
        # The cap genuinely bit, and queued requests converted into
        # open windows instead of waiting for a slot.
        assert system.admission.queued > 0
        assert sharing.stats.queue_converts > 0
        assert system.admission.active <= cap
        # A convert abandons its slot request entirely — the controller
        # never granted it one, so leaders alone account for the grants.
        assert stats.admitted == (
            system.admission.admitted + sharing.stats.batch_followers
        )
        # Batching beat the cap: more concurrent viewers than slots.
        assert stats.admitted > system.admission.admitted

    def test_convert_can_renege_inside_the_window(self):
        # A queued convert carries its already-running patience timer
        # into the window (a direct joiner does not draw one — joining
        # is a commitment).  Short patience + a long window makes some
        # timers expire between join and launch.
        system = run_whole(
            self.cap_config(
                2,
                sharing=SharingSpec(policy="batch", window_s=4.0),
                workload=ArrivalSpec(
                    process="poisson",
                    rate_per_s=1.2,
                    mean_view_duration_s=20.0,
                    queue_limit=16,
                    mean_patience_s=1.5,
                ),
            ),
            until=60.0,
        )
        sharing = system.sharing
        assert sharing.stats.queue_converts > 0
        assert sharing.stats.batch_withdrawn > 0
        assert system.workload.stats.reneged > 0
        # Withdrawn joiners launched nothing: followers at launch are
        # converts-that-stayed plus direct joiners, never withdrawers.
        assert system.workload.stats.admitted == (
            system.admission.admitted + sharing.stats.batch_followers
        )

    def test_capped_batching_is_deterministic(self):
        config = self.cap_config(3)
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.deterministic_dict() == second.deterministic_dict()
        assert first.batches_launched > 0


class TestMetricsSurface:
    def test_active_run_reports_sharing_counters(self):
        metrics = run_simulation(batch_config())
        assert metrics.batches_launched > 0
        assert metrics.shared_streams > 0
        assert 0.0 < metrics.sharing_fraction < 1.0
        assert "batches_launched" in metrics.deterministic_dict()
        assert "shared=" in metrics.summary()

    def test_inert_run_drops_the_all_zero_group(self):
        metrics = run_simulation(batch_config(sharing=SharingSpec()))
        assert metrics.batches_launched == 0
        assert "batches_launched" not in metrics.deterministic_dict()
        assert "shared=" not in metrics.summary()
