"""An inert SharingSpec is invisible: bit-identical to the
pre-sharing build.

The golden digests were recorded before the stream-sharing subsystem
existed.  A config that spells out ``sharing=SharingSpec()``
explicitly must reproduce them exactly — same config digest (the
inert spec is omitted from the cache form), same metrics digest, same
event count — standalone and as a 1-node cluster, under direct
execution and both executors.
"""

from repro.cluster import ClusterConfig, run_cluster
from repro.core.system import run_simulation
from repro.experiments.results import config_digest
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunRequest,
    SerialExecutor,
)
from repro.sharing import SharingSpec
from tests.sim.test_golden_digest import (
    GOLDEN_CONFIG_DIGEST,
    GOLDEN_EVENTS_PROCESSED,
    GOLDEN_METRICS_DIGEST,
    metrics_digest,
    midsize_config,
)


def explicit_inert():
    return midsize_config().replace(sharing=SharingSpec())


def one_node_cluster():
    return ClusterConfig(node=explicit_inert())


def run_with(executor, config):
    runner = Runner(executor=executor, cache=None)
    try:
        outcome = runner.run_batch([RunRequest(config)])[0]
    finally:
        executor.close()
    assert not outcome.failed, outcome.error
    return outcome.metrics


def assert_golden(metrics):
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def test_config_digest_matches_the_pre_sharing_golden():
    assert config_digest(explicit_inert()) == GOLDEN_CONFIG_DIGEST


def test_standalone_identity_direct():
    assert_golden(run_simulation(explicit_inert()))


def test_standalone_identity_jobs_1():
    assert_golden(run_with(SerialExecutor(), explicit_inert()))


def test_standalone_identity_jobs_4():
    assert_golden(run_with(ProcessExecutor(jobs=4), explicit_inert()))


def test_cluster_identity_direct():
    assert_golden(run_cluster(one_node_cluster()))


def test_cluster_identity_jobs_4():
    assert_golden(run_with(ProcessExecutor(jobs=4), one_node_cluster()))
