"""Adaptive merging and buffer chaining, driven at the runtime level.

These tests feed the :class:`SharingRuntime` hand-built terminals and
pools so every lifecycle edge is exercised deterministically: chase
completion and abort, the lag bound, chain formation, pinned-page
accounting, and every break/dissolve path.  One integration test runs
the full policy end-to-end through the simulator.
"""

import types

from repro.bufferpool.pool import HIT, MISS
from repro.sharing import SharingSpec
from repro.sim.environment import Environment

from tests.sharing.test_batching import batch_config, run_whole

FPS = 24.0


class FakeTerminal:
    """Just enough of a Terminal for the sharing runtime."""

    def __init__(self, terminal_id, frame=0, request=0):
        self.terminal_id = terminal_id
        self._epoch = 0
        self._next_frame = frame
        self._next_request = request
        self._video = types.SimpleNamespace(fps=FPS)
        self.rates = []

    def set_display_rate(self, scale):
        self.rates.append(scale)


class FakePool:
    """Counts pins so release paths can be checked exactly."""

    def __init__(self):
        self.pinned = []

    def pin(self, page):
        self.pinned.append(page)

    def unpin(self, page):
        self.pinned.remove(page)


def merge_runtime(env, **overrides):
    spec = SharingSpec(policy="merge", **overrides)
    return spec.build(env)


def chain_runtime(env, **overrides):
    overrides.setdefault("chain_pin_limit_blocks", 4)
    spec = SharingSpec(policy="chain", **overrides)
    return spec.build(env)


class TestAdaptiveMerge:
    def test_trailer_chases_and_merges(self):
        env = Environment()
        runtime = merge_runtime(env, rate_delta=0.05)
        leader = FakeTerminal(1, frame=240)  # 10 s ahead at 24 fps
        trailer = FakeTerminal(2, frame=0)
        runtime.note_play_start(leader, 0)
        runtime.note_play_start(trailer, 0)
        assert runtime.stats.merges_started == 1
        # The chase runs as a process: the speed-up lands on the first
        # step, then it re-checks at the projected catch-up instant —
        # 240 frames / (24 fps * 0.05) = 200 s.
        env.run(until=1.0)
        assert trailer.rates == [1.05]
        assert runtime.stats.merge_lag_s.count == 1
        assert runtime.stats.merged_sessions == 0
        trailer._next_frame = leader._next_frame  # positions meet
        env.run(until=250.0)
        assert runtime.stats.merged_sessions == 1
        assert runtime.stats.merge_catchup_s.count == 1
        assert trailer.rates[-1] == 1.0

    def test_chase_aborts_when_the_leader_leaves(self):
        env = Environment()
        runtime = merge_runtime(env, rate_delta=0.05)
        leader = FakeTerminal(1, frame=120)
        trailer = FakeTerminal(2, frame=0)
        runtime.note_play_start(leader, 0)
        runtime.note_play_start(trailer, 0)
        runtime.note_play_end(leader, 0)
        env.run(until=200.0)
        assert runtime.stats.merge_aborts == 1
        assert runtime.stats.merged_sessions == 0
        assert trailer.rates[-1] == 1.0

    def test_no_chase_beyond_the_lag_bound(self):
        env = Environment()
        runtime = merge_runtime(env, merge_max_lag_s=5.0)
        leader = FakeTerminal(1, frame=int(6.0 * FPS))
        trailer = FakeTerminal(2, frame=0)
        runtime.note_play_start(leader, 0)
        runtime.note_play_start(trailer, 0)
        env.run(until=1.0)
        assert runtime.stats.merges_started == 0
        assert trailer.rates == []

    def test_trailer_epoch_change_cancels_silently(self):
        env = Environment()
        runtime = merge_runtime(env)
        leader = FakeTerminal(1, frame=240)
        trailer = FakeTerminal(2, frame=0)
        runtime.note_play_start(leader, 0)
        runtime.note_play_start(trailer, 0)
        trailer._epoch += 1  # seek/abandon resets the session's clock
        env.run(until=300.0)
        assert runtime.stats.merged_sessions == 0
        assert runtime.stats.merge_aborts == 0


class TestBufferChain:
    def started(self, env=None, lag_frames=120):
        env = env or Environment()
        runtime = chain_runtime(env)
        pred = FakeTerminal(1, frame=lag_frames, request=11)
        succ = FakeTerminal(2, frame=0, request=1)
        runtime.note_play_start(pred, 0)
        runtime.note_play_start(succ, 0)
        return runtime, pred, succ

    def test_chain_forms_within_the_lag_bound(self):
        runtime, pred, succ = self.started()
        assert runtime.stats.chains_formed == 1

    def test_no_chain_beyond_the_lag_bound(self):
        env = Environment()
        runtime = chain_runtime(env, chain_max_lag_s=2.0)
        pred = FakeTerminal(1, frame=int(3.0 * FPS), request=11)
        succ = FakeTerminal(2, frame=0, request=1)
        runtime.note_play_start(pred, 0)
        runtime.note_play_start(succ, 0)
        assert runtime.stats.chains_formed == 0

    def test_predecessor_pages_pin_up_to_the_limit(self):
        runtime, pred, succ = self.started()
        pool = FakePool()
        for block in range(11, 17):  # limit is 4: two stay unpinned
            runtime.note_block(1, 0, block, MISS, f"page-{block}", pool)
        assert len(pool.pinned) == 4

    def test_successor_reads_count_and_release_pins(self):
        runtime, pred, succ = self.started()
        pool = FakePool()
        runtime.note_block(1, 0, 11, MISS, "page-11", pool)
        assert pool.pinned == ["page-11"]
        runtime.note_block(2, 0, 11, HIT, "page-11", pool)
        assert runtime.stats.chain_reads == 1
        assert pool.pinned == []
        # Reads the predecessor never fetched don't count.
        runtime.note_block(2, 0, 99, HIT, "page-99", pool)
        assert runtime.stats.chain_reads == 1

    def test_missed_bridge_block_breaks_the_chain(self):
        runtime, pred, succ = self.started()
        pool = FakePool()
        runtime.note_block(1, 0, 11, MISS, "page-11", pool)
        # The predecessor had fetched block 5 (frontier 10) but the
        # successor MISSes it: the page was evicted, bridge collapsed.
        runtime.note_block(2, 0, 5, MISS, "page-5", pool)
        assert runtime.stats.chain_breaks == 1
        assert runtime.stats.chain_reads == 0
        assert pool.pinned == []  # pins released on break

    def test_predecessor_pause_breaks_and_releases(self):
        runtime, pred, succ = self.started()
        pool = FakePool()
        runtime.note_block(1, 0, 11, MISS, "page-11", pool)
        runtime.note_pause(pred)
        assert runtime.stats.chain_breaks == 1
        assert pool.pinned == []
        # Broken is broken: later blocks pin nothing.
        runtime.note_block(1, 0, 12, MISS, "page-12", pool)
        assert pool.pinned == []

    def test_predecessor_abandon_breaks_the_chain(self):
        runtime, pred, succ = self.started()
        runtime.note_abandon(pred)
        assert runtime.stats.chain_breaks == 1

    def test_successor_abandon_dissolves_without_a_break(self):
        runtime, pred, succ = self.started()
        pool = FakePool()
        runtime.note_block(1, 0, 11, MISS, "page-11", pool)
        runtime.note_abandon(succ)
        assert runtime.stats.chain_breaks == 0
        assert pool.pinned == []

    def test_completed_successor_dissolves_without_a_break(self):
        runtime, pred, succ = self.started()
        pool = FakePool()
        runtime.note_block(1, 0, 11, MISS, "page-11", pool)
        runtime.note_play_end(succ, 0)
        assert runtime.stats.chain_breaks == 0
        assert pool.pinned == []

    def test_completed_predecessor_dissolves_without_a_break(self):
        runtime, pred, succ = self.started()
        runtime.note_play_end(pred, 0)
        assert runtime.stats.chain_breaks == 0
        # The successor is free to chain again behind someone else.
        late = FakeTerminal(3, frame=240, request=21)
        runtime.note_play_start(late, 0)
        runtime.note_play_start(succ, 0)
        assert runtime.stats.chains_formed == 2


class TestFullPolicyIntegration:
    def test_all_three_mechanisms_engage(self):
        system = run_whole(
            batch_config(
                sharing=SharingSpec(policy="batch+merge+chain", window_s=2.0)
            ),
            until=60.0,
        )
        stats = system.sharing.stats
        assert stats.batches_launched > 0
        assert stats.batch_followers > 0
        assert stats.merges_started > 0
        assert stats.chains_formed > 0
        assert stats.chain_reads > 0
