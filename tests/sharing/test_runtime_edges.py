"""Runtime edges: batch lifecycle guards, traces, and derived stats."""

import pytest

from repro.bufferpool.pool import HIT, MISS
from repro.sharing import SharingSpec
from repro.sharing.runtime import StreamBatch
from repro.sim.environment import Environment
from repro.telemetry.trace import TraceRecorder

from tests.sharing.test_batching import batch_config, run_whole
from tests.sharing.test_merge_chain import FakePool, FakeTerminal


def runtime_with_trace(policy="batch+merge+chain", **overrides):
    env = Environment()
    runtime = SharingSpec(policy=policy, **overrides).build(env)
    runtime.trace = TraceRecorder(env)
    return env, runtime


class TestBatchLifecycleGuards:
    def launched_batch(self, env):
        batch = StreamBatch(env, 0, None)
        batch.launched = True
        return batch

    def test_join_after_launch_rejected(self):
        batch = self.launched_batch(Environment())
        with pytest.raises(ValueError, match="after the batch launched"):
            batch.join()

    def test_withdraw_after_launch_rejected(self):
        batch = self.launched_batch(Environment())
        with pytest.raises(ValueError, match="after the batch launched"):
            batch.withdraw()

    def test_withdraw_never_leaves_the_batch_leaderless(self):
        batch = StreamBatch(Environment(), 0, None)
        with pytest.raises(ValueError, match="leaderless"):
            batch.withdraw()

    def test_depart_before_launch_rejected(self):
        batch = StreamBatch(Environment(), 0, None)
        with pytest.raises(ValueError, match="before the batch launched"):
            batch.depart()

    def test_depart_past_empty_rejected(self):
        batch = self.launched_batch(Environment())
        released = []
        batch._release = lambda: released.append(True)
        batch.depart()
        assert released == [True]  # last one out frees the slot
        with pytest.raises(ValueError, match="no live members"):
            batch.depart()

    def test_full_batch_is_not_joinable(self):
        env, runtime = runtime_with_trace(max_batch=2)
        batch = runtime.open_batch(0, None)
        assert runtime.joinable_batch(0) is batch
        batch.join()  # leader + 1 = max_batch
        assert runtime.joinable_batch(0) is None

    def test_overflow_leader_opens_an_unregistered_batch(self):
        env, runtime = runtime_with_trace(max_batch=1)
        first = runtime.open_batch(0, None)
        second = runtime.open_batch(0, None)  # full batch still open
        assert runtime._batches[0] is first
        env.run(until=10.0)
        # Both still launch, and the registry is clean afterwards.
        assert first.launched and second.launched
        assert runtime.stats.batches_launched == 2
        assert 0 not in runtime._batches


class TestTraces:
    def test_batch_events_recorded(self):
        env, runtime = runtime_with_trace()
        batch = runtime.open_batch(0, None)
        batch.join()
        env.run(until=10.0)
        assert runtime.trace.counts["batch.open"] == 1
        assert runtime.trace.counts["batch.launch"] == 1

    def test_merge_events_recorded(self):
        env, runtime = runtime_with_trace()
        leader = FakeTerminal(1, frame=240)
        trailer = FakeTerminal(2, frame=0)
        runtime.note_play_start(leader, 0)
        runtime.note_play_start(trailer, 0)
        env.run(until=1.0)
        trailer._next_frame = leader._next_frame
        env.run(until=250.0)
        assert runtime.trace.counts["merge.start"] == 1
        assert runtime.trace.counts["merge.done"] == 1

    def test_merge_abort_recorded(self):
        env, runtime = runtime_with_trace()
        leader = FakeTerminal(1, frame=240)
        trailer = FakeTerminal(2, frame=0)
        runtime.note_play_start(leader, 0)
        runtime.note_play_start(trailer, 0)
        runtime.note_play_end(leader, 0)
        env.run(until=250.0)
        assert runtime.trace.counts["merge.abort"] == 1

    def test_chain_events_recorded(self):
        env, runtime = runtime_with_trace(policy="chain")
        pred = FakeTerminal(1, frame=120, request=11)
        succ = FakeTerminal(2, frame=0, request=1)
        runtime.note_play_start(pred, 0)
        runtime.note_play_start(succ, 0)
        runtime.note_pause(pred)
        assert runtime.trace.counts["chain.form"] == 1
        assert runtime.trace.counts["chain.break"] == 1

    def test_node_hook_requires_a_sharing_policy(self):
        from repro import SpiffiSystem

        system = SpiffiSystem(batch_config(sharing=SharingSpec()))
        with pytest.raises(ValueError, match="no sharing policy"):
            system.enable_sharing_tracing()

    def test_node_hook_attaches_the_recorder(self):
        from repro import SpiffiSystem

        system = SpiffiSystem(batch_config())
        recorder = system.enable_sharing_tracing()
        assert system.sharing.trace is recorder
        system.start()
        system.env.run(until=40.0)
        assert recorder.counts["batch.launch"] > 0


class TestSeekAndStrays:
    def chained(self):
        env = Environment()
        runtime = SharingSpec(policy="chain").build(env)
        pred = FakeTerminal(1, frame=120, request=11)
        succ = FakeTerminal(2, frame=0, request=1)
        runtime.note_play_start(pred, 0)
        runtime.note_play_start(succ, 0)
        return runtime, pred, succ

    def test_predecessor_seek_breaks(self):
        runtime, pred, succ = self.chained()
        runtime.note_seek(pred)
        assert runtime.stats.chain_breaks == 1

    def test_successor_seek_dissolves(self):
        runtime, pred, succ = self.chained()
        runtime.note_seek(succ)
        assert runtime.stats.chain_breaks == 0
        assert succ not in runtime._chains_by_succ

    def test_block_from_unknown_terminal_ignored(self):
        runtime, pred, succ = self.chained()
        runtime.note_block(99, 0, 5, HIT, "page", FakePool())
        assert runtime.stats.chain_reads == 0

    def test_block_for_another_title_ignored(self):
        runtime, pred, succ = self.chained()
        pool = FakePool()
        runtime.note_block(1, 7, 11, MISS, "page", pool)
        assert pool.pinned == []


class TestDerivedStats:
    def test_shared_streams_and_fraction(self):
        env, runtime = runtime_with_trace()
        assert runtime.shared_streams == 0
        assert runtime.sharing_fraction == 0.0
        runtime.stats.batches_launched = 2
        runtime.stats.batch_followers = 6
        runtime.stats.merged_sessions = 1
        assert runtime.shared_streams == 7
        assert runtime.sharing_fraction == 0.75

    def test_reset_keeps_live_batches(self):
        env, runtime = runtime_with_trace()
        batch = runtime.open_batch(0, None)
        runtime.stats.batch_withdrawn = 3
        runtime.reset_stats()
        assert runtime.stats.batch_withdrawn == 0
        assert runtime.joinable_batch(0) is batch  # live state survives
