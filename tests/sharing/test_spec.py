"""SharingSpec: validation, the policy registry, and config wiring."""

import pytest

from repro.core.config import SpiffiConfig, config_cache_dict
from repro.sharing import (
    SharingSpec,
    register_sharing_policy,
    sharing_policy_names,
)
from repro.sharing.spec import BATCH, CHAIN, MERGE, sharing_cache_dict


class TestValidation:
    def test_default_is_inert(self):
        spec = SharingSpec()
        assert spec.policy == "none"
        assert not spec.enabled
        assert spec.components == frozenset()
        assert not (spec.batching or spec.merging or spec.chaining)

    def test_builtin_policies_registered(self):
        names = sharing_policy_names()
        for name in ("none", "batch", "merge", "chain", "batch+chain",
                     "batch+merge+chain"):
            assert name in names

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown sharing policy"):
            SharingSpec(policy="telepathy")

    def test_components_follow_the_policy(self):
        spec = SharingSpec(policy="batch+merge+chain")
        assert spec.components == frozenset({BATCH, MERGE, CHAIN})
        assert spec.batching and spec.merging and spec.chaining
        assert SharingSpec(policy="merge").components == frozenset({MERGE})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("window_s", -1.0),
            ("max_batch", -1),
            ("rate_delta", 0.0),
            ("rate_delta", 0.75),
            ("merge_max_lag_s", 0.0),
            ("chain_max_lag_s", 0.0),
            ("chain_pin_limit_blocks", 0),
        ],
    )
    def test_bad_parameters_rejected(self, field, value):
        with pytest.raises(ValueError):
            SharingSpec(policy="batch+merge+chain", **{field: value})

    def test_batching_needs_a_positive_window(self):
        with pytest.raises(ValueError, match="window"):
            SharingSpec(policy="batch", window_s=0.0)

    def test_register_rejects_bad_names_and_components(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_sharing_policy("", (BATCH,))
        with pytest.raises(ValueError, match="unknown sharing components"):
            register_sharing_policy("test-bogus", ("teleport",))

    def test_register_custom_policy(self):
        register_sharing_policy("test-batch-only", (BATCH,))
        try:
            spec = SharingSpec(policy="test-batch-only")
            assert spec.batching and not spec.merging
        finally:
            from repro.sharing import spec as spec_module

            del spec_module._REGISTRY["test-batch-only"]

    def test_labels(self):
        assert SharingSpec().label() == "no-sharing"
        assert "2" in SharingSpec(policy="batch", window_s=2.0).label()


class TestConfigWiring:
    def test_config_rejects_non_spec(self):
        with pytest.raises(TypeError, match="SharingSpec"):
            SpiffiConfig(sharing="batch")

    def test_batching_conflicts_with_piggyback_window(self):
        with pytest.raises(ValueError, match="piggyback"):
            SpiffiConfig(
                sharing=SharingSpec(policy="batch"), piggyback_window_s=2.0
            )

    def test_merge_only_composes_with_piggyback_window(self):
        config = SpiffiConfig(
            sharing=SharingSpec(policy="merge"), piggyback_window_s=2.0
        )
        assert config.sharing.merging

    def test_inert_spec_omitted_from_cache_dict(self):
        data = config_cache_dict(SpiffiConfig())
        assert "sharing" not in data
        explicit = config_cache_dict(SpiffiConfig(sharing=SharingSpec()))
        assert explicit == data

    def test_active_spec_serializes_every_field(self):
        spec = SharingSpec(policy="batch+chain", window_s=3.0, max_batch=8)
        data = config_cache_dict(SpiffiConfig(sharing=spec))
        assert data["sharing"] == sharing_cache_dict(spec)
        assert data["sharing"]["policy"] == "batch+chain"
        assert data["sharing"]["window_s"] == 3.0
        assert data["sharing"]["max_batch"] == 8
